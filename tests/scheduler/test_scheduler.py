"""Tests for the multi-job scheduling layer."""

import numpy as np
import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import AllocationError, LoadAwarePolicy
from repro.experiments.scenario import small_scenario
from repro.scheduler import ClusterScheduler, JobRequest, SchedulerStats


def make_scheduler(sc, **kwargs):
    return ClusterScheduler(
        sc.engine,
        sc.workload,
        sc.network,
        sc.snapshot,
        rng=sc.streams.child("sched"),
        **kwargs,
    )


def small_app():
    return MiniMD(8, MiniMDConfig(timesteps=100))


@pytest.fixture
def scenario():
    return small_scenario(n_nodes=8, seed=17, warmup_s=600.0)


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobRequest(app=small_app(), n_processes=0)
        with pytest.raises(ValueError):
            JobRequest(app=small_app(), n_processes=4, submit_time=-1.0)

    def test_unique_ids(self):
        a = JobRequest(app=small_app(), n_processes=4)
        b = JobRequest(app=small_app(), n_processes=4)
        assert a.job_id != b.job_id


class TestSingleJob:
    def test_lifecycle(self, scenario):
        sched = make_scheduler(scenario)
        job = sched.submit(
            JobRequest(app=small_app(), n_processes=8, ppn=4,
                       submit_time=scenario.engine.now)
        )
        stats = sched.drain()
        assert job.done
        assert job.allocation is not None
        assert job.wait_s == pytest.approx(0.0)
        assert job.turnaround_s == pytest.approx(job.execution_time_s)
        assert stats.n_jobs == 1

    def test_occupation_released(self, scenario):
        sched = make_scheduler(scenario)
        sched.submit(
            JobRequest(app=small_app(), n_processes=8, ppn=4,
                       submit_time=scenario.engine.now)
        )
        sched.drain()
        assert scenario.workload.external_load == {}
        assert sched._busy_nodes == set()
        assert not any(
            f.tag.startswith("sched_job") for f in scenario.network.flows
        )

    def test_impossible_job_rejected_at_submit(self, scenario):
        sched = make_scheduler(scenario)
        with pytest.raises(AllocationError, match="never satisfiable"):
            sched.submit(JobRequest(app=small_app(), n_processes=10**6))


class TestOccupation:
    def test_running_job_adds_ground_truth_load(self, scenario):
        sched = make_scheduler(scenario)
        job = sched.submit(
            JobRequest(app=small_app(), n_processes=8, ppn=4,
                       submit_time=scenario.engine.now)
        )
        # step until the job starts
        while job.start_time is None:
            scenario.engine.step()
        node = job.allocation.nodes[0]
        assert scenario.workload.external_load[node] == 4.0
        assert scenario.cluster.state(node).cpu_load >= 4.0

    def test_exclusive_nodes_serialize_conflicting_jobs(self, scenario):
        sched = make_scheduler(scenario)
        now = scenario.engine.now
        # each job needs 4 of the 8 nodes; three jobs cannot all overlap
        jobs = [
            sched.submit(
                JobRequest(app=small_app(), n_processes=16, ppn=4,
                           submit_time=now)
            )
            for _ in range(3)
        ]
        stats = sched.drain()
        assert all(j.done for j in jobs)
        # at least one job had to wait for a departure
        assert max(j.wait_s for j in jobs) > 0.0
        # while running, allocations never overlapped
        intervals = [
            (j.start_time, j.finish_time, set(j.allocation.nodes))
            for j in jobs
        ]
        for i, (s1, f1, n1) in enumerate(intervals):
            for s2, f2, n2 in intervals[i + 1:]:
                if s1 < f2 and s2 < f1:  # overlap in time
                    assert n1 & n2 == set()

    def test_shared_mode_allows_overlap(self, scenario):
        sched = make_scheduler(scenario, exclusive_nodes=False)
        now = scenario.engine.now
        jobs = [
            sched.submit(
                JobRequest(app=small_app(), n_processes=16, ppn=4,
                           submit_time=now)
            )
            for _ in range(3)
        ]
        sched.drain()
        assert all(j.wait_s == pytest.approx(0.0) for j in jobs)


class TestStreamMetrics:
    def test_stats_fields(self, scenario):
        sched = make_scheduler(scenario)
        now = scenario.engine.now
        for k in range(4):
            sched.submit(
                JobRequest(app=small_app(), n_processes=8, ppn=4,
                           submit_time=now + 30.0 * k)
            )
        stats = sched.drain()
        assert stats.n_jobs == 4
        assert stats.makespan_s > 0
        # turnaround = wait + execution (float-addition tolerance)
        assert stats.mean_turnaround_s >= stats.mean_execution_s - 1e-9

    def test_empty_stats_rejected(self):
        with pytest.raises(ValueError):
            SchedulerStats.from_jobs([])

    def test_interference_slows_shared_jobs(self, scenario):
        """Jobs priced while others run see their load and traffic."""
        solo_sc = small_scenario(n_nodes=8, seed=17, warmup_s=600.0)
        solo = make_scheduler(solo_sc, exclusive_nodes=False)
        solo.submit(
            JobRequest(app=small_app(), n_processes=16, ppn=4,
                       submit_time=solo_sc.engine.now)
        )
        solo_stats = solo.drain()

        crowded = make_scheduler(scenario, exclusive_nodes=False)
        now = scenario.engine.now
        # all submitted at the same instant: later jobs are priced while
        # the earlier ones already occupy their nodes
        jobs = [
            crowded.submit(
                JobRequest(app=small_app(), n_processes=16, ppn=4,
                           submit_time=now)
            )
            for _ in range(4)
        ]
        crowded.drain()
        assert jobs[-1].execution_time_s > solo_stats.mean_execution_s


class TestPolicyPluggability:
    def test_custom_policy(self, scenario):
        sched = make_scheduler(scenario, policy=LoadAwarePolicy())
        job = sched.submit(
            JobRequest(app=small_app(), n_processes=8, ppn=4,
                       submit_time=scenario.engine.now)
        )
        sched.drain()
        assert job.allocation.policy == "load_aware"
