"""Scheduler option coverage: flow-less jobs, ppn-less requests."""

import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.experiments.scenario import small_scenario
from repro.scheduler import ClusterScheduler, JobRequest


@pytest.fixture
def scenario():
    return small_scenario(n_nodes=8, seed=41, warmup_s=600.0)


class TestOptions:
    def test_zero_job_flow_adds_no_traffic(self, scenario):
        sched = ClusterScheduler(
            scenario.engine, scenario.workload, scenario.network,
            scenario.snapshot, job_flow_mbs=0.0,
            rng=scenario.streams.child("x"),
        )
        job = sched.submit(
            JobRequest(app=MiniMD(8, MiniMDConfig(timesteps=200)),
                       n_processes=16, ppn=4,
                       submit_time=scenario.engine.now)
        )
        while job.start_time is None:
            scenario.engine.step()
        assert not any(
            f.tag.startswith("sched_job") for f in scenario.network.flows
        )

    def test_negative_job_flow_rejected(self, scenario):
        with pytest.raises(ValueError):
            ClusterScheduler(
                scenario.engine, scenario.workload, scenario.network,
                scenario.snapshot, job_flow_mbs=-1.0,
            )

    def test_request_without_ppn_uses_equation3(self, scenario):
        sched = ClusterScheduler(
            scenario.engine, scenario.workload, scenario.network,
            scenario.snapshot, rng=scenario.streams.child("y"),
        )
        job = sched.submit(
            JobRequest(app=MiniMD(8, MiniMDConfig(timesteps=200)),
                       n_processes=12, ppn=None,
                       submit_time=scenario.engine.now)
        )
        sched.drain()
        assert job.done
        assert sum(job.allocation.procs.values()) == 12
