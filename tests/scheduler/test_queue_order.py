"""FIFO-ordering and blocking semantics of the scheduler queue."""

import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.experiments.scenario import small_scenario
from repro.scheduler import ClusterScheduler, JobRequest


@pytest.fixture
def scenario():
    return small_scenario(n_nodes=8, seed=29, warmup_s=600.0)


def make_scheduler(sc):
    return ClusterScheduler(
        sc.engine, sc.workload, sc.network, sc.snapshot,
        rng=sc.streams.child("fifo"),
    )


class TestFifoSemantics:
    def test_start_order_follows_submit_order(self, scenario):
        sched = make_scheduler(scenario)
        now = scenario.engine.now
        jobs = [
            sched.submit(
                JobRequest(
                    app=MiniMD(8, MiniMDConfig(timesteps=200)),
                    n_processes=16,
                    ppn=4,
                    submit_time=now + k * 0.001,
                )
            )
            for k in range(4)
        ]
        sched.drain()
        starts = [j.start_time for j in jobs]
        assert starts == sorted(starts)

    def test_blocked_head_blocks_smaller_followers(self, scenario):
        """Strict FIFO: a big job at the head keeps later small jobs
        queued even if they would fit (no backfilling)."""
        sched = make_scheduler(scenario)
        now = scenario.engine.now
        app = MiniMD(8, MiniMDConfig(timesteps=500))
        first = sched.submit(
            JobRequest(app=app, n_processes=24, ppn=4, submit_time=now)
        )  # takes 6 of 8 nodes
        big = sched.submit(
            JobRequest(app=app, n_processes=24, ppn=4, submit_time=now)
        )  # needs 6: blocked while first runs
        small = sched.submit(
            JobRequest(app=app, n_processes=8, ppn=4, submit_time=now)
        )  # would fit in the 2 idle nodes, but FIFO keeps it behind
        sched.drain()
        assert big.start_time >= first.finish_time
        assert small.start_time >= big.start_time

    def test_pending_visible_while_blocked(self, scenario):
        sched = make_scheduler(scenario)
        now = scenario.engine.now
        app = MiniMD(8, MiniMDConfig(timesteps=2000))
        sched.submit(
            JobRequest(app=app, n_processes=32, ppn=4, submit_time=now)
        )
        blocked = sched.submit(
            JobRequest(app=app, n_processes=32, ppn=4, submit_time=now)
        )
        # advance just past the enqueue events
        scenario.engine.run(1.0)
        assert blocked in sched.pending
        assert len(sched.running) == 1
