"""Tests for the discrete-event engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.engine import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_events_run_in_time_order(self):
        eng = Engine()
        order: list[str] = []
        eng.schedule(2.0, lambda: order.append("b"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(3.0, lambda: order.append("c"))
        eng.drain()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        eng = Engine()
        order: list[int] = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: order.append(i))
        eng.drain()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen: list[float] = []
        eng.schedule(4.5, lambda: seen.append(eng.now))
        eng.drain()
        assert seen == [4.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            eng.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        eng = Engine()
        out: list[float] = []

        def outer():
            eng.schedule(1.0, lambda: out.append(eng.now))

        eng.schedule(1.0, outer)
        eng.drain()
        assert out == [2.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        out: list[str] = []
        ev = eng.schedule(1.0, lambda: out.append("no"))
        ev.cancel()
        eng.drain()
        assert out == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert eng.drain() == 0

    def test_events_processed_excludes_cancelled(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        ev = eng.schedule(2.0, lambda: None)
        ev.cancel()
        eng.drain()
        assert eng.events_processed == 1


class TestRunUntil:
    def test_runs_events_up_to_and_including_time(self):
        eng = Engine()
        out: list[float] = []
        for t in (1.0, 2.0, 3.0):
            eng.schedule(t, lambda t=t: out.append(t))
        eng.run_until(2.0)
        assert out == [1.0, 2.0]
        assert eng.now == 2.0

    def test_clock_lands_on_target_with_no_events(self):
        eng = Engine()
        eng.run_until(7.0)
        assert eng.now == 7.0

    def test_run_duration(self):
        eng = Engine(start_time=10.0)
        eng.run(5.0)
        assert eng.now == 15.0

    def test_backwards_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ValueError, match="backwards"):
            eng.run_until(5.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Engine().run(-1.0)


class TestPeriodicTask:
    def test_fires_every_period(self):
        eng = Engine()
        hits: list[float] = []
        eng.every(10.0, lambda: hits.append(eng.now))
        eng.run_until(35.0)
        assert hits == [0.0, 10.0, 20.0, 30.0]

    def test_start_offset(self):
        eng = Engine()
        hits: list[float] = []
        eng.every(10.0, lambda: hits.append(eng.now), start=5.0)
        eng.run_until(26.0)
        assert hits == [5.0, 15.0, 25.0]

    def test_stop_halts_ticks(self):
        eng = Engine()
        hits: list[float] = []
        task = eng.every(1.0, lambda: hits.append(eng.now))
        eng.run_until(2.5)
        task.stop()
        eng.run_until(10.0)
        assert hits == [0.0, 1.0, 2.0]
        assert task.stopped

    def test_action_can_stop_own_task(self):
        eng = Engine()
        hits: list[float] = []
        task = eng.every(1.0, lambda: (hits.append(eng.now), task.stop()))
        eng.run_until(5.0)
        assert hits == [0.0]

    def test_jitter_requires_rng(self):
        eng = Engine()
        with pytest.raises(ValueError, match="jitter_rng"):
            eng.every(1.0, lambda: None, jitter=0.5)

    def test_jitter_delays_within_bounds(self):
        eng = Engine()
        rng = np.random.default_rng(0)
        hits: list[float] = []
        eng.every(10.0, lambda: hits.append(eng.now), jitter=2.0, jitter_rng=rng)
        eng.run_until(100.0)
        gaps = np.diff(hits)
        assert (gaps >= 10.0).all() and (gaps <= 12.0).all()

    def test_invalid_period(self):
        with pytest.raises(ValueError, match="period"):
            Engine().every(0.0, lambda: None)

    def test_start_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            eng.every(1.0, lambda: None, start=1.0)


class TestDrain:
    def test_returns_event_count(self):
        eng = Engine()
        for t in range(5):
            eng.schedule(float(t), lambda: None)
        assert eng.drain() == 5

    def test_max_events_bound(self):
        eng = Engine()
        for t in range(10):
            eng.schedule(float(t), lambda: None)
        assert eng.drain(max_events=3) == 3
        assert eng.pending == 7
