"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_paper_policies_complete(self):
        assert set(repro.PAPER_POLICIES) == {
            "random", "sequential", "load_aware", "network_load_aware",
        }


SUBPACKAGES = [
    "repro.broker",
    "repro.core",
    "repro.core.policies",
    "repro.cluster",
    "repro.net",
    "repro.des",
    "repro.workload",
    "repro.monitor",
    "repro.simmpi",
    "repro.apps",
    "repro.experiments",
    "repro.integrations",
    "repro.scheduler",
    "repro.viz",
    "repro.util",
]


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackage_has_docstring(module):
    mod = importlib.import_module(module)
    assert mod.__doc__ and mod.__doc__.strip(), module


def test_public_classes_documented():
    """Every exported class/function carries a docstring."""
    import inspect

    undocumented = []
    for module_name in SUBPACKAGES:
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module_name}.{name}")
    assert undocumented == []
