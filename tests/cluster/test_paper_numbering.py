"""Proximity-numbering invariants of the paper cluster.

§1: "Node numbering is based on physical proximity (1 - 4 hops)" and
§5's sequential baseline depends on consecutive names being close.
"""

import pytest

from repro.cluster.topology import paper_cluster


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster()


class TestProximityNumbering:
    def test_hop_range_is_two_to_four(self, cluster):
        _, topo = cluster
        hops = {
            topo.hops(f"csews{i}", f"csews{j}")
            for i in range(1, 61)
            for j in range(i + 1, 61, 7)
        }
        assert hops <= {2, 4}

    def test_consecutive_pairs_mostly_two_hops(self, cluster):
        _, topo = cluster
        two_hop = sum(
            1
            for i in range(1, 60)
            if topo.hops(f"csews{i}", f"csews{i + 1}") == 2
        )
        # only the 3 switch boundaries break adjacency
        assert two_hop == 59 - 3

    def test_distance_monotone_in_name_gap_on_average(self, cluster):
        import numpy as np

        _, topo = cluster
        near = np.mean(
            [topo.hops(f"csews{i}", f"csews{i + 1}") for i in range(1, 60)]
        )
        far = np.mean(
            [topo.hops(f"csews{i}", f"csews{i + 30}") for i in range(1, 31)]
        )
        assert near < far
