"""Tests for the switch-tree topology."""

import networkx as nx
import pytest

from repro.cluster.topology import (
    SwitchTopology,
    paper_cluster,
    uniform_cluster,
)


def two_level() -> SwitchTopology:
    parents = {"root": None, "s1": "root", "s2": "root"}
    nodes = {"a": "s1", "b": "s1", "c": "s2", "d": "s2"}
    return SwitchTopology(parents, nodes)


class TestConstruction:
    def test_single_root_required(self):
        with pytest.raises(ValueError, match="exactly one root"):
            SwitchTopology({"s1": None, "s2": None}, {})

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            SwitchTopology({"root": None, "s1": "ghost"}, {})

    def test_unknown_switch_for_node(self):
        with pytest.raises(ValueError, match="unknown switch"):
            SwitchTopology({"root": None}, {"a": "nope"})

    def test_graph_contains_nodes_and_switches(self):
        topo = two_level()
        assert set(topo.graph) == {"root", "s1", "s2", "a", "b", "c", "d"}

    def test_capacity_override(self):
        parents = {"root": None, "s1": "root"}
        topo = SwitchTopology(
            parents, {"a": "s1"}, uplink_capacity_mbs=500.0, edge_capacity_mbs=250.0
        )
        assert topo.link_capacity("s1", "root") == 500.0
        assert topo.link_capacity("a", "s1") == 250.0


class TestPaths:
    def test_same_switch_path(self):
        topo = two_level()
        assert topo.path("a", "b") == ("a", "s1", "b")

    def test_cross_switch_path(self):
        topo = two_level()
        assert topo.path("a", "c") == ("a", "s1", "root", "s2", "c")

    def test_path_is_reversible(self):
        topo = two_level()
        assert topo.path("c", "a") == topo.path("a", "c")[::-1]

    def test_hops(self):
        topo = two_level()
        assert topo.hops("a", "b") == 2
        assert topo.hops("a", "c") == 4
        assert topo.hops("a", "a") == 0

    def test_links_canonical_order(self):
        topo = two_level()
        for a, b in topo.links_on_path("a", "c"):
            assert a <= b

    def test_links_match_graph_edges(self):
        topo = two_level()
        for a, b in topo.links_on_path("a", "d"):
            assert topo.graph.has_edge(a, b)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            two_level().switch_of("zzz")

    def test_three_level_tree(self):
        parents = {
            "root": None,
            "mid1": "root",
            "mid2": "root",
            "leaf1": "mid1",
            "leaf2": "mid2",
        }
        topo = SwitchTopology(parents, {"a": "leaf1", "b": "leaf2"})
        assert topo.hops("a", "b") == 6
        assert topo.switch_path("leaf1", "leaf2") == (
            "leaf1", "mid1", "root", "mid2", "leaf2",
        )

    def test_nodes_on_switch(self):
        topo = two_level()
        assert topo.nodes_on_switch("s1") == ["a", "b"]
        with pytest.raises(KeyError):
            topo.nodes_on_switch("zzz")


class TestPaperCluster:
    def test_sixty_nodes_four_switches(self):
        specs, topo = paper_cluster()
        assert len(specs) == 60
        assert len(topo.switches) == 5  # root + 4 leaves

    def test_core_mix(self):
        specs, _ = paper_cluster()
        twelve = [s for s in specs if s.cores == 12]
        eight = [s for s in specs if s.cores == 8]
        assert len(twelve) == 40 and len(eight) == 8 * 0 + 20

    def test_frequencies(self):
        specs, _ = paper_cluster()
        freqs = {s.cores: s.frequency_ghz for s in specs}
        assert freqs[12] == 4.6 and freqs[8] == 2.8

    def test_consecutive_nodes_share_switch(self):
        specs, topo = paper_cluster()
        assert topo.switch_of("csews1") == topo.switch_of("csews15")
        assert topo.switch_of("csews1") != topo.switch_of("csews16")

    def test_specs_match_topology(self):
        specs, topo = paper_cluster()
        for s in specs:
            assert topo.switch_of(s.name) == s.switch

    def test_tree_structure(self):
        _, topo = paper_cluster()
        assert nx.is_tree(topo.graph)


class TestUniformCluster:
    def test_node_count(self):
        specs, _ = uniform_cluster(10, nodes_per_switch=4)
        assert len(specs) == 10

    def test_switch_count_rounds_up(self):
        _, topo = uniform_cluster(10, nodes_per_switch=4)
        assert len(topo.switches) == 4  # root + ceil(10/4)=3 leaves

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            uniform_cluster(0)
        with pytest.raises(ValueError):
            uniform_cluster(4, nodes_per_switch=0)

    def test_homogeneous_spec(self):
        specs, _ = uniform_cluster(4, cores=8, frequency_ghz=3.0)
        assert all(s.cores == 8 and s.frequency_ghz == 3.0 for s in specs)
