"""Tests for the Cluster container."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec, NodeState
from repro.cluster.topology import uniform_cluster


@pytest.fixture
def cluster():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    return Cluster(specs, topo)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        specs, topo = uniform_cluster(3, nodes_per_switch=3)
        dup = specs + [specs[0]]
        with pytest.raises(ValueError, match="duplicate"):
            Cluster(dup, topo)

    def test_spec_topology_mismatch(self):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        with pytest.raises(ValueError, match="mismatch"):
            Cluster(specs[:3], topo)

    def test_switch_disagreement(self):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        bad = list(specs)
        bad[0] = NodeSpec(
            name=bad[0].name,
            cores=bad[0].cores,
            frequency_ghz=bad[0].frequency_ghz,
            memory_gb=bad[0].memory_gb,
            switch="switch2",  # actually on switch1
        )
        with pytest.raises(ValueError, match="switch"):
            Cluster(bad, topo)


class TestAccess:
    def test_len_iter_contains(self, cluster):
        assert len(cluster) == 6
        assert "node1" in cluster
        assert list(cluster) == cluster.names

    def test_spec_lookup(self, cluster):
        assert cluster.spec("node1").cores == 12

    def test_unknown_node(self, cluster):
        with pytest.raises(KeyError):
            cluster.spec("ghost")
        with pytest.raises(KeyError):
            cluster.state("ghost")

    def test_initial_state_idle(self, cluster):
        st = cluster.state("node1")
        assert st.cpu_load == 0.0 and st.up

    def test_set_state_validates(self, cluster):
        good = NodeState(cpu_load=1.0)
        cluster.set_state("node1", good)
        assert cluster.state("node1").cpu_load == 1.0
        with pytest.raises(KeyError):
            cluster.set_state("ghost", good)

    def test_specs_view_is_copy(self, cluster):
        view = cluster.specs()
        view.pop("node1")
        assert "node1" in cluster


class TestAggregates:
    def test_total_cores(self, cluster):
        assert cluster.total_cores() == 6 * 12
        assert cluster.total_cores(["node1", "node2"]) == 24

    def test_up_down(self, cluster):
        cluster.mark_down("node3")
        assert "node3" not in cluster.up_nodes()
        cluster.mark_up("node3")
        assert "node3" in cluster.up_nodes()
