"""Tests for node specs and states."""

import pytest

from repro.cluster.node import NodeSpec, NodeState


def spec(**kw):
    base = dict(
        name="n1", cores=12, frequency_ghz=4.6, memory_gb=16.0, switch="s1"
    )
    base.update(kw)
    return NodeSpec(**base)


class TestNodeSpec:
    def test_valid(self):
        s = spec()
        assert s.cores == 12 and s.switch == "s1"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            spec().cores = 8  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kw",
        [
            {"name": ""},
            {"cores": 0},
            {"cores": -4},
            {"frequency_ghz": 0.0},
            {"memory_gb": -1.0},
            {"switch": ""},
        ],
    )
    def test_invalid_fields(self, kw):
        with pytest.raises(ValueError):
            spec(**kw)


class TestNodeState:
    def test_defaults_are_idle_and_up(self):
        st = NodeState()
        assert st.cpu_load == 0.0 and st.up

    def test_copy_is_independent(self):
        st = NodeState(cpu_load=2.0)
        cp = st.copy()
        cp.cpu_load = 5.0
        assert st.cpu_load == 2.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"cpu_load": -1.0},
            {"cpu_util": -5.0},
            {"cpu_util": 101.0},
            {"memory_used_gb": -0.5},
            {"flow_rate_mbs": -1.0},
            {"users": -1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            NodeState(**kw)

    def test_boundary_util(self):
        assert NodeState(cpu_util=100.0).cpu_util == 100.0
