"""FleetExecutor — ordered pass execution with per-action atomicity."""

from __future__ import annotations

import pytest

from repro.elastic.executor import MigrationFailure, TwoPhaseExecutor
from repro.fleet.executor import (
    ACTION_ORDER,
    FleetExecutor,
    FleetPassReport,
    order_plans,
)
from repro.scheduler.leases import LeaseTable

from tests.elastic.conftest import FakeClock, make_plan


@pytest.fixture
def table() -> LeaseTable:
    return LeaseTable(
        clock=FakeClock(), default_ttl_s=3600.0, max_ttl_s=7200.0
    )


@pytest.fixture
def fleet(table) -> FleetExecutor:
    return FleetExecutor(TwoPhaseExecutor(table, reserve_ttl_s=60.0))


class TestOrdering:
    def test_shrinks_then_moves_then_expands(self):
        expand = make_plan(
            lease_id="L3", old_nodes=("a",), new_nodes=("a", "b")
        )
        shrink = make_plan(
            lease_id="L2", old_nodes=("c", "d"), new_nodes=("c",)
        )
        migrate = make_plan(
            lease_id="L1", old_nodes=("e", "f"), new_nodes=("g", "h")
        )
        ordered = order_plans([expand, migrate, shrink])
        assert [p.kind for p in ordered] == ["shrink", "migrate", "expand"]

    def test_ties_break_on_lease_id(self):
        a = make_plan(lease_id="LA", old_nodes=("a", "b"), new_nodes=("c", "d"))
        b = make_plan(lease_id="LB", old_nodes=("e", "f"), new_nodes=("g", "h"))
        assert [p.lease_id for p in order_plans([b, a])] == ["LA", "LB"]

    def test_rebalance_rides_with_migrate(self):
        assert ACTION_ORDER["rebalance"] == ACTION_ORDER["migrate"]
        assert ACTION_ORDER["shrink"] < ACTION_ORDER["migrate"]
        assert ACTION_ORDER["migrate"] < ACTION_ORDER["expand"]


class TestApplyPass:
    def grant(self, table, nodes):
        return table.grant(list(nodes), {n: 4 for n in nodes})

    def test_all_commit(self, table, fleet):
        l1 = self.grant(table, ("a", "b"))
        l2 = self.grant(table, ("c", "d"))
        plans = [
            make_plan(lease_id=l1.lease_id,
                      old_nodes=("a", "b"), new_nodes=("e", "f")),
            make_plan(lease_id=l2.lease_id,
                      old_nodes=("c", "d"), new_nodes=("c",)),
        ]
        report = fleet.apply_pass(plans)
        assert (report.applied, report.failed) == (2, 0)
        assert table.held_nodes() == {"e", "f", "c"}
        assert (fleet.passes, fleet.actions_applied) == (1, 2)

    def test_mid_pass_failure_rolls_back_only_that_action(self, table, fleet):
        l1 = self.grant(table, ("a", "b"))
        l2 = self.grant(table, ("c", "d"))
        plans = [
            make_plan(lease_id=l1.lease_id,
                      old_nodes=("a", "b"), new_nodes=("e", "f")),
            make_plan(lease_id=l2.lease_id,
                      old_nodes=("c", "d"), new_nodes=("g", "h")),
        ]
        calls = {"n": 0}

        def flaky_migrate(plan):
            calls["n"] += 1
            if calls["n"] == 2:
                raise MigrationFailure("transfer died mid-flight")

        report = fleet.apply_pass(plans, migrate=flaky_migrate)
        assert (report.applied, report.failed) == (1, 1)
        outcomes = {r.lease_id: r for r in report.results}
        assert outcomes[l1.lease_id].outcome == "committed"
        failed = outcomes[l2.lease_id]
        assert failed.outcome == "failed"
        assert failed.error == "RECONFIG_FAILED"
        # the failed lease kept its nodes; the committed one moved
        assert set(table.get(l1.lease_id).nodes) == {"e", "f"}
        assert set(table.get(l2.lease_id).nodes) == {"c", "d"}
        assert table.held_nodes() == {"e", "f", "c", "d"}
        assert (fleet.actions_applied, fleet.actions_failed) == (1, 1)

    def test_counters_accumulate_across_passes(self, table, fleet):
        lease = self.grant(table, ("a", "b"))
        fleet.apply_pass([make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"), new_nodes=("c", "d"),
        )])
        fleet.apply_pass([make_plan(
            lease_id=lease.lease_id,
            old_nodes=("c", "d"), new_nodes=("a", "b"),
        )])
        assert fleet.passes == 2
        assert fleet.actions_applied == 2

    def test_empty_pass_is_counted_but_harmless(self, fleet):
        report = fleet.apply_pass([])
        assert report == FleetPassReport()
        assert fleet.passes == 1

    def test_report_to_dict_shape(self, table, fleet):
        lease = self.grant(table, ("a", "b"))
        report = fleet.apply_pass([make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"), new_nodes=("c", "d"),
            predicted_gain=0.4,
        )])
        d = report.to_dict()
        assert d["applied"] == 1 and d["failed"] == 0
        (action,) = d["actions"]
        assert action == {
            "lease_id": lease.lease_id,
            "kind": "migrate",
            "outcome": "committed",
            "predicted_gain": 0.4,
            "error": None,
        }
