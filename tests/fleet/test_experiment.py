"""The three-way fleet experiment, end to end at toy scale.

The full acceptance run (seed 2, default config) lives in
benchmarks/bench_fleet.py and the CI fleet-smoke job; here a shrunken
world checks the harness itself: determinism, result plumbing, and the
never-worse ordering of the three variants.
"""

from __future__ import annotations

import pytest

from repro.fleet.experiment import (
    FleetExperimentConfig,
    run_fleet_comparison,
)

#: small enough for test time, oversubscribed enough to queue jobs
TINY = dict(n_jobs=3, warmup_s=600.0, app_timesteps=6000)


@pytest.fixture(scope="module")
def cmp():
    return run_fleet_comparison(seed=2, **TINY)


class TestComparison:
    def test_three_variants_ran_every_job(self, cmp):
        for variant in (cmp.static, cmp.elastic, cmp.fleet):
            assert variant.stats.n_jobs == 3
            assert variant.stats.makespan_s > 0
            assert 0.0 <= variant.utilization <= 1.0

    def test_never_worse_ordering(self, cmp):
        assert cmp.elastic_vs_static_pct >= 0.0
        assert cmp.fleet_vs_static_pct >= 0.0
        assert cmp.fleet_vs_elastic_pct >= 0.0
        assert cmp.fleet_utilization_delta >= 0.0
        assert cmp.fleet.failed_migrations == 0

    def test_fleet_variant_ran_passes(self, cmp):
        assert cmp.fleet.fleet_passes > 0
        assert cmp.static.fleet_passes == 0
        assert cmp.elastic.fleet_passes == 0

    def test_to_dict_round_trips_the_headlines(self, cmp):
        d = cmp.to_dict()
        assert d["seed"] == 2
        assert set(d) >= {"static", "elastic", "fleet",
                          "elastic_vs_static_pct", "fleet_vs_static_pct",
                          "fleet_vs_elastic_pct", "fleet_utilization_delta"}
        assert d["fleet"]["variant"] == "fleet"
        assert d["fleet"]["fleet_passes"] == cmp.fleet.fleet_passes

    def test_deterministic_replay(self, cmp):
        again = run_fleet_comparison(seed=2, **TINY)
        assert again.to_dict() == cmp.to_dict()


class TestConfig:
    def test_rejects_degenerate_worlds(self):
        with pytest.raises(ValueError):
            FleetExperimentConfig(n_nodes=1)
        with pytest.raises(ValueError):
            FleetExperimentConfig(n_jobs=0)

    def test_overrides_reach_the_config(self):
        # unknown override names must fail loudly, not silently no-op
        with pytest.raises(TypeError):
            run_fleet_comparison(seed=0, no_such_knob=1)
