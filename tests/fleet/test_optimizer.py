"""The global malleability search: admit / expand / shrink-to-admit.

Concrete fleet states with hand-checkable arithmetic; the randomized
never-worse invariant lives in tests/properties/test_fleet_properties.py
and benchmarks/bench_fleet.py.
"""

from __future__ import annotations

import pytest

from repro.fleet.optimizer import (
    FleetAction,
    FleetJobState,
    FleetOptimizer,
    FleetWeights,
    PendingJobState,
    fleet_objective,
    jain_index,
)
from repro.fleet.utility import SpeedupCurve

LINEAR = SpeedupCurve("linear", efficiency=0.9)
#: nearly serial: shrinking this job costs almost nothing
SERIAL = SpeedupCurve("amdahl", serial_fraction=0.9)


def job(job_id, ranks, curve=LINEAR, **kwargs):
    return FleetJobState(job_id=job_id, ranks=ranks, curve=curve, **kwargs)


def pending(job_id, ranks, curve=LINEAR, **kwargs):
    return PendingJobState(job_id=job_id, ranks=ranks, curve=curve, **kwargs)


def by_kind(result, kind):
    return [a for a in result.actions if a.kind == kind]


class TestObjective:
    def test_jain_index_bounds(self):
        assert jain_index([]) == 1.0
        assert jain_index([4, 4, 4]) == pytest.approx(1.0)
        # one hog, three starved → well below 1
        assert jain_index([16, 1, 1, 1]) < 0.5

    def test_fleet_objective_terms(self):
        jobs = [job("a", 4), job("b", 4)]
        weights = FleetWeights(productivity=1.0, utilization=2.0, fairness=0.5)
        expected = (
            2 * LINEAR.speedup(4)  # productivity, weight 1 each
            + 2.0 * (8 / 16)       # utilization
            + 0.5 * 1.0            # fairness (equal ranks)
        )
        assert fleet_objective(jobs, 16, weights) == pytest.approx(expected)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            fleet_objective([], 0)


class TestValidation:
    def test_job_state_bounds(self):
        with pytest.raises(ValueError):
            job("a", 0)
        with pytest.raises(ValueError):
            job("a", 4, min_ranks=5)
        with pytest.raises(ValueError):
            job("a", 4, max_ranks=3)
        with pytest.raises(ValueError):
            job("a", 4, weight=0.0)

    def test_pending_state_bounds(self):
        with pytest.raises(ValueError):
            pending("p", 0)
        with pytest.raises(ValueError):
            pending("p", 2, wait_s=-1.0)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError):
            FleetOptimizer().optimize([job("a", 2), job("a", 4)], [], 16)

    def test_optimizer_config_bounds(self):
        with pytest.raises(ValueError):
            FleetOptimizer(max_rounds=0)
        with pytest.raises(ValueError):
            FleetOptimizer(swap_passes=-1)
        with pytest.raises(ValueError):
            FleetOptimizer(reserve_frac=1.0)


class TestAdmission:
    def test_fitting_head_is_admitted(self):
        result = FleetOptimizer().optimize(
            [job("a", 4)], [pending("p0", 4)], 32
        )
        admits = by_kind(result, "admit")
        assert [a.job_id for a in admits] == ["p0"]
        assert admits[0].delta_ranks == 4
        assert result.objective_gain > 0

    def test_queue_admits_in_fifo_order(self):
        result = FleetOptimizer().optimize(
            [],
            [pending("p0", 4), pending("p1", 4), pending("p2", 4)],
            32,
        )
        admits = [a.job_id for a in by_kind(result, "admit")]
        # only a FIFO prefix is ever admitted — never p1 without p0
        assert admits == sorted(admits)
        assert admits[0] == "p0"

    def test_shrink_to_admit_compound(self):
        # cluster packed solid by one nearly-serial job; a small
        # well-scaling arrival is worth donor shrinks + admission
        result = FleetOptimizer().optimize(
            [job("hog", 8, curve=SERIAL, min_ranks=1)],
            [pending("p0", 2, weight=2.0)],
            8,
        )
        shrinks = by_kind(result, "shrink")
        admits = by_kind(result, "admit")
        assert [a.job_id for a in shrinks] == ["hog"]
        assert [a.job_id for a in admits] == ["p0"]
        # donors freed the head *plus* the 25% capacity reserve
        used = shrinks[0].target_ranks + admits[0].target_ranks
        assert used <= 8 - 2
        assert result.objective_gain > 0

    def test_head_that_cannot_fit_blocks_everything(self):
        # nobody can donate (min_ranks == ranks) and the head does not
        # fit: no admission — and no expansion either, because growing a
        # running job past a waiting one would starve the queue
        result = FleetOptimizer().optimize(
            [job("a", 4, min_ranks=4, max_ranks=16)],
            [pending("huge", 100)],
            16,
        )
        assert result.actions == ()
        assert result.objective_gain == pytest.approx(0.0)


class TestExpansion:
    def test_expansion_only_with_empty_queue(self):
        with_queue = FleetOptimizer().optimize(
            [job("a", 4, max_ranks=16)], [pending("huge", 100)], 16
        )
        without = FleetOptimizer().optimize(
            [job("a", 4, max_ranks=16)], [], 16
        )
        assert by_kind(with_queue, "expand") == []
        assert len(by_kind(without, "expand")) == 1

    def test_expansion_respects_capacity_reserve(self):
        result = FleetOptimizer(reserve_frac=0.25).optimize(
            [job("a", 4, step=4)], [], 16
        )
        expands = by_kind(result, "expand")
        assert expands, "a well-scaling lone job should grow"
        # 25% of 16 = 4 ranks must stay free after every expansion
        assert expands[0].target_ranks <= 12

    def test_expansion_respects_max_ranks(self):
        result = FleetOptimizer(reserve_frac=0.0).optimize(
            [job("a", 4, max_ranks=8)], [], 64
        )
        assert by_kind(result, "expand")[0].target_ranks == 8


class TestResultShape:
    def test_pure_function_of_inputs(self):
        jobs = [job("a", 4, curve=SERIAL), job("b", 2)]
        queue = [pending("p0", 2)]
        a = FleetOptimizer().optimize(jobs, queue, 16)
        b = FleetOptimizer().optimize(jobs, queue, 16)
        assert a == b

    def test_gain_is_after_minus_before(self):
        result = FleetOptimizer().optimize([job("a", 4)], [], 32)
        assert result.objective_gain == pytest.approx(
            result.objective_after - result.objective_before
        )
        assert result.rounds >= 1

    def test_noop_state_yields_no_actions(self):
        # at max_ranks with nothing queued there is no move to make
        result = FleetOptimizer().optimize(
            [job("a", 4, max_ranks=4)], [], 32
        )
        assert result.actions == ()
        assert result.objective_after == result.objective_before

    def test_actions_are_typed(self):
        result = FleetOptimizer().optimize([job("a", 4)], [], 32)
        for action in result.actions:
            assert isinstance(action, FleetAction)
            assert action.kind in ("expand", "shrink", "admit")
