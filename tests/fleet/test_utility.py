"""Speedup-curve families: exact forms, class seeding, calibration."""

from __future__ import annotations

import math

import pytest

from repro.experiments.scenario import small_scenario
from repro.fleet.utility import (
    FAMILIES,
    SpeedupCurve,
    calibrate_amdahl,
    curve_for_class,
    measured_speedup,
)


class TestFamilies:
    def test_amdahl_closed_form(self):
        curve = SpeedupCurve("amdahl", serial_fraction=0.1)
        assert curve.speedup(1) == pytest.approx(1.0)
        assert curve.speedup(8) == pytest.approx(1.0 / (0.1 + 0.9 / 8))
        # bounded above by 1/f no matter how many ranks
        assert curve.speedup(10_000) < 10.0

    def test_log_closed_form(self):
        curve = SpeedupCurve("log", log_scale=1.5)
        assert curve.speedup(1) == pytest.approx(1.0)
        assert curve.speedup(10) == pytest.approx(1.0 + 1.5 * math.log(10))

    def test_linear_closed_form(self):
        curve = SpeedupCurve("linear", efficiency=0.8)
        assert curve.speedup(1) == pytest.approx(1.0)
        assert curve.speedup(5) == pytest.approx(1.0 + 0.8 * 4)
        assert curve.marginal_utility(5) == pytest.approx(0.8)

    def test_marginal_utility_signs(self):
        curve = SpeedupCurve("amdahl", serial_fraction=0.05)
        assert curve.marginal_utility(4, 1) > 0
        assert curve.marginal_utility(4, -1) < 0
        assert curve.marginal_utility(4, 0) == 0.0

    @pytest.mark.parametrize("bad", [
        dict(family="cubic"),
        dict(family="amdahl", serial_fraction=-0.1),
        dict(family="amdahl", serial_fraction=1.5),
        dict(family="log", log_scale=-1.0),
        dict(family="linear", efficiency=0.0),
        dict(family="linear", efficiency=1.5),
    ])
    def test_parameter_validation(self, bad):
        with pytest.raises(ValueError):
            SpeedupCurve(**bad)

    def test_ranks_validation(self):
        curve = SpeedupCurve("linear")
        with pytest.raises(ValueError):
            curve.speedup(0)
        with pytest.raises(ValueError):
            curve.marginal_utility(2, -2)


class TestClassCurves:
    def test_deterministic_per_class_and_seed(self):
        assert curve_for_class("fft") == curve_for_class("fft")
        assert curve_for_class("fft", seed=1) == curve_for_class("fft", seed=1)
        assert curve_for_class("fft") != curve_for_class("fft", seed=1)

    def test_distinct_classes_get_distinct_curves(self):
        curves = {curve_for_class(f"class-{i}") for i in range(16)}
        assert len(curves) > 1
        assert {c.family for c in curves} <= set(FAMILIES)

    def test_parameters_land_in_documented_ranges(self):
        for i in range(64):
            curve = curve_for_class(f"c{i}")
            if curve.family == "amdahl":
                assert 0.02 <= curve.serial_fraction <= 0.20
            elif curve.family == "log":
                assert 0.5 <= curve.log_scale <= 1.5
            else:
                assert 0.6 <= curve.efficiency <= 0.95


class TestCalibration:
    @pytest.fixture(scope="class")
    def sc(self):
        return small_scenario(n_nodes=8, seed=4, warmup_s=600.0)

    @pytest.fixture(scope="class")
    def app(self):
        from repro.apps.minimd import MiniMD, MiniMDConfig

        return MiniMD(8, MiniMDConfig(timesteps=50))

    def test_measured_speedup_of_parallel_app(self, sc, app):
        nodes = sorted(sc.cluster.names)[:4]
        s = measured_speedup(
            app, sc.cluster, sc.network, nodes, ranks=8, ppn=4
        )
        assert s > 1.0  # more ranks genuinely help this app

    def test_calibrated_curve_matches_the_probe(self, sc, app):
        nodes = sorted(sc.cluster.names)[:4]
        curve = calibrate_amdahl(
            app, sc.cluster, sc.network, nodes, probe_ranks=8, ppn=4
        )
        assert curve.family == "amdahl"
        measured = measured_speedup(
            app, sc.cluster, sc.network, nodes, ranks=8, ppn=4
        )
        # the fit inverts Amdahl at the probe point, so it reproduces it
        assert curve.speedup(8) == pytest.approx(measured, rel=1e-6)

    def test_probe_validation(self, sc, app):
        with pytest.raises(ValueError):
            calibrate_amdahl(
                app, sc.cluster, sc.network,
                sorted(sc.cluster.names)[:4], probe_ranks=1,
            )
