"""Tests for the command-line interface.

CLI commands build real (small-warm-up) scenarios, so these are
integration tests; they use short warm-ups to stay quick.
"""

import pytest

from repro.cli import build_parser, main

FAST = ["--warmup-min", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_defaults(self):
        args = build_parser().parse_args(["allocate"])
        assert args.procs == 32 and args.ppn == 4
        assert args.policy == "network_load_aware"


class TestAllocate:
    def test_prints_hostfile(self, capsys):
        assert main(["allocate", "-n", "8", "--seed", "1", *FAST]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert len(lines) == 2
        assert all(":" in l for l in lines)
        total = sum(int(l.split(":")[1]) for l in lines)
        assert total == 8

    def test_policy_selection(self, capsys):
        assert main(
            ["allocate", "-n", "8", "--policy", "load_aware", "--seed", "1", *FAST]
        ) == 0
        assert "policy=load_aware" in capsys.readouterr().out


class TestSimulate:
    def test_minimd(self, capsys):
        rc = main(
            ["simulate", "-n", "8", "--app", "minimd", "--size", "8",
             "--seed", "1", *FAST]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "app=miniMD" in out and "time=" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--app", "hpl", *FAST])


class TestCompare:
    def test_all_policies_listed(self, capsys):
        rc = main(
            ["compare", "-n", "8", "--app", "minife", "--size", "48",
             "--alpha", "0.4", "--seed", "1", *FAST]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for policy in ("random", "sequential", "load_aware", "network_load_aware"):
            assert policy in out


class TestTrace:
    def test_csv_to_stdout(self, capsys):
        rc = main(
            ["trace", "--hours", "0.5", "--period-s", "600", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("time,node,")

    def test_csv_to_file(self, tmp_path, capsys):
        target = tmp_path / "trace.csv"
        rc = main(
            ["trace", "--hours", "0.5", "--period-s", "600",
             "--seed", "1", "-o", str(target)]
        )
        assert rc == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out


class TestReport:
    def test_table4(self, capsys):
        rc = main(["report", "table4", "--seed", "1", *FAST])
        assert rc == 0
        assert "Table 4" in capsys.readouterr().out

    def test_fig1_short(self, capsys):
        rc = main(["report", "fig1", "--hours", "2", "--seed", "1"])
        assert rc == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["report", "fig99"])

    def test_reduced_grid_table2(self, capsys):
        rc = main(
            ["report", "table2", "--procs", "8", "--sizes", "16",
             "--repeats", "1", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_bad_grid_list(self):
        with pytest.raises(SystemExit):
            main(["report", "fig4", "--procs", "eight"])


class TestJsonOutput:
    def test_allocate_json(self, capsys):
        import json

        assert main(["allocate", "-n", "8", "--seed", "1", "--json", *FAST]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["policy"] == "network_load_aware"
        assert sum(data["procs"].values()) == 8
        assert set(data["procs"]) == set(data["nodes"])
        assert data["hostfile"].endswith("\n")

    def test_compare_json(self, capsys):
        import json

        rc = main(
            ["compare", "-n", "8", "--app", "minimd", "--size", "8",
             "--seed", "1", "--json", *FAST]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["runs"]) == {
            "random", "sequential", "load_aware", "network_load_aware",
        }
        for run in data["runs"].values():
            assert run["time_s"] > 0 and run["n_nodes"] == len(run["nodes"])


class TestScenarios:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-tree" in out and "[paper]" in out
        assert "fat-tree" in out and "bursty" in out

    def test_list_json(self, capsys):
        import json

        assert main(["scenarios", "list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [d["name"] for d in data]
        assert names[0] == "paper-tree"
        assert sum(d["paper"] for d in data) == 1
        assert all({"name", "description", "smoke", "paper"} <= set(d)
                   for d in data)

    def test_run_json(self, capsys):
        import json

        rc = main(
            ["scenarios", "run", "fat-tree", "--seed", "1", "--jobs", "2",
             "-n", "8", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "fat-tree" and data["n_jobs"] == 2
        assert set(data["mean_times_s"]) == {
            "random", "sequential", "load_aware", "network_load_aware",
        }

    def test_run_unknown_scenario(self, capsys):
        assert main(["scenarios", "run", "no-such"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_world_commands_accept_scenario_flag(self):
        for argv in (
            ["allocate", "--scenario", "mesh"],
            ["elastic", "--scenario", "bursty"],
            ["fleet", "--scenario", "fat-tree"],
            ["chaos", "--scenario", "bursty"],
        ):
            args = build_parser().parse_args(argv)
            assert args.scenario == argv[-1]

    def test_allocate_on_scenario_world(self, capsys):
        rc = main(
            ["allocate", "-n", "8", "--seed", "1", "--scenario", "fat-tree",
             *FAST]
        )
        assert rc == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert sum(int(l.split(":")[1]) for l in lines) == 8

    def test_allocate_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["allocate", "--scenario", "no-such", *FAST])


class TestServeClientParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7077 and args.host == "127.0.0.1"
        assert args.batch_window_ms == 0.0 and args.max_queue == 128
        assert args.default_ttl_s == 60.0

    def test_client_allocate_defaults(self):
        args = build_parser().parse_args(["client", "allocate"])
        assert args.procs == 32 and args.ppn is None
        assert args.port == 7077 and not args.json

    def test_client_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client"])


class TestClientCommands:
    """Drive the `client` CLI against a real loopback daemon."""

    @pytest.fixture(scope="class")
    def daemon(self):
        from repro.broker import BrokerDaemonThread, BrokerServer, BrokerService
        from repro.experiments.scenario import small_scenario
        from repro.monitor.snapshot import CachedSnapshotSource

        sc = small_scenario(8, seed=5, warmup_s=600.0)
        source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
        server = BrokerServer(BrokerService(source), port=0)
        with BrokerDaemonThread(server) as d:
            yield d

    def test_full_lease_roundtrip(self, daemon, capsys):
        import json

        port = str(daemon.port)
        rc = main(["client", "--port", port, "allocate", "-n", "8",
                   "--ppn", "4", "--ttl-s", "30", "--json"])
        assert rc == 0
        grant = json.loads(capsys.readouterr().out)
        lease = grant["lease_id"]
        assert sum(grant["procs"].values()) == 8

        assert main(["client", "--port", port, "renew", lease]) == 0
        assert "renewed" in capsys.readouterr().out

        assert main(["client", "--port", port, "release", lease]) == 0
        assert "released" in capsys.readouterr().out

        # double release surfaces the structured code and a non-zero rc
        assert main(["client", "--port", port, "release", lease]) == 1
        assert "UNKNOWN_LEASE" in capsys.readouterr().err

    def test_status_command(self, daemon, capsys):
        assert main(["client", "--port", str(daemon.port), "status"]) == 0
        out = capsys.readouterr().out
        assert "leases:" in out and "latency:" in out

    def test_connect_error_exit_code(self, capsys):
        rc = main(["client", "--port", "1", "--connect-retries", "0",
                   "status"])
        assert rc == 1
        assert "CONNECT" in capsys.readouterr().err
