"""A worked end-to-end trace of Algorithms 1+2 with hand-checked numbers.

Four nodes, fully hand-computable: verifies the exact arithmetic of
addition costs, candidate growth, Equation-4 normalization and the final
selection, guarding the implementation against silent formula drift.
"""

import pytest

from repro.core.candidate import (
    addition_costs,
    generate_all_candidates,
    generate_candidate,
)
from repro.core.selection import score_candidates, select_best
from repro.core.weights import TradeOff

NODES = ["w", "x", "y", "z"]
CL = {"w": 0.2, "x": 0.4, "y": 0.6, "z": 0.8}
NL = {
    ("w", "x"): 0.1,
    ("w", "y"): 0.5,
    ("w", "z"): 0.9,
    ("x", "y"): 0.3,
    ("x", "z"): 0.7,
    ("y", "z"): 0.2,
}
PC = {n: 2 for n in NODES}
T = TradeOff(alpha=0.5, beta=0.5)


class TestWorkedExample:
    def test_addition_costs_from_w(self):
        a = addition_costs("w", NODES, CL, NL, T)
        # A_w(x) = .5*.4 + .5*.1 = .25; A_w(y) = .3+.25 = .55; A_w(z) = .85
        assert a == pytest.approx(
            {"w": 0.0, "x": 0.25, "y": 0.55, "z": 0.85}
        )

    def test_candidate_from_each_start(self):
        # n=4 -> two nodes each
        expectations = {
            "w": {"w", "x"},  # cheapest partner x
            "x": {"x", "w"},  # A_x(w) = .1+.05 = .15 < A_x(y)=.45 < A_x(z)=.75
            "y": {"y", "x"},  # A_y(x)=.2+.15=.35 < A_y(z)=.5 < A_y(w)=.35? ->
                              # A_y(w)= .5*.2+.5*.5 = .35 ties A_y(x)=.35;
                              # stable sort prefers node order: x before w? no —
                              # order is by (cost, not-start): ties keep input
                              # order w before x, so w wins the tie.
            "z": {"z", "y"},  # A_z(y)=.3+.1=.4 < A_z(x)=.55 < A_z(w)=.55
        }
        cands = {c.start: set(c.nodes) for c in
                 generate_all_candidates(NODES, CL, NL, PC, 4, T)}
        assert cands["w"] == expectations["w"]
        assert cands["x"] == expectations["x"]
        assert cands["z"] == expectations["z"]
        # the y-start tie: A_y(w) == A_y(x) == 0.35; input order keeps w first
        assert cands["y"] == {"y", "w"}

    def test_equation4_selection(self):
        cands = generate_all_candidates(NODES, CL, NL, PC, 4, T)
        scored = {s.candidate.start: s for s in
                  score_candidates(cands, CL, NL, T)}
        # raw totals: C = CL sums, N = NL of the single pair
        assert scored["w"].compute_cost == pytest.approx(0.6)
        assert scored["w"].network_cost == pytest.approx(0.1)
        assert scored["z"].compute_cost == pytest.approx(1.4)
        assert scored["z"].network_cost == pytest.approx(0.2)
        # normalized columns each sum to 1 over the four candidates
        assert sum(s.compute_cost_normalized for s in scored.values()) == (
            pytest.approx(1.0)
        )
        best = select_best(cands, CL, NL, T)
        # {w, x} dominates: lowest compute sum AND lowest pair NL
        assert set(best.candidate.nodes) == {"w", "x"}

    def test_partial_fill_takes_partial_last_node(self):
        cand = generate_candidate("w", NODES, CL, NL, PC, 3, T)
        assert cand.procs == {"w": 2, "x": 1}
