"""Tests for §3.2.1 normalization and unidirectionalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import Criterion
from repro.core.normalization import (
    complement_to_max,
    mean_normalize,
    sum_normalize,
    to_cost,
)

# Zero or well-scaled positive values: subnormal floats (~5e-324) make the
# mean underflow to exactly 0 and turn ranking ties into noise, which is a
# float-arithmetic artefact rather than a normalization property.
values_strategy = st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=1e6)),
    min_size=1,
    max_size=10,
)


class TestSumNormalize:
    def test_sums_to_one(self):
        out = sum_normalize({"a": 1.0, "b": 3.0})
        assert sum(out.values()) == pytest.approx(1.0)
        assert out["b"] == pytest.approx(0.75)

    def test_all_zero(self):
        assert sum_normalize({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert sum_normalize({}) == {}

    @given(values_strategy)
    def test_preserves_order(self, values):
        out = sum_normalize(values)
        keys = list(values)
        for a in keys:
            for b in keys:
                if values[a] < values[b]:
                    assert out[a] <= out[b]


class TestMeanNormalize:
    def test_mean_becomes_one(self):
        out = mean_normalize({"a": 1.0, "b": 3.0})
        assert sum(out.values()) / 2 == pytest.approx(1.0)

    def test_scale_independent_of_cardinality(self):
        small = mean_normalize({"a": 2.0, "b": 4.0})
        big = mean_normalize({f"k{i}": v for i, v in enumerate([2.0, 4.0] * 50)})
        assert small["a"] == pytest.approx(big["k0"])

    def test_ranking_equivalent_to_sum(self):
        vals = {"a": 5.0, "b": 1.0, "c": 3.0}
        rank = lambda d: sorted(d, key=d.get)  # noqa: E731
        assert rank(sum_normalize(vals)) == rank(mean_normalize(vals))

    def test_all_zero(self):
        assert mean_normalize({"a": 0.0}) == {"a": 0.0}

    def test_empty(self):
        assert mean_normalize({}) == {}


class TestComplement:
    def test_flips_direction(self):
        out = complement_to_max({"a": 0.2, "b": 0.8})
        assert out == {"a": pytest.approx(0.6), "b": 0.0}

    def test_empty(self):
        assert complement_to_max({}) == {}

    def test_max_element_becomes_zero(self):
        out = complement_to_max({"a": 1.0, "b": 7.0, "c": 3.0})
        assert out["b"] == 0.0
        assert all(v >= 0 for v in out.values())


class TestToCost:
    def test_minimize_passthrough(self):
        out = to_cost({"a": 1.0, "b": 3.0}, Criterion.MINIMIZE, method="sum")
        assert out["a"] < out["b"]

    def test_maximize_complemented(self):
        out = to_cost({"a": 1.0, "b": 3.0}, Criterion.MAXIMIZE, method="sum")
        assert out["a"] > out["b"]  # big raw value = low cost

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown normalization"):
            to_cost({"a": 1.0}, Criterion.MINIMIZE, method="median")

    @given(values_strategy)
    def test_costs_non_negative(self, values):
        for crit in Criterion:
            for method in ("sum", "mean"):
                out = to_cost(values, crit, method=method)
                assert all(v >= -1e-12 for v in out.values())

    @given(values_strategy)
    def test_best_node_invariant_across_methods(self, values):
        """Property: sum- and mean-normalization rank identically."""
        for crit in Criterion:
            a = to_cost(values, crit, method="sum")
            b = to_cost(values, crit, method="mean")
            best_a = min(sorted(a), key=lambda k: a[k])
            best_b = min(sorted(b), key=lambda k: b[k])
            assert best_a == best_b
