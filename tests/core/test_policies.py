"""Tests for all allocation policies and shared plumbing."""

import numpy as np
import pytest

from repro.core.policies import (
    Allocation,
    AllocationError,
    AllocationRequest,
    BruteForcePolicy,
    LoadAwarePolicy,
    NetworkLoadAwarePolicy,
    PAPER_POLICIES,
    RandomPolicy,
    SequentialPolicy,
    distribute,
)
from repro.core.weights import TradeOff
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def snapshot():
    """8 nodes: 1-4 idle & well connected; 5-6 loaded; 7-8 far away."""
    views = {}
    for i in range(1, 9):
        load = 9.0 if i in (5, 6) else 0.3
        views[f"n{i}"] = make_view(f"n{i}", load=load)
    bandwidth = {}
    latency = {}
    for i in range(1, 9):
        for j in range(i + 1, 9):
            a, b = f"n{i}", f"n{j}"
            far = i >= 7 or j >= 7
            bandwidth[(a, b)] = 20.0 if far else 120.0
            latency[(a, b)] = 500.0 if far else 60.0
    return make_snapshot(dict(sorted(views.items())), bandwidth=bandwidth, latency=latency)


class TestAllocationRequest:
    def test_nodes_needed(self):
        assert AllocationRequest(32, ppn=4).nodes_needed == 8
        assert AllocationRequest(30, ppn=4).nodes_needed == 8
        assert AllocationRequest(32).nodes_needed is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AllocationRequest(0)
        with pytest.raises(ValueError):
            AllocationRequest(4, ppn=0)


class TestAllocation:
    def test_consistency_enforced(self):
        req = AllocationRequest(8, ppn=4)
        with pytest.raises(ValueError, match="at least one node"):
            Allocation("x", (), {}, req, 0.0)
        with pytest.raises(ValueError, match="exactly match"):
            Allocation("x", ("a",), {"b": 8}, req, 0.0)
        with pytest.raises(ValueError, match=">= 1"):
            Allocation("x", ("a", "b"), {"a": 8, "b": 0}, req, 0.0)
        with pytest.raises(ValueError, match="hosts"):
            Allocation("x", ("a",), {"a": 5}, req, 0.0)

    def test_hostfile_format(self):
        req = AllocationRequest(8, ppn=4)
        a = Allocation("x", ("a", "b"), {"a": 4, "b": 4}, req, 0.0)
        assert a.hostfile() == "a:4\nb:4\n"
        assert a.n_nodes == 2


class TestDistribute:
    def test_ppn_fill(self):
        assert distribute(["a", "b"], 8, 4) == {"a": 4, "b": 4}

    def test_ppn_partial_tail(self):
        assert distribute(["a", "b"], 6, 4) == {"a": 4, "b": 2}

    def test_ppn_oversubscribe_round_robin(self):
        out = distribute(["a", "b"], 11, 4)
        assert sum(out.values()) == 11
        assert out["a"] >= 4 and out["b"] >= 4

    def test_balanced_without_ppn(self):
        out = distribute(["a", "b", "c"], 7, None)
        assert sorted(out.values()) == [2, 2, 3]

    def test_empty_nodes(self):
        with pytest.raises(AllocationError):
            distribute([], 4, 4)


class TestRandomPolicy:
    def test_requires_rng(self, snapshot):
        with pytest.raises(AllocationError, match="rng"):
            RandomPolicy().allocate(snapshot, AllocationRequest(8, ppn=4))

    def test_selects_requested_node_count(self, snapshot, rng):
        a = RandomPolicy().allocate(snapshot, AllocationRequest(16, ppn=4), rng=rng)
        assert a.n_nodes == 4
        assert sum(a.procs.values()) == 16

    def test_varies_with_rng(self, snapshot):
        r1 = RandomPolicy().allocate(
            snapshot, AllocationRequest(8, ppn=4), rng=np.random.default_rng(1)
        )
        picks = {
            RandomPolicy()
            .allocate(
                snapshot,
                AllocationRequest(8, ppn=4),
                rng=np.random.default_rng(s),
            )
            .nodes
            for s in range(10)
        }
        assert len(picks) > 1

    def test_default_spread_without_ppn(self, snapshot, rng):
        a = RandomPolicy().allocate(snapshot, AllocationRequest(8), rng=rng)
        assert a.n_nodes == 2  # ceil(8/4) neutral default


class TestSequentialPolicy:
    def test_consecutive_selection(self, snapshot, rng):
        a = SequentialPolicy().allocate(
            snapshot, AllocationRequest(12, ppn=4), rng=rng
        )
        names = list(snapshot.nodes)
        idx = [names.index(n) for n in a.nodes]
        gaps = np.diff(sorted(idx))
        assert sum(g != 1 for g in gaps) <= 1  # consecutive mod wrap

    def test_requires_rng(self, snapshot):
        with pytest.raises(AllocationError):
            SequentialPolicy().allocate(snapshot, AllocationRequest(8, ppn=4))

    def test_wraps_around(self, snapshot):
        # force a start near the end by trying many seeds until wrap occurs
        wrapped = False
        for s in range(30):
            a = SequentialPolicy().allocate(
                snapshot,
                AllocationRequest(12, ppn=4),
                rng=np.random.default_rng(s),
            )
            names = list(snapshot.nodes)
            idx = sorted(names.index(n) for n in a.nodes)
            if idx[0] == 0 and idx[-1] == len(names) - 1:
                wrapped = True
        assert wrapped


class TestLoadAwarePolicy:
    def test_avoids_loaded_nodes(self, snapshot, rng):
        a = LoadAwarePolicy().allocate(
            snapshot, AllocationRequest(16, ppn=4), rng=rng
        )
        assert "n5" not in a.nodes and "n6" not in a.nodes

    def test_ignores_network(self, snapshot, rng):
        # far nodes n7/n8 are idle: load-aware happily takes them
        a = LoadAwarePolicy().allocate(
            snapshot, AllocationRequest(24, ppn=4), rng=rng
        )
        assert {"n7", "n8"} <= set(a.nodes)

    def test_metadata_reports_load(self, snapshot, rng):
        a = LoadAwarePolicy().allocate(
            snapshot, AllocationRequest(8, ppn=4), rng=rng
        )
        assert "mean_compute_load" in a.metadata


class TestNetworkLoadAwarePolicy:
    def test_prefers_idle_well_connected_group(self, snapshot, rng):
        a = NetworkLoadAwarePolicy().allocate(
            snapshot,
            AllocationRequest(16, ppn=4, tradeoff=TradeOff(0.3, 0.7)),
            rng=rng,
        )
        assert set(a.nodes) == {"n1", "n2", "n3", "n4"}

    def test_avoids_far_nodes_when_beta_high(self, snapshot, rng):
        a = NetworkLoadAwarePolicy().allocate(
            snapshot,
            AllocationRequest(24, ppn=4, tradeoff=TradeOff(0.1, 0.9)),
            rng=rng,
        )
        # needs 6 nodes; should pick loaded n5/n6 over distant n7/n8
        assert {"n7", "n8"} & set(a.nodes) == set()

    def test_metadata_decomposition(self, snapshot, rng):
        a = NetworkLoadAwarePolicy().allocate(
            snapshot, AllocationRequest(8, ppn=4), rng=rng
        )
        for key in ("total_cost", "compute_cost", "network_cost"):
            assert key in a.metadata

    def test_works_without_rng(self, snapshot):
        a = NetworkLoadAwarePolicy().allocate(snapshot, AllocationRequest(8, ppn=4))
        assert a.n_nodes == 2

    def test_respects_effective_capacity_without_ppn(self, snapshot):
        # n5/n6 are loaded: Equation 3 gives them fewer slots
        a = NetworkLoadAwarePolicy().allocate(snapshot, AllocationRequest(40))
        assert sum(a.procs.values()) == 40
        for n in a.nodes:
            if n in ("n5", "n6"):
                assert a.procs[n] <= 3  # 12 - ceil(9) = 3


class TestBruteForcePolicy:
    def test_requires_ppn(self, snapshot, rng):
        with pytest.raises(AllocationError, match="ppn"):
            BruteForcePolicy().allocate(snapshot, AllocationRequest(8), rng=rng)

    def test_finds_obvious_optimum(self, snapshot, rng):
        a = BruteForcePolicy().allocate(
            snapshot,
            AllocationRequest(16, ppn=4, tradeoff=TradeOff(0.3, 0.7)),
            rng=rng,
        )
        assert set(a.nodes) == {"n1", "n2", "n3", "n4"}

    def test_greedy_close_to_optimal(self, snapshot, rng):
        """The paper's heuristic should match brute force on easy inputs."""
        req = AllocationRequest(16, ppn=4, tradeoff=TradeOff(0.3, 0.7))
        greedy = NetworkLoadAwarePolicy().allocate(snapshot, req, rng=rng)
        brute = BruteForcePolicy().allocate(snapshot, req, rng=rng)
        assert set(greedy.nodes) == set(brute.nodes)


class TestPaperPoliciesRegistry:
    def test_contains_the_four_section5_policies(self):
        assert set(PAPER_POLICIES) == {
            "random",
            "sequential",
            "load_aware",
            "network_load_aware",
        }

    def test_all_allocate(self, snapshot, rng):
        req = AllocationRequest(8, ppn=4)
        for name, cls in PAPER_POLICIES.items():
            a = cls().allocate(snapshot, req, rng=rng)
            assert a.policy == name
            assert sum(a.procs.values()) == 8

    def test_empty_livehosts_rejected(self, rng):
        snap = make_snapshot({"a": make_view("a")})
        object.__setattr__(snap, "livehosts", ())
        for cls in PAPER_POLICIES.values():
            with pytest.raises(AllocationError):
                cls().allocate(snap, AllocationRequest(4, ppn=4), rng=rng)
