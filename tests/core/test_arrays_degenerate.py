"""Degenerate normalization inputs: both allocator paths must agree.

Covers the cases where a naive vectorization would divide by zero: all
compute loads exactly zero (``ΣC = 0``), an empty or near-empty measured
network-load set (``ΣN = 0``, penalty from zero or one pairs), and
candidate groups consisting entirely of unmeasured links.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.arrays import (
    best_candidate_fast,
    generate_all_candidates_fast,
    load_state,
)
from repro.core.candidate import generate_all_candidates
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import TradeOff
from repro.monitor.snapshot import ClusterSnapshot, NodeView
from tests.core.test_array_equivalence import assert_allocations_equal


def _flat(v: float) -> dict[str, float]:
    return {"now": v, "m1": v, "m5": v, "m15": v}


def _identical_view(name: str, *, cores: int = 8) -> NodeView:
    """All attributes equal across nodes → every normalized cost is 0."""
    return NodeView(
        name=name,
        cores=cores,
        frequency_ghz=3.0,
        memory_gb=32.0,
        users=0,
        cpu_load=_flat(0.0),
        cpu_util=_flat(0.0),
        flow_rate_mbs=_flat(0.0),
        available_memory_gb=_flat(16.0),
    )


def _snapshot(
    names: list[str],
    *,
    measured_pairs: dict[tuple[str, str], tuple[float, float]] | None = None,
) -> ClusterSnapshot:
    """Identical nodes; only ``measured_pairs`` carry (bw, lat) data."""
    views = {n: _identical_view(n) for n in names}
    peak = {
        (a, b): 125.0 for a, b in itertools.combinations(sorted(names), 2)
    }
    bw: dict[tuple[str, str], float] = {}
    lat: dict[tuple[str, str], float] = {}
    for key, (b_val, l_val) in (measured_pairs or {}).items():
        key = key if key[0] <= key[1] else (key[1], key[0])
        bw[key] = b_val
        lat[key] = l_val
    return ClusterSnapshot(
        time=0.0,
        nodes=views,
        bandwidth_mbs=bw,
        latency_us=lat,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(names),
    )


def _both_paths(snap: ClusterSnapshot, request: AllocationRequest):
    a = NetworkLoadAwarePolicy(use_arrays=True).allocate(snap, request)
    b = NetworkLoadAwarePolicy(use_arrays=False).allocate(snap, request)
    assert_allocations_equal(a, b)
    return a


NAMES = ["a", "b", "c", "d"]


class TestDegenerateNormalization:
    def test_all_zero_compute_loads(self):
        """Identical nodes → CL ≡ 0 → ΣC = 0; no division by zero."""
        pairs = {
            (a, b): (100.0, 100.0)
            for a, b in itertools.combinations(NAMES, 2)
        }
        snap = _snapshot(NAMES, measured_pairs=pairs)
        alloc = _both_paths(snap, AllocationRequest(n_processes=8, ppn=4))
        assert alloc.metadata["compute_cost_normalized"] == 0.0

    def test_empty_network_load(self):
        """No measured pairs at all → NL = {} and penalty 0.0."""
        snap = _snapshot(NAMES, measured_pairs=None)
        alloc = _both_paths(snap, AllocationRequest(n_processes=8, ppn=4))
        assert alloc.metadata["network_cost_normalized"] == 0.0
        assert alloc.metadata["network_cost"] == 0.0

    def test_single_measured_pair(self):
        """Penalty comes from a one-element load set (max of one value)."""
        snap = _snapshot(
            NAMES, measured_pairs={("a", "b"): (120.0, 80.0)}
        )
        for n, ppn in [(4, 2), (8, 4), (11, None)]:
            _both_paths(snap, AllocationRequest(n_processes=n, ppn=ppn))

    def test_group_of_only_unmeasured_links(self):
        """Nodes c and d share no measurements with anyone: candidates
        started there price every internal link at the worst observed
        load, in both paths."""
        snap = _snapshot(
            NAMES,
            measured_pairs={("a", "b"): (60.0, 200.0)},
        )
        state = load_state(snap, nodes=NAMES, ppn=2)
        tradeoff = TradeOff.from_alpha(0.3)
        fast = generate_all_candidates_fast(state, 6, tradeoff)
        ref = generate_all_candidates(
            NAMES, state.cl, state.nl, state.pc, 6, tradeoff
        )
        assert fast == ref
        assert state.missing_penalty == max(state.nl.values())
        assert not state.measured[2:, 2:].any()
        _both_paths(snap, AllocationRequest(n_processes=6, ppn=2))

    def test_all_zero_everything_is_pure_tie_break(self):
        """Zero CL and zero NL: every total is 0.0; both paths fall back
        to deterministic tie-breaking and must still agree."""
        snap = _snapshot(NAMES, measured_pairs=None)
        for n in (1, 4, 9, 40):
            _both_paths(snap, AllocationRequest(n_processes=n, ppn=4))

    def test_oversubscribed_identical_candidates(self):
        """Request beyond cluster capacity: all |V| candidates share one
        node set and the Equation-4 totals tie exactly — the fast path's
        reference fallback must reproduce the dict winner."""
        pairs = {
            (a, b): (100.0, 100.0)
            for a, b in itertools.combinations(NAMES, 2)
        }
        snap = _snapshot(NAMES, measured_pairs=pairs)
        _both_paths(snap, AllocationRequest(n_processes=100, ppn=4))

    def test_fast_path_errors_match_reference(self):
        snap = _snapshot(NAMES)
        with pytest.raises(ValueError):
            NetworkLoadAwarePolicy(use_arrays=True).allocate(
                snap, AllocationRequest(n_processes=0, ppn=4)
            )


class TestLoadStateShape:
    def test_matrix_symmetry_and_diagonal(self):
        rngpairs = {
            ("a", "b"): (100.0, 90.0),
            ("a", "c"): (50.0, 400.0),
        }
        snap = _snapshot(NAMES, measured_pairs=rngpairs)
        state = load_state(snap, nodes=NAMES, ppn=4)
        assert state.nl_mat.shape == (4, 4)
        assert np.allclose(state.nl_mat, state.nl_mat.T)
        assert np.all(np.diag(state.nl_mat) == 0.0)
        assert state.measured.sum() == 2 * len(rngpairs)
        # Unmeasured off-diagonal entries hold the worst observed load.
        off_diag = ~np.eye(4, dtype=bool)
        unmeasured = off_diag & ~state.measured
        assert np.all(state.nl_mat[unmeasured] == state.missing_penalty)
