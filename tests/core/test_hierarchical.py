"""Tests for the hierarchical (group-granular) allocation extension."""

import numpy as np
import pytest

from repro.core.policies import AllocationRequest
from repro.core.policies.hierarchical import (
    HierarchicalNetworkLoadAwarePolicy,
    summarize_groups,
)
from repro.core.weights import TradeOff
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snapshot():
    """Two implicit groups: n1-n4 tightly coupled, n5-n8 tightly coupled,
    slow links across. Group 2 is loaded."""
    views = {}
    for i in range(1, 9):
        load = 8.0 if i >= 5 else 0.4
        views[f"n{i}"] = make_view(f"n{i}", load=load)
    bandwidth, latency, peak = {}, {}, {}
    for i in range(1, 9):
        for j in range(i + 1, 9):
            a, b = f"n{i}", f"n{j}"
            same = (i <= 4) == (j <= 4)
            bandwidth[(a, b)] = 120.0 if same else 40.0
            latency[(a, b)] = 60.0 if same else 420.0
    snap = make_snapshot(views, bandwidth=bandwidth, latency=latency)
    # peak bandwidth mirrors topology: same-group pairs at the top tier
    peaks = dict(snap.peak_bandwidth_mbs)
    for (a, b) in peaks:
        same = (int(a[1:]) <= 4) == (int(b[1:]) <= 4)
        peaks[(a, b)] = 125.0 if same else 110.0
    object.__setattr__(snap, "peak_bandwidth_mbs", peaks)
    return snap


class TestGroupInference:
    def test_groups_follow_peak_bandwidth(self, snapshot):
        """Fallback path: no switch labels -> peak-bandwidth clustering."""
        policy = HierarchicalNetworkLoadAwarePolicy()
        groups = policy._groups_from_network(snapshot, list(snapshot.nodes))
        partitions = sorted(tuple(sorted(v)) for v in groups.values())
        assert partitions == [
            ("n1", "n2", "n3", "n4"),
            ("n5", "n6", "n7", "n8"),
        ]

    def test_switch_labels_take_precedence(self):
        """Reported switches group directly, regardless of peak structure."""
        from dataclasses import replace

        views = {}
        for i in range(1, 7):
            v = make_view(f"n{i}")
            views[f"n{i}"] = replace(v, switch="sw_a" if i <= 3 else "sw_b")
        snap = make_snapshot(views)
        policy = HierarchicalNetworkLoadAwarePolicy()
        groups = policy._groups_from_network(snap, list(snap.nodes))
        partitions = sorted(tuple(sorted(v)) for v in groups.values())
        assert partitions == [("n1", "n2", "n3"), ("n4", "n5", "n6")]

    def test_paper_cluster_groups_by_switch(self):
        """End to end: the live monitor reports switches, so the paper
        cluster yields exactly its four leaf-switch groups."""
        from repro.experiments.scenario import paper_scenario

        sc = paper_scenario(seed=1, warmup_s=120.0)
        snap = sc.snapshot()
        policy = HierarchicalNetworkLoadAwarePolicy()
        groups = policy._groups_from_network(snap, list(snap.nodes))
        assert len(groups) == 4
        assert all(len(v) == 15 for v in groups.values())


class TestSummaries:
    def test_group_summary_values(self):
        cl = {"a": 0.1, "b": 0.3, "c": 0.8}
        nl = {("a", "b"): 0.2, ("a", "c"): 0.6, ("b", "c"): 0.4}
        pc = {"a": 4, "b": 4, "c": 4}
        groups = {"g1": ["a", "b"], "g2": ["c"]}
        summaries, cross = summarize_groups(groups, cl, nl, pc)
        assert summaries["g1"].mean_compute_load == pytest.approx(0.2)
        assert summaries["g1"].intra_network_load == pytest.approx(0.2)
        assert summaries["g1"].capacity == 8
        assert summaries["g2"].intra_network_load == 0.0
        assert cross[("g1", "g2")] == pytest.approx((0.6 + 0.4) / 2)


class TestAllocation:
    def test_prefers_idle_group(self, snapshot):
        policy = HierarchicalNetworkLoadAwarePolicy()
        request = AllocationRequest(
            n_processes=16, ppn=4, tradeoff=TradeOff(0.3, 0.7)
        )
        alloc = policy.allocate(snapshot, request)
        assert set(alloc.nodes) == {"n1", "n2", "n3", "n4"}
        assert sum(alloc.procs.values()) == 16
        assert alloc.metadata["groups_used"] == 1.0

    def test_spans_groups_when_one_is_too_small(self, snapshot):
        policy = HierarchicalNetworkLoadAwarePolicy()
        request = AllocationRequest(
            n_processes=32, ppn=4, tradeoff=TradeOff(0.3, 0.7)
        )
        alloc = policy.allocate(snapshot, request)
        assert sum(alloc.procs.values()) == 32
        assert alloc.metadata["groups_used"] == 2.0

    def test_oversubscription_round_robin(self, snapshot):
        policy = HierarchicalNetworkLoadAwarePolicy()
        request = AllocationRequest(
            n_processes=40, ppn=4, tradeoff=TradeOff(0.3, 0.7)
        )
        alloc = policy.allocate(snapshot, request)
        assert sum(alloc.procs.values()) == 40

    def test_close_to_flat_policy_on_small_cluster(self, snapshot):
        """On switch-structured clusters the group shortcut should agree
        with the flat algorithm."""
        from repro.core.policies import NetworkLoadAwarePolicy

        request = AllocationRequest(
            n_processes=16, ppn=4, tradeoff=TradeOff(0.3, 0.7)
        )
        flat = NetworkLoadAwarePolicy().allocate(snapshot, request)
        hier = HierarchicalNetworkLoadAwarePolicy().allocate(snapshot, request)
        assert set(flat.nodes) == set(hier.nodes)

    def test_scales_to_larger_clusters(self):
        """240 virtual nodes: group-level decision stays fast and valid."""
        views, bandwidth, latency = {}, {}, {}
        rng = np.random.default_rng(0)
        names = [f"m{i:03d}" for i in range(60)]
        for i, n in enumerate(names):
            views[n] = make_view(n, load=float(rng.uniform(0, 6)))
        snap = make_snapshot(views)
        request = AllocationRequest(
            n_processes=48, ppn=4, tradeoff=TradeOff(0.3, 0.7)
        )
        alloc = HierarchicalNetworkLoadAwarePolicy().allocate(snap, request)
        assert sum(alloc.procs.values()) == 48
