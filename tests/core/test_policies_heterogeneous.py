"""Allocation behaviour on heterogeneous hardware (8- vs 12-core mix).

§1 motivates handling clusters that "vary in software and hardware
configurations": the allocator must reason about core counts and clock
speeds, not just load.
"""

import numpy as np
import pytest

from repro.core.compute_load import compute_loads
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import ComputeWeights, TradeOff
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def mixed_snapshot():
    """Equally idle nodes; half are big/fast, half small/slow."""
    views = {}
    for i in range(1, 5):
        views[f"big{i}"] = make_view(f"big{i}", cores=12, freq=4.6)
        views[f"small{i}"] = make_view(f"small{i}", cores=8, freq=2.8)
    return make_snapshot(dict(sorted(views.items())))


class TestHeterogeneity:
    def test_static_attributes_break_ties(self, mixed_snapshot):
        """All else equal, Equation 1's static terms prefer big nodes."""
        cl = compute_loads(mixed_snapshot)
        assert max(cl[f"big{i}"] for i in range(1, 5)) < min(
            cl[f"small{i}"] for i in range(1, 5)
        )

    def test_allocator_picks_big_nodes_when_idle(self, mixed_snapshot):
        alloc = NetworkLoadAwarePolicy().allocate(
            mixed_snapshot,
            AllocationRequest(16, ppn=4, tradeoff=TradeOff(0.5, 0.5)),
        )
        assert all(n.startswith("big") for n in alloc.nodes)

    def test_load_outweighs_hardware_with_paper_weights(self):
        """The paper weights CPU load (0.3) far above clock speed (0.05):
        a busy fast node loses to an idle slow one."""
        views = {
            "fast_busy": make_view("fast_busy", cores=12, freq=4.6, load=8.0),
            "slow_idle": make_view("slow_idle", cores=8, freq=2.8, load=0.1),
        }
        cl = compute_loads(make_snapshot(views))
        assert cl["slow_idle"] < cl["fast_busy"]

    def test_custom_weights_can_invert_that(self):
        views = {
            "fast_busy": make_view("fast_busy", cores=12, freq=4.6, load=8.0),
            "slow_idle": make_view("slow_idle", cores=8, freq=2.8, load=0.1),
        }
        hw_weights = ComputeWeights(
            {"core_count": 0.45, "cpu_frequency": 0.45, "cpu_load": 0.10}
        )
        cl = compute_loads(make_snapshot(views), hw_weights)
        assert cl["fast_busy"] < cl["slow_idle"]

    def test_equation3_gives_more_slots_to_big_nodes(self, mixed_snapshot):
        from repro.core.effective_procs import effective_proc_counts

        pcs = effective_proc_counts(mixed_snapshot)
        assert pcs["big1"] == 12 and pcs["small1"] == 8
