"""Tests for the ResourceBroker façade."""

import numpy as np
import pytest

from repro.core.broker import BrokerResult, ResourceBroker, WaitRecommended
from repro.core.policies import (
    AllocationError,
    AllocationRequest,
    LoadAwarePolicy,
)
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snapshot():
    views = {f"n{i}": make_view(f"n{i}", load=0.5) for i in range(1, 5)}
    return make_snapshot(views, time=100.0)


@pytest.fixture
def broker(snapshot):
    return ResourceBroker(lambda: snapshot)


class TestRequest:
    def test_default_policy_is_network_load_aware(self, broker):
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.allocation.policy == "network_load_aware"
        assert isinstance(res, BrokerResult)

    def test_policy_by_name(self, broker):
        rng = np.random.default_rng(0)
        res = broker.request(AllocationRequest(8, ppn=4), rng=rng, policy="random")
        assert res.allocation.policy == "random"

    def test_policy_by_instance(self, broker):
        res = broker.request(
            AllocationRequest(8, ppn=4), policy=LoadAwarePolicy()
        )
        assert res.allocation.policy == "load_aware"

    def test_unknown_policy_name(self, broker):
        with pytest.raises(AllocationError, match="unknown policy"):
            broker.request(AllocationRequest(8, ppn=4), policy="magic")

    def test_overhead_measured(self, broker):
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.overhead_ms >= 0.0

    def test_snapshot_age(self, broker):
        res = broker.request(AllocationRequest(8, ppn=4), now=130.0)
        assert res.snapshot_age_s == pytest.approx(30.0)


class TestWaitRecommendation:
    def test_saturated_cluster_recommends_waiting(self):
        views = {f"n{i}": make_view(f"n{i}", load=30.0) for i in range(1, 5)}
        snap = make_snapshot(views)
        broker = ResourceBroker(
            lambda: snap, wait_threshold_load_per_core=1.0
        )
        with pytest.raises(WaitRecommended) as exc:
            broker.request(AllocationRequest(8, ppn=4))
        assert exc.value.mean_load_per_core > 1.0

    def test_light_cluster_allocates(self, snapshot):
        broker = ResourceBroker(
            lambda: snapshot, wait_threshold_load_per_core=1.0
        )
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.allocation.n_nodes == 2

    def test_no_threshold_never_waits(self):
        views = {f"n{i}": make_view(f"n{i}", load=50.0) for i in range(1, 5)}
        snap = make_snapshot(views)
        broker = ResourceBroker(lambda: snap)
        assert broker.request(AllocationRequest(8, ppn=4)).allocation
