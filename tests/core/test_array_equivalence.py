"""The array fast path must match the dict reference allocation-for-allocation.

Seeded sweep over random snapshots (varying node counts, missing pairs,
zero-load and fully-loaded nodes, dead hosts) asserting that
``NetworkLoadAwarePolicy(use_arrays=True)`` returns the identical
``Allocation`` — nodes, process counts, and metadata within 1e-9 — as
the dict reference oracle, plus determinism checks for the remaining
paper policies under the same refactor (exclude masks, hoisted
penalties).
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np
import pytest

from repro.core.arrays import load_state
from repro.core.policies import (
    PAPER_POLICIES,
    AllocationRequest,
    HierarchicalNetworkLoadAwarePolicy,
    NetworkLoadAwarePolicy,
)
from repro.core.weights import TradeOff
from repro.monitor.snapshot import ClusterSnapshot, NodeView


def _stats(rng: np.random.Generator, scale: float) -> dict[str, float]:
    vals = rng.uniform(0.0, scale, size=4)
    return {"now": float(vals[0]), "m1": float(vals[1]),
            "m5": float(vals[2]), "m15": float(vals[3])}


def random_snapshot(
    rng: np.random.Generator,
    n_nodes: int,
    *,
    missing_fraction: float = 0.0,
    zero_load_fraction: float = 0.0,
    full_load_fraction: float = 0.0,
    dead_fraction: float = 0.0,
) -> ClusterSnapshot:
    """A synthetic monitor snapshot with controllable degeneracies."""
    order = rng.permutation(n_nodes)  # insertion order ≠ lexicographic
    names = [f"n{int(i):02d}" for i in order]
    views: dict[str, NodeView] = {}
    for name in names:
        cores = int(rng.choice([4, 8, 12]))
        roll = rng.uniform()
        if roll < zero_load_fraction:
            load = {"now": 0.0, "m1": 0.0, "m5": 0.0, "m15": 0.0}
        elif roll < zero_load_fraction + full_load_fraction:
            # Rounded-up load one short of a core-count multiple → pc = 1.
            full = float(cores - 1)
            load = {"now": full, "m1": full, "m5": full, "m15": full}
        else:
            load = _stats(rng, float(cores))
        views[name] = NodeView(
            name=name,
            cores=cores,
            frequency_ghz=float(rng.uniform(2.0, 5.0)),
            memory_gb=float(rng.choice([16.0, 32.0, 64.0])),
            users=int(rng.integers(0, 5)),
            cpu_load=load,
            cpu_util=_stats(rng, 100.0),
            flow_rate_mbs=_stats(rng, 50.0),
            available_memory_gb=_stats(rng, 16.0),
        )
    bandwidth: dict[tuple[str, str], float] = {}
    latency: dict[tuple[str, str], float] = {}
    peak: dict[tuple[str, str], float] = {}
    for a, b in itertools.combinations(sorted(names), 2):
        peak[(a, b)] = 125.0
        if rng.uniform() >= missing_fraction:
            bandwidth[(a, b)] = float(rng.uniform(10.0, 125.0))
            latency[(a, b)] = float(rng.uniform(50.0, 500.0))
    live = [n for n in names if rng.uniform() >= dead_fraction]
    if not live:
        live = names[:1]
    return ClusterSnapshot(
        time=0.0,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(live),
    )


def assert_allocations_equal(a, b):
    assert a.nodes == b.nodes
    assert dict(a.procs) == dict(b.procs)
    assert set(a.metadata) == set(b.metadata)
    for key in a.metadata:
        assert abs(a.metadata[key] - b.metadata[key]) <= 1e-9, key


def _requests(rng: np.random.Generator, capacity: int):
    """A spread of request shapes, including oversubscription."""
    alphas = [0.3, 0.5, 1.0]
    yield AllocationRequest(
        n_processes=1, ppn=None, tradeoff=TradeOff.from_alpha(0.3)
    )
    for alpha in alphas:
        n = int(rng.integers(2, max(3, capacity)))
        ppn = [None, 2, 4][int(rng.integers(0, 3))]
        yield AllocationRequest(
            n_processes=n, ppn=ppn, tradeoff=TradeOff.from_alpha(alpha)
        )
    # Oversubscribed: forces the Algorithm-1 round-robin remainder and
    # same-node-set candidates (the Equation-4 tie-fallback path).
    yield AllocationRequest(
        n_processes=2 * capacity + 3, ppn=4, tradeoff=TradeOff.from_alpha(0.5)
    )


SWEEP_CONFIGS = [
    dict(missing_fraction=0.0),
    dict(missing_fraction=0.3),
    dict(missing_fraction=0.8),
    dict(missing_fraction=0.3, zero_load_fraction=0.5),
    dict(missing_fraction=0.2, full_load_fraction=0.5),
    dict(zero_load_fraction=1.0),
    dict(missing_fraction=0.4, dead_fraction=0.3),
]


class TestNetworkLoadAwareEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "config", SWEEP_CONFIGS,
        ids=["-".join(f"{k[:4]}{v}" for k, v in c.items()) or "plain"
             for c in SWEEP_CONFIGS],
    )
    def test_sweep(self, seed, config):
        rng = np.random.default_rng(1000 * seed + 17)
        n_nodes = int(rng.integers(2, 21))
        snap = random_snapshot(rng, n_nodes, **config)
        fast = NetworkLoadAwarePolicy(use_arrays=True)
        ref = NetworkLoadAwarePolicy(use_arrays=False)
        live_cores = sum(
            snap.nodes[n].cores for n in snap.livehosts if n in snap.nodes
        )
        for request in _requests(rng, max(live_cores, 4)):
            a = fast.allocate(snap, request)
            b = ref.allocate(snap, request)
            assert_allocations_equal(a, b)

    def test_single_node_cluster(self):
        rng = np.random.default_rng(7)
        snap = random_snapshot(rng, 1)
        request = AllocationRequest(n_processes=6, ppn=4)
        a = NetworkLoadAwarePolicy(use_arrays=True).allocate(snap, request)
        b = NetworkLoadAwarePolicy(use_arrays=False).allocate(snap, request)
        assert_allocations_equal(a, b)

    def test_exclude_mask_matches_reference_on_mask(self):
        """The exclude parameter reaches both implementations identically."""
        rng = np.random.default_rng(21)
        snap = random_snapshot(rng, 10, missing_fraction=0.2)
        excluded = frozenset(list(snap.nodes)[:4])
        request = AllocationRequest(n_processes=8, ppn=2)
        a = NetworkLoadAwarePolicy(use_arrays=True).allocate(
            snap, request, exclude=excluded
        )
        b = NetworkLoadAwarePolicy(use_arrays=False).allocate(
            snap, request, exclude=excluded
        )
        assert_allocations_equal(a, b)
        assert not set(a.nodes) & excluded

    def test_cached_state_matches_fresh_state(self):
        """Memoized LoadState answers exactly like a cold build."""
        rng = np.random.default_rng(33)
        snap = random_snapshot(rng, 12, missing_fraction=0.3)
        request = AllocationRequest(n_processes=16, ppn=4)
        policy = NetworkLoadAwarePolicy(use_arrays=True)
        warm1 = policy.allocate(snap, request)
        warm2 = policy.allocate(snap, request)  # cache hit
        cold = policy.allocate(dataclasses.replace(snap), request)
        assert_allocations_equal(warm1, warm2)
        assert_allocations_equal(warm1, cold)

    def test_load_state_is_memoized_per_snapshot(self):
        rng = np.random.default_rng(41)
        snap = random_snapshot(rng, 8)
        nodes = list(snap.nodes)
        s1 = load_state(snap, nodes=nodes, ppn=4)
        s2 = load_state(snap, nodes=nodes, ppn=4)
        assert s1 is s2
        s3 = load_state(snap, nodes=nodes, ppn=2)  # different key
        assert s3 is not s1
        s4 = load_state(dataclasses.replace(snap), nodes=nodes, ppn=4)
        assert s4 is not s1  # fresh snapshot → fresh cache


class TestOtherPaperPoliciesDeterministic:
    """Baselines have no array path; the sweep pins their behavior under
    the shared refactors (exclude masks, hoisted penalties)."""

    @pytest.mark.parametrize("name", sorted(PAPER_POLICIES))
    @pytest.mark.parametrize("seed", range(3))
    def test_repeatable(self, name, seed):
        rng = np.random.default_rng(50 + seed)
        snap = random_snapshot(rng, 8, missing_fraction=0.2)
        request = AllocationRequest(n_processes=12, ppn=4)
        a = PAPER_POLICIES[name]().allocate(
            snap, request, rng=np.random.default_rng(seed)
        )
        b = PAPER_POLICIES[name]().allocate(
            snap, request, rng=np.random.default_rng(seed)
        )
        assert_allocations_equal(a, b)

    def test_hierarchical_uses_shared_cache(self):
        rng = np.random.default_rng(61)
        snap = random_snapshot(rng, 10, missing_fraction=0.1)
        request = AllocationRequest(n_processes=12, ppn=4)
        policy = HierarchicalNetworkLoadAwarePolicy()
        warm = policy.allocate(snap, request)
        cold = policy.allocate(dataclasses.replace(snap), request)
        assert_allocations_equal(warm, cold)
