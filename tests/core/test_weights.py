"""Tests for weight profiles."""

import pytest

from repro.core.weights import (
    MINIFE_TRADEOFF,
    MINIMD_TRADEOFF,
    PAPER_COMPUTE_WEIGHTS,
    ComputeWeights,
    NetworkWeights,
    TradeOff,
)


class TestComputeWeights:
    def test_paper_defaults(self):
        cw = ComputeWeights()
        assert cw.get("cpu_load") == 0.30
        assert cw.get("cpu_util") == 0.20
        assert cw.get("flow_rate") == 0.20
        assert cw.get("available_memory") == 0.10
        assert cw.get("core_count") == 0.10
        assert cw.get("cpu_frequency") == 0.05
        assert cw.get("total_memory") == 0.05

    def test_paper_weights_sum_to_one(self):
        assert sum(PAPER_COMPUTE_WEIGHTS.values()) == pytest.approx(1.0)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError):
            ComputeWeights({"bogus": 1.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComputeWeights({"cpu_load": -0.1})

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            ComputeWeights({"cpu_load": 0.0})

    def test_unset_attribute_is_zero(self):
        cw = ComputeWeights({"cpu_load": 1.0})
        assert cw.get("cpu_util") == 0.0


class TestNetworkWeights:
    def test_paper_defaults(self):
        nw = NetworkWeights()
        assert nw.w_lt == 0.25 and nw.w_bw == 0.75

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="equal 1"):
            NetworkWeights(w_lt=0.5, w_bw=0.6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkWeights(w_lt=-0.1, w_bw=1.1)


class TestTradeOff:
    def test_paper_values(self):
        assert (MINIMD_TRADEOFF.alpha, MINIMD_TRADEOFF.beta) == (0.3, 0.7)
        assert (MINIFE_TRADEOFF.alpha, MINIFE_TRADEOFF.beta) == (0.4, 0.6)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="equal 1"):
            TradeOff(alpha=0.5, beta=0.6)

    def test_from_alpha(self):
        t = TradeOff.from_alpha(0.25)
        assert t.beta == pytest.approx(0.75)

    def test_extremes_allowed(self):
        TradeOff(alpha=0.0, beta=1.0)
        TradeOff(alpha=1.0, beta=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TradeOff(alpha=-0.2, beta=1.2)
