"""Tests for Algorithm 1 (candidate generation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import (
    addition_costs,
    generate_all_candidates,
    generate_candidate,
)
from repro.core.weights import TradeOff

NODES = ["a", "b", "c", "d"]
CL = {"a": 0.1, "b": 0.2, "c": 0.9, "d": 0.3}
NL = {
    ("a", "b"): 0.1,
    ("a", "c"): 0.2,
    ("a", "d"): 0.9,
    ("b", "c"): 0.2,
    ("b", "d"): 0.8,
    ("c", "d"): 0.1,
}
PC = {"a": 4, "b": 4, "c": 4, "d": 4}
T = TradeOff(alpha=0.5, beta=0.5)


class TestAdditionCosts:
    def test_start_node_is_free(self):
        costs = addition_costs("a", NODES, CL, NL, T)
        assert costs["a"] == 0.0

    def test_formula(self):
        costs = addition_costs("a", NODES, CL, NL, T)
        assert costs["b"] == pytest.approx(0.5 * 0.2 + 0.5 * 0.1)
        assert costs["d"] == pytest.approx(0.5 * 0.3 + 0.5 * 0.9)

    def test_start_must_be_candidate(self):
        with pytest.raises(ValueError):
            addition_costs("zzz", NODES, CL, NL, T)

    def test_missing_pair_penalised(self):
        nl = {("a", "b"): 0.5}
        costs = addition_costs("a", ["a", "b", "c"], CL, nl, T)
        # (a, c) unmeasured -> worst observed NL (0.5)
        assert costs["c"] == pytest.approx(0.5 * 0.9 + 0.5 * 0.5)


class TestGenerateCandidate:
    def test_exact_fill(self):
        cand = generate_candidate("a", NODES, CL, NL, PC, 8, T)
        assert cand.total_procs == 8
        assert len(cand.nodes) == 2
        assert cand.start == "a"
        assert cand.nodes[0] == "a"  # start node always first

    def test_greedy_prefers_cheap_neighbours(self):
        cand = generate_candidate("a", NODES, CL, NL, PC, 8, T)
        # from a: b costs 0.15, c costs 0.55, d costs 0.6 -> picks b
        assert set(cand.nodes) == {"a", "b"}

    def test_partial_last_node(self):
        cand = generate_candidate("a", NODES, CL, NL, PC, 6, T)
        assert cand.total_procs == 6
        assert cand.procs["a"] == 4
        assert cand.procs[cand.nodes[1]] == 2

    def test_oversubscription_round_robin(self):
        # cluster holds 16 slots; ask for 20 -> round-robin the extra 4
        cand = generate_candidate("a", NODES, CL, NL, PC, 20, T)
        assert cand.total_procs == 20
        assert set(cand.nodes) == set(NODES)
        assert all(v >= 4 for v in cand.procs.values())

    def test_zero_capacity_node_dropped(self):
        pc = dict(PC, b=0)
        cand = generate_candidate("a", NODES, CL, NL, pc, 8, T)
        assert "b" not in cand.nodes
        assert cand.total_procs == 8

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            generate_candidate("a", NODES, CL, NL, PC, 0, T)

    def test_missing_data_rejected(self):
        with pytest.raises(KeyError):
            generate_candidate("a", NODES, {"a": 0.1}, NL, PC, 4, T)
        with pytest.raises(KeyError):
            generate_candidate("a", NODES, CL, NL, {"a": 4}, 4, T)

    def test_deterministic_tie_break(self):
        cl = {n: 0.5 for n in NODES}
        nl = {k: 0.5 for k in NL}
        c1 = generate_candidate("a", NODES, cl, nl, PC, 12, T)
        c2 = generate_candidate("a", NODES, cl, nl, PC, 12, T)
        assert c1.nodes == c2.nodes

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(0, 99),
    )
    def test_allocation_invariants(self, n, seed):
        """Property: procs sum to n; all listed nodes host >= 1 proc."""
        import numpy as np

        rng = np.random.default_rng(seed)
        cl = {x: float(rng.uniform(0, 1)) for x in NODES}
        nl = {k: float(rng.uniform(0, 1)) for k in NL}
        pc = {x: int(rng.integers(1, 6)) for x in NODES}
        cand = generate_candidate("a", NODES, cl, nl, pc, n, T)
        assert cand.total_procs == n
        assert all(cand.procs[x] >= 1 for x in cand.nodes)
        assert set(cand.procs) == set(cand.nodes)


class TestGenerateAllCandidates:
    def test_one_per_start_node(self):
        cands = generate_all_candidates(NODES, CL, NL, PC, 8, T)
        assert [c.start for c in cands] == NODES

    def test_each_satisfies_request(self):
        for cand in generate_all_candidates(NODES, CL, NL, PC, 10, T):
            assert cand.total_procs == 10
