"""§6 wait-recommendation interplay with live workload regimes."""

from dataclasses import replace

import pytest

from repro.core.broker import ResourceBroker, WaitRecommended
from repro.core.policies import AllocationRequest
from repro.experiments.scenario import Scenario
from repro.cluster.topology import uniform_cluster
from repro.workload.generator import WorkloadConfig


def scenario_with_ambient(mu: float):
    base = WorkloadConfig()
    cfg = replace(
        base,
        ambient_load_mu=mu,
        busyness_sigma=0.05,
        # cluster-wide rates are calibrated for 60 nodes; scale for 6 so
        # the ambient floor (the variable under test) dominates
        jobs=replace(base.jobs, arrival_rate_per_hour=2.0),
        sessions=replace(base.sessions, arrival_rate_per_hour=0.3),
    )
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    sc = Scenario.build(specs, topo, seed=3, workload_config=cfg)
    sc.warm_up(900.0)
    return sc


class TestWaitThresholdRegimes:
    def test_quiet_cluster_allocates(self):
        sc = scenario_with_ambient(0.2)
        broker = ResourceBroker(sc.snapshot, wait_threshold_load_per_core=0.8)
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.allocation.n_nodes == 2

    def test_saturated_cluster_waits(self):
        sc = scenario_with_ambient(14.0)  # > 1 runnable per core everywhere
        broker = ResourceBroker(sc.snapshot, wait_threshold_load_per_core=0.8)
        with pytest.raises(WaitRecommended) as exc:
            broker.request(AllocationRequest(8, ppn=4))
        assert exc.value.threshold == 0.8
        assert exc.value.mean_load_per_core > 0.8

    def test_wait_clears_when_load_drains(self):
        sc = scenario_with_ambient(14.0)
        broker = ResourceBroker(sc.snapshot, wait_threshold_load_per_core=0.8)
        with pytest.raises(WaitRecommended):
            broker.request(AllocationRequest(8, ppn=4))
        # the load floor drops: waiting paid off
        for proc in sc.workload._ambient.values():
            proc.mu = 0.1
            proc.x = 0.1
        sc.advance(1200.0)  # let states + 5-minute means refresh
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.allocation.n_nodes == 2
