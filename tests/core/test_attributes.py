"""Tests for the Table 1 attribute registry."""

import pytest

from repro.core.attributes import (
    ATTRIBUTE_NAMES,
    ATTRIBUTES,
    Criterion,
    extract_matrix,
    get_attribute,
)
from repro.monitor.snapshot import NodeView


def view(name="n1", cores=12, freq=4.6, mem=16.0, users=1, load=2.0,
         util=30.0, flow=5.0, avail=10.0):
    flat = lambda v: {"now": v, "m1": v, "m5": v, "m15": v}  # noqa: E731
    return NodeView(
        name=name, cores=cores, frequency_ghz=freq, memory_gb=mem,
        users=users, cpu_load=flat(load), cpu_util=flat(util),
        flow_rate_mbs=flat(flow), available_memory_gb=flat(avail),
    )


class TestRegistry:
    def test_table1_rows_present(self):
        expected = {
            "core_count", "cpu_frequency", "total_memory", "users",
            "cpu_load", "cpu_util", "flow_rate", "available_memory",
        }
        assert set(ATTRIBUTE_NAMES) == expected

    def test_criteria_match_table1(self):
        by_name = {a.name: a.criterion for a in ATTRIBUTES}
        assert by_name["core_count"] is Criterion.MAXIMIZE
        assert by_name["cpu_frequency"] is Criterion.MAXIMIZE
        assert by_name["total_memory"] is Criterion.MAXIMIZE
        assert by_name["available_memory"] is Criterion.MAXIMIZE
        assert by_name["users"] is Criterion.MINIMIZE
        assert by_name["cpu_load"] is Criterion.MINIMIZE
        assert by_name["cpu_util"] is Criterion.MINIMIZE
        assert by_name["flow_rate"] is Criterion.MINIMIZE

    def test_static_flags(self):
        statics = {a.name for a in ATTRIBUTES if a.static}
        assert statics == {"core_count", "cpu_frequency", "total_memory"}

    def test_get_attribute(self):
        assert get_attribute("cpu_load").name == "cpu_load"
        with pytest.raises(KeyError, match="unknown attribute"):
            get_attribute("nope")


class TestExtraction:
    def test_static_values(self):
        m = extract_matrix({"n1": view(cores=8, freq=2.8, mem=16.0)})
        assert m["core_count"]["n1"] == 8.0
        assert m["cpu_frequency"]["n1"] == 2.8
        assert m["total_memory"]["n1"] == 16.0

    def test_dynamic_blend_averages_windows(self):
        v = view()
        object.__setattr__(
            v, "cpu_load", {"now": 0.0, "m1": 3.0, "m5": 6.0, "m15": 9.0}
        )
        m = extract_matrix({"n1": v})
        assert m["cpu_load"]["n1"] == pytest.approx(6.0)

    def test_matrix_covers_all_nodes(self):
        m = extract_matrix({"a": view("a"), "b": view("b")})
        for attr in ATTRIBUTE_NAMES:
            assert set(m[attr]) == {"a", "b"}
