"""Tests for the α/β profiling helper."""

import pytest

from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.apps.stencil import Stencil3D, StencilConfig
from repro.core.profiling import (
    AppProfile,
    profile_app,
    recommend_tradeoff,
    tradeoff_from_profile,
)


class TestProfileApp:
    def test_minimd_profile_structure(self):
        p = profile_app(MiniMD(16), n_ranks=16)
        assert p.app == "miniMD"
        assert p.n_ranks == 16
        assert 0.0 < p.comm_fraction < 1.0
        assert p.compute_time_s > 0 and p.comm_time_s > 0

    def test_minimd_more_comm_heavy_than_minife(self):
        """§5: miniMD's communication share exceeds miniFE's."""
        md = profile_app(MiniMD(16), n_ranks=32)
        fe = profile_app(MiniFE(96), n_ranks=32)
        assert md.comm_fraction > fe.comm_fraction

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            profile_app(MiniMD(16), n_ranks=0)
        with pytest.raises(ValueError):
            profile_app(MiniMD(16), ppn=0)

    def test_compute_bound_stencil_low_fraction(self):
        heavy = Stencil3D(96, StencilConfig(cycles_per_cell=5000.0))
        assert profile_app(heavy, n_ranks=8).comm_fraction < 0.3


class TestTradeoffFromProfile:
    def prof(self, frac):
        return AppProfile(
            app="x", n_ranks=8, comm_fraction=frac,
            compute_time_s=1.0, comm_time_s=1.0,
        )

    def test_anchor_points(self):
        # The linear map passes through the paper's empirical settings.
        assert tradeoff_from_profile(self.prof(0.4)).beta == pytest.approx(0.6)
        assert tradeoff_from_profile(self.prof(0.6)).beta == pytest.approx(0.7)

    def test_clamped_extremes(self):
        assert tradeoff_from_profile(self.prof(0.0)).beta == pytest.approx(0.4)
        assert tradeoff_from_profile(self.prof(1.0)).beta == pytest.approx(0.8)

    def test_alpha_beta_sum_to_one(self):
        t = tradeoff_from_profile(self.prof(0.55))
        assert t.alpha + t.beta == pytest.approx(1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            tradeoff_from_profile(self.prof(0.5), beta_floor=0.9, beta_ceiling=0.5)


class TestRecommendTradeoff:
    def test_minimd_lands_near_papers_choice(self):
        t = recommend_tradeoff(MiniMD(16), n_ranks=32)
        # Paper uses beta = 0.7 for miniMD; profiling should land nearby.
        assert 0.55 <= t.beta <= 0.8

    def test_minife_less_network_weighted_than_minimd(self):
        t_md = recommend_tradeoff(MiniMD(16), n_ranks=32)
        t_fe = recommend_tradeoff(MiniFE(96), n_ranks=32)
        assert t_fe.beta <= t_md.beta
