"""Tests for Algorithm 2 / Equation 4 (best-candidate selection)."""

import pytest

from repro.core.candidate import CandidateSubgraph, generate_all_candidates
from repro.core.selection import score_candidates, select_best
from repro.core.weights import TradeOff

CL = {"a": 0.1, "b": 0.2, "c": 0.9, "d": 0.3}
NL = {
    ("a", "b"): 0.1,
    ("a", "c"): 0.2,
    ("a", "d"): 0.9,
    ("b", "c"): 0.2,
    ("b", "d"): 0.8,
    ("c", "d"): 0.1,
}


def cand(*nodes):
    return CandidateSubgraph(
        start=nodes[0], nodes=tuple(nodes), procs={n: 4 for n in nodes}
    )


class TestScoreCandidates:
    def test_cost_decomposition(self):
        scored = score_candidates(
            [cand("a", "b"), cand("c", "d")], CL, NL, TradeOff(0.5, 0.5)
        )
        ab, cd = scored
        assert ab.compute_cost == pytest.approx(0.3)
        assert ab.network_cost == pytest.approx(0.1)
        assert cd.compute_cost == pytest.approx(1.2)
        assert cd.network_cost == pytest.approx(0.1)

    def test_normalization_across_candidates(self):
        scored = score_candidates(
            [cand("a", "b"), cand("c", "d")], CL, NL, TradeOff(0.5, 0.5)
        )
        total_c = sum(s.compute_cost_normalized for s in scored)
        total_n = sum(s.network_cost_normalized for s in scored)
        assert total_c == pytest.approx(1.0)
        assert total_n == pytest.approx(1.0)

    def test_empty(self):
        assert score_candidates([], CL, NL, TradeOff(0.5, 0.5)) == []

    def test_alpha_beta_extremes(self):
        # ab: cheap compute, cd: equal network. With alpha=1 ab must win.
        cands = [cand("a", "b"), cand("c", "d")]
        compute_only = select_best(cands, CL, NL, TradeOff(1.0, 0.0))
        assert compute_only.candidate.start == "a"

    def test_beta_prefers_connected_group(self):
        # ad has terrible network (0.9); bc is fine (0.2).
        cands = [cand("a", "d"), cand("b", "c")]
        network_only = select_best(cands, CL, NL, TradeOff(0.0, 1.0))
        assert network_only.candidate.start == "b"


class TestSelectBest:
    def test_minimum_total_wins(self):
        cands = [cand("a", "b"), cand("c", "d"), cand("a", "d")]
        best = select_best(cands, CL, NL, TradeOff(0.5, 0.5))
        assert set(best.candidate.nodes) == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_best([], CL, NL, TradeOff(0.5, 0.5))

    def test_deterministic_tie_break_on_start(self):
        cands = [cand("b", "c"), cand("a", "b")]
        cl = {n: 0.5 for n in CL}
        nl = {k: 0.5 for k in NL}
        best = select_best(cands, cl, nl, TradeOff(0.5, 0.5))
        assert best.candidate.start == "a"

    def test_end_to_end_with_algorithm1(self):
        pc = {n: 4 for n in CL}
        cands = generate_all_candidates(
            list(CL), CL, NL, pc, 8, TradeOff(0.5, 0.5)
        )
        best = select_best(cands, CL, NL, TradeOff(0.5, 0.5))
        # the (a, b) pair dominates every alternative on both axes
        assert set(best.candidate.nodes) == {"a", "b"}
