"""Tests for Simple Additive Weighting."""

import pytest

from repro.core.saw import saw_scores


class TestSawScores:
    def test_weighted_sum(self):
        costs = {
            "load": {"a": 0.2, "b": 0.8},
            "util": {"a": 0.6, "b": 0.4},
        }
        out = saw_scores(costs, {"load": 0.75, "util": 0.25})
        assert out["a"] == pytest.approx(0.75 * 0.2 + 0.25 * 0.6)
        assert out["b"] == pytest.approx(0.75 * 0.8 + 0.25 * 0.4)

    def test_missing_weight_counts_zero(self):
        costs = {"load": {"a": 1.0}, "junk": {"a": 99.0}}
        out = saw_scores(costs, {"load": 1.0})
        assert out["a"] == 1.0

    def test_empty_costs(self):
        assert saw_scores({}, {}) == {}

    def test_mismatched_node_sets_rejected(self):
        costs = {"load": {"a": 1.0}, "util": {"b": 1.0}}
        with pytest.raises(ValueError, match="different node sets"):
            saw_scores(costs, {"load": 1.0})

    def test_zero_weights_give_zero_scores(self):
        costs = {"load": {"a": 1.0, "b": 2.0}}
        out = saw_scores(costs, {"load": 0.0})
        assert out == {"a": 0.0, "b": 0.0}
