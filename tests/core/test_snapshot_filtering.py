"""Policies must respect livehosts even when views exist for dead nodes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.policies import PAPER_POLICIES, AllocationRequest
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snapshot_with_stale_view():
    """node4 has monitoring data but dropped out of livehosts (it just
    went down; its last NodeStateD record is still in the store)."""
    views = {f"node{i}": make_view(f"node{i}") for i in range(1, 5)}
    snap = make_snapshot(views)
    return replace(snap, livehosts=("node1", "node2", "node3"))


class TestLivehostsFilter:
    @pytest.mark.parametrize("name", sorted(PAPER_POLICIES))
    def test_dead_node_with_stale_data_never_allocated(
        self, name, snapshot_with_stale_view
    ):
        policy = PAPER_POLICIES[name]()
        rng = np.random.default_rng(0)
        for _ in range(5):
            alloc = policy.allocate(
                snapshot_with_stale_view,
                AllocationRequest(8, ppn=4),
                rng=rng,
            )
            assert "node4" not in alloc.nodes

    def test_capacity_shrinks_with_livehosts(self, snapshot_with_stale_view):
        policy = PAPER_POLICIES["network_load_aware"]()
        alloc = policy.allocate(
            snapshot_with_stale_view, AllocationRequest(16, ppn=4)
        )
        # 3 live nodes x 4 ppn = 12 slots; the 4 extra oversubscribe
        assert set(alloc.nodes) <= {"node1", "node2", "node3"}
        assert sum(alloc.procs.values()) == 16
