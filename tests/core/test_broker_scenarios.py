"""Broker behaviour across live scenarios (timing, policy switching)."""

import pytest

from repro.core.broker import ResourceBroker
from repro.core.policies import AllocationRequest
from repro.core.policies.hierarchical import HierarchicalNetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import small_scenario


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(n_nodes=8, seed=37, warmup_s=600.0)


class TestBrokerOnLiveScenario:
    def test_repeated_requests_follow_cluster_evolution(self, scenario):
        broker = scenario.broker()
        req = AllocationRequest(8, ppn=4, tradeoff=MINIMD_TRADEOFF)
        picks = set()
        for _ in range(5):
            picks.add(broker.request(req).allocation.nodes)
            scenario.advance(1800.0)
        # across 2.5 hours of churn the best pair should change at least once
        assert len(picks) >= 2

    def test_overhead_reasonable_on_small_cluster(self, scenario):
        broker = scenario.broker()
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.overhead_ms < 50.0

    def test_hierarchical_as_default_policy(self, scenario):
        broker = ResourceBroker(
            scenario.snapshot, policy=HierarchicalNetworkLoadAwarePolicy()
        )
        res = broker.request(AllocationRequest(8, ppn=4))
        assert res.allocation.policy == "hierarchical_network_load_aware"

    def test_snapshot_age_from_engine_clock(self, scenario):
        broker = scenario.broker()
        res = broker.request(
            AllocationRequest(8, ppn=4), now=scenario.engine.now + 42.0
        )
        assert res.snapshot_age_s == pytest.approx(42.0)
