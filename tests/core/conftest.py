"""Synthetic snapshot builders for allocator tests."""

from __future__ import annotations

import itertools

import pytest

from repro.monitor.snapshot import ClusterSnapshot, NodeView


def flat(v: float) -> dict[str, float]:
    return {"now": v, "m1": v, "m5": v, "m15": v}


def make_view(
    name: str,
    *,
    cores: int = 12,
    freq: float = 4.6,
    mem: float = 16.0,
    users: int = 0,
    load: float = 0.0,
    util: float = 10.0,
    flow: float = 0.0,
    avail: float = 12.0,
) -> NodeView:
    return NodeView(
        name=name,
        cores=cores,
        frequency_ghz=freq,
        memory_gb=mem,
        users=users,
        cpu_load=flat(load),
        cpu_util=flat(util),
        flow_rate_mbs=flat(flow),
        available_memory_gb=flat(avail),
    )


def make_snapshot(
    views: dict[str, NodeView],
    *,
    bandwidth: dict[tuple[str, str], float] | None = None,
    latency: dict[tuple[str, str], float] | None = None,
    peak: float = 125.0,
    time: float = 0.0,
) -> ClusterSnapshot:
    """Snapshot with uniform defaults for any unspecified pair."""
    names = list(views)
    pairs = [
        (a, b) if a <= b else (b, a)
        for a, b in itertools.combinations(names, 2)
    ]
    bw = {p: 125.0 for p in pairs}
    lat = {p: 100.0 for p in pairs}
    if bandwidth:
        for k, v in bandwidth.items():
            key = k if k[0] <= k[1] else (k[1], k[0])
            bw[key] = v
    if latency:
        for k, v in latency.items():
            key = k if k[0] <= k[1] else (k[1], k[0])
            lat[key] = v
    return ClusterSnapshot(
        time=time,
        nodes=views,
        bandwidth_mbs=bw,
        latency_us=lat,
        peak_bandwidth_mbs={p: peak for p in pairs},
        livehosts=tuple(names),
    )


@pytest.fixture
def four_node_snapshot() -> ClusterSnapshot:
    """Two idle well-connected nodes (a, b), one loaded (c), one far (d)."""
    views = {
        "a": make_view("a", load=0.5),
        "b": make_view("b", load=0.5),
        "c": make_view("c", load=10.0, util=80.0, users=4),
        "d": make_view("d", load=0.5),
    }
    return make_snapshot(
        views,
        bandwidth={("a", "d"): 30.0, ("b", "d"): 30.0, ("c", "d"): 30.0},
        latency={("a", "d"): 400.0, ("b", "d"): 400.0, ("c", "d"): 400.0},
    )
