"""Tests for Equation 1 (compute load)."""

import pytest

from repro.core.compute_load import attribute_costs, compute_loads
from repro.core.weights import ComputeWeights
from tests.core.conftest import make_snapshot, make_view


class TestAttributeCosts:
    def test_all_attributes_present(self):
        views = {"a": make_view("a"), "b": make_view("b")}
        costs = attribute_costs(views)
        assert "cpu_load" in costs and "core_count" in costs

    def test_loaded_node_costs_more(self):
        views = {"a": make_view("a", load=0.0), "b": make_view("b", load=8.0)}
        costs = attribute_costs(views)
        assert costs["cpu_load"]["b"] > costs["cpu_load"]["a"]

    def test_bigger_node_costs_less(self):
        views = {
            "a": make_view("a", cores=12, freq=4.6),
            "b": make_view("b", cores=8, freq=2.8),
        }
        costs = attribute_costs(views)
        assert costs["core_count"]["a"] < costs["core_count"]["b"]
        assert costs["cpu_frequency"]["a"] < costs["cpu_frequency"]["b"]


class TestComputeLoads:
    def test_idle_node_preferred(self, four_node_snapshot):
        cl = compute_loads(four_node_snapshot)
        assert cl["c"] > cl["a"]
        assert cl["c"] > cl["b"]

    def test_equal_nodes_equal_loads(self):
        snap = make_snapshot({"a": make_view("a"), "b": make_view("b")})
        cl = compute_loads(snap)
        assert cl["a"] == pytest.approx(cl["b"])

    def test_node_subset(self, four_node_snapshot):
        cl = compute_loads(four_node_snapshot, nodes=["a", "c"])
        assert set(cl) == {"a", "c"}

    def test_unknown_subset_node(self, four_node_snapshot):
        with pytest.raises(KeyError):
            compute_loads(four_node_snapshot, nodes=["a", "zzz"])

    def test_empty_snapshot(self):
        snap = make_snapshot({"a": make_view("a")})
        assert compute_loads(snap, nodes=[]) == {}

    def test_custom_weights_change_ranking(self):
        # node a: idle but tiny; node b: loaded but big.
        views = {
            "a": make_view("a", cores=4, freq=2.0, load=0.0),
            "b": make_view("b", cores=16, freq=5.0, load=4.0),
        }
        snap = make_snapshot(views)
        load_only = ComputeWeights({"cpu_load": 1.0})
        size_only = ComputeWeights({"core_count": 0.5, "cpu_frequency": 0.5})
        cl_load = compute_loads(snap, load_only)
        cl_size = compute_loads(snap, size_only)
        assert cl_load["a"] < cl_load["b"]
        assert cl_size["b"] < cl_size["a"]

    def test_sum_and_mean_methods_rank_identically(self, four_node_snapshot):
        cl_sum = compute_loads(four_node_snapshot, method="sum")
        cl_mean = compute_loads(four_node_snapshot, method="mean")
        rank = lambda d: sorted(d, key=d.get)  # noqa: E731
        assert rank(cl_sum) == rank(cl_mean)

    def test_mean_method_scale_is_order_one(self, four_node_snapshot):
        cl = compute_loads(four_node_snapshot, method="mean")
        # weights sum to 1 and per-attribute means are 1 ⇒ average CL ≈ O(1)
        avg = sum(cl.values()) / len(cl)
        assert 0.1 < avg < 3.0
