"""Property-based tests: allocation invariants over randomized snapshots.

Hypothesis drives cluster size, load patterns, network quality and request
shape; every policy must emit allocations that satisfy the structural
invariants regardless.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    AllocationRequest,
    HierarchicalNetworkLoadAwarePolicy,
    LoadAwarePolicy,
    NetworkLoadAwarePolicy,
    RandomPolicy,
    SequentialPolicy,
)
from repro.core.weights import TradeOff
from repro.monitor.snapshot import ClusterSnapshot
from tests.core.conftest import make_view


@st.composite
def snapshots(draw) -> ClusterSnapshot:
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    views = {}
    for i in range(n):
        name = f"h{i:02d}"
        views[name] = make_view(
            name,
            cores=int(rng.choice([8, 12])),
            freq=float(rng.choice([2.8, 4.6])),
            load=float(rng.uniform(0, 15)),
            util=float(rng.uniform(0, 100)),
            flow=float(rng.uniform(0, 60)),
            users=int(rng.integers(0, 6)),
            avail=float(rng.uniform(1, 14)),
        )
    names = sorted(views)
    bw, lat, peak = {}, {}, {}
    for a, b in itertools.combinations(names, 2):
        bw[(a, b)] = float(rng.uniform(5, 125))
        lat[(a, b)] = float(rng.uniform(40, 900))
        peak[(a, b)] = 125.0
    return ClusterSnapshot(
        time=0.0,
        nodes=views,
        bandwidth_mbs=bw,
        latency_us=lat,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(names),
    )


requests = st.builds(
    AllocationRequest,
    n_processes=st.integers(min_value=1, max_value=64),
    ppn=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    tradeoff=st.sampled_from(
        [TradeOff(0.0, 1.0), TradeOff(0.3, 0.7), TradeOff(1.0, 0.0)]
    ),
)

POLICIES = [
    RandomPolicy(),
    SequentialPolicy(),
    LoadAwarePolicy(),
    NetworkLoadAwarePolicy(),
    HierarchicalNetworkLoadAwarePolicy(),
]


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(snapshot=snapshots(), request_=requests, pidx=st.integers(0, 4))
def test_allocation_invariants(snapshot, request_, pidx):
    policy = POLICIES[pidx]
    rng = np.random.default_rng(0)
    alloc = policy.allocate(snapshot, request_, rng=rng)
    # 1. exactly the requested process count is hosted
    assert sum(alloc.procs.values()) == request_.n_processes
    # 2. only live, monitored nodes are used
    assert set(alloc.nodes) <= set(snapshot.livehosts)
    assert set(alloc.nodes) <= set(snapshot.nodes)
    # 3. every listed node hosts at least one process
    assert all(alloc.procs[n] >= 1 for n in alloc.nodes)
    # 4. nodes and procs keys agree, no duplicates
    assert len(set(alloc.nodes)) == len(alloc.nodes)
    assert set(alloc.nodes) == set(alloc.procs)
    # 5. the hostfile round-trips the process count
    total = sum(
        int(line.split(":")[1])
        for line in alloc.hostfile().strip().splitlines()
    )
    assert total == request_.n_processes


@settings(max_examples=30, deadline=None)
@given(snapshot=snapshots())
def test_network_policy_deterministic_without_rng(snapshot):
    request = AllocationRequest(n_processes=8, ppn=4)
    a = NetworkLoadAwarePolicy().allocate(snapshot, request)
    b = NetworkLoadAwarePolicy().allocate(snapshot, request)
    assert a.nodes == b.nodes and a.procs == b.procs
