"""Tests for Equation 2 (network load)."""

import pytest

from repro.core.network_load import (
    group_network_load,
    network_loads,
    total_group_network_load,
)
from repro.core.weights import NetworkWeights
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snap(four_node_snapshot):
    return four_node_snapshot


class TestNetworkLoads:
    def test_all_pairs_covered(self, snap):
        nl = network_loads(snap)
        assert len(nl) == 6

    def test_far_pair_costs_more(self, snap):
        nl = network_loads(snap)
        assert nl[("a", "d")] > nl[("a", "b")]

    def test_keys_canonical(self, snap):
        for a, b in network_loads(snap):
            assert a <= b

    def test_subset(self, snap):
        nl = network_loads(snap, nodes=["a", "b", "c"])
        assert set(nl) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_latency_only_weighting(self):
        views = {"a": make_view("a"), "b": make_view("b"), "c": make_view("c")}
        snap = make_snapshot(
            views,
            latency={("a", "b"): 50.0, ("a", "c"): 500.0, ("b", "c"): 50.0},
        )
        nl = network_loads(snap, NetworkWeights(w_lt=1.0, w_bw=0.0))
        assert nl[("a", "c")] > nl[("a", "b")]
        # bandwidth identical everywhere: it contributes nothing here
        assert nl[("a", "b")] == pytest.approx(nl[("b", "c")])

    def test_bandwidth_only_weighting(self):
        views = {"a": make_view("a"), "b": make_view("b"), "c": make_view("c")}
        snap = make_snapshot(
            views, bandwidth={("a", "c"): 10.0}  # others at 125 peak
        )
        nl = network_loads(snap, NetworkWeights(w_lt=0.0, w_bw=1.0))
        assert nl[("a", "c")] > nl[("a", "b")]
        assert nl[("a", "b")] == pytest.approx(0.0)  # no complement at peak

    def test_missing_pair_omitted(self):
        views = {"a": make_view("a"), "b": make_view("b"), "c": make_view("c")}
        snap = make_snapshot(views)
        # remove one latency measurement
        lat = dict(snap.latency_us)
        del lat[("a", "b")]
        from dataclasses import replace

        snap2 = replace(snap, latency_us=lat)
        nl = network_loads(snap2)
        assert ("a", "b") not in nl

    def test_unknown_method(self, snap):
        with pytest.raises(ValueError):
            network_loads(snap, method="bogus")


class TestGroupNetworkLoad:
    def test_average_over_pairs(self):
        loads = {("a", "b"): 1.0, ("a", "c"): 2.0, ("b", "c"): 3.0}
        assert group_network_load(loads, ["a", "b", "c"]) == pytest.approx(2.0)

    def test_total_over_pairs(self):
        loads = {("a", "b"): 1.0, ("a", "c"): 2.0, ("b", "c"): 3.0}
        assert total_group_network_load(loads, ["a", "b", "c"]) == pytest.approx(6.0)

    def test_single_node_is_zero(self):
        assert group_network_load({}, ["a"]) == 0.0
        assert total_group_network_load({}, ["a"]) == 0.0

    def test_duplicates_ignored(self):
        loads = {("a", "b"): 4.0}
        assert group_network_load(loads, ["a", "b", "a"]) == pytest.approx(4.0)

    def test_missing_pair_penalised_with_worst(self):
        loads = {("a", "b"): 1.0, ("a", "c"): 5.0}
        # pair (b, c) unmeasured -> gets max observed (5.0)
        assert total_group_network_load(loads, ["a", "b", "c"]) == pytest.approx(11.0)

    def test_explicit_missing_penalty(self):
        loads = {("a", "b"): 1.0}
        out = total_group_network_load(
            loads, ["a", "b", "c"], missing_penalty=10.0
        )
        assert out == pytest.approx(1.0 + 10.0 + 10.0)
