"""Tests for Equation 3 (effective processor count)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.effective_procs import effective_proc_count, effective_proc_counts
from tests.core.conftest import make_snapshot, make_view


class TestEffectiveProcCount:
    def test_idle_node_offers_all_cores(self):
        # ceil(0) % 12 = 0 -> 12 (the paper's formula keeps full capacity)
        assert effective_proc_count(12, 0.0) == 12

    def test_partial_load(self):
        # ceil(2.3) = 3, 3 % 12 = 3 -> 9
        assert effective_proc_count(12, 2.3) == 9

    def test_integer_load(self):
        assert effective_proc_count(12, 5.0) == 7

    def test_exact_multiple_wraps(self):
        # The paper's modulo: ceil(12) % 12 = 0 -> full 12.  Documented quirk.
        assert effective_proc_count(12, 12.0) == 12

    def test_overloaded_node_wraps_partially(self):
        # ceil(13) % 12 = 1 -> 11
        assert effective_proc_count(12, 13.0) == 11

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            effective_proc_count(0, 1.0)
        with pytest.raises(ValueError):
            effective_proc_count(4, -1.0)

    @given(
        cores=st.integers(min_value=1, max_value=128),
        load=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_always_in_valid_range(self, cores, load):
        pc = effective_proc_count(cores, load)
        assert 1 <= pc <= cores


class TestEffectiveProcCounts:
    def test_ppn_overrides_formula(self):
        snap = make_snapshot({"a": make_view("a", load=11.0)})
        pcs = effective_proc_counts(snap, ppn=4)
        assert pcs == {"a": 4}

    def test_invalid_ppn(self):
        snap = make_snapshot({"a": make_view("a")})
        with pytest.raises(ValueError):
            effective_proc_counts(snap, ppn=0)

    def test_uses_selected_window(self):
        v = make_view("a")
        object.__setattr__(
            v, "cpu_load", {"now": 0.0, "m1": 5.0, "m5": 0.0, "m15": 0.0}
        )
        snap = make_snapshot({"a": v})
        assert effective_proc_counts(snap, load_key="m1")["a"] == 7
        assert effective_proc_counts(snap, load_key="now")["a"] == 12

    def test_covers_all_nodes(self, four_node_snapshot):
        pcs = effective_proc_counts(four_node_snapshot)
        assert set(pcs) == {"a", "b", "c", "d"}
