"""subtree_partition: whole subtrees, LPT balance, determinism."""

from __future__ import annotations

import pytest

from repro.federation import snapshot_switches, subtree_partition


def grid(n_nodes: int, n_switches: int) -> dict[str, str]:
    return {f"n{i:02d}": f"s{i % n_switches}" for i in range(n_nodes)}


class TestSubtreePartition:
    def test_every_node_lands_exactly_once(self):
        nodes = grid(16, 4)
        part = subtree_partition(nodes, 3)
        placed = [n for members in part.values() for n in members]
        assert sorted(placed) == sorted(nodes)
        assert len(placed) == len(set(placed))

    def test_subtrees_are_never_split(self):
        nodes = grid(16, 4)
        part = subtree_partition(nodes, 3)
        owner: dict[str, str] = {}
        for sid, members in part.items():
            for n in members:
                switch = nodes[n]
                assert owner.setdefault(switch, sid) == sid

    def test_deterministic_under_input_order(self):
        a = grid(16, 4)
        b = dict(reversed(list(a.items())))
        pa = subtree_partition(a, 3)
        pb = subtree_partition(b, 3)
        assert {s: frozenset(m) for s, m in pa.items()} == {
            s: frozenset(m) for s, m in pb.items()
        }

    def test_shard_count_capped_at_subtree_count(self):
        nodes = {"n1": "s1", "n2": "s1", "n3": "s2"}
        part = subtree_partition(nodes, 8)
        assert set(part) == {"shard1", "shard2"}

    def test_lpt_keeps_shards_balanced(self):
        # one 8-node subtree + three 2-node subtrees over two shards:
        # the big subtree sits alone, the small ones pack the other.
        nodes = {f"big{i}": "sbig" for i in range(8)}
        for s in ("sa", "sb", "sc"):
            nodes.update({f"{s}{i}": s for i in range(2)})
        part = subtree_partition(nodes, 2)
        assert sorted(len(m) for m in part.values()) == [6, 8]

    def test_none_switch_is_a_singleton_subtree(self):
        nodes = {"n1": None, "n2": None, "n3": "s1", "n4": "s1"}
        part = subtree_partition(nodes, 3)
        # the switched pair stays together; each unswitched node is its
        # own subtree, so three shards exist and none mixes the groups
        assert len(part) == 3
        for members in part.values():
            if "n3" in members or "n4" in members:
                assert set(members) == {"n3", "n4"}
            else:
                assert len(members) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            subtree_partition({"n1": "s1"}, 0)
        with pytest.raises(ValueError):
            subtree_partition({}, 2)


class TestSnapshotSwitches:
    def test_reads_switches_from_the_snapshot(self, small_sc):
        snap = small_sc.snapshot()
        switches = snapshot_switches(snap)
        assert set(switches) == set(snap.nodes)
        # uniform_cluster(16, nodes_per_switch=4) → four leaf switches
        assert len(set(switches.values())) == 4

    def test_partition_of_snapshot_respects_subtrees(self, small_sc):
        snap = small_sc.snapshot()
        switches = snapshot_switches(snap)
        part = subtree_partition(switches, 2)
        for members in part.values():
            assert len(members) == 8  # two whole 4-node subtrees each
