"""Router scoring: cached aggregates vs a brute-force fleet pass.

The router ranks shards off :class:`PartitionedLoadState` aggregates
memoized per snapshot.  These tests recompute every shard's score from
scratch — one uncached fleet-wide Equation-1/2 pass, plain Python means
per subtree — and require the cached ranking to agree exactly, on the
paper's §5 evaluation topology.  Quarantine avoidance and denial
spill-over ride on the same fixtures.
"""

from __future__ import annotations

import pytest

from repro.broker.protocol import AllocateParams, ErrorCode, ProtocolError
from repro.core.compute_load import compute_loads
from repro.core.network_load import network_loads
from repro.core.weights import ComputeWeights, NetworkWeights
from repro.federation import snapshot_switches, subtree_partition
from repro.monitor.quarantine import NodeQuarantine
from tests.federation.conftest import TTL, cross_shard_n, make_federation

ALPHAS = (0.1, 0.3, 0.5, 0.9)


def brute_force_scores(
    snapshot, partition, alpha: float
) -> dict[str, float]:
    """Ask-every-shard baseline: no caching, no ShardAggregate."""
    live = [
        n
        for n in snapshot.nodes
        if not snapshot.livehosts or n in snapshot.livehosts
    ]
    cl = compute_loads(snapshot, ComputeWeights(), nodes=live)
    nl = network_loads(snapshot, NetworkWeights(), nodes=live)
    fleet_nl = sum(nl.values()) / len(nl) if nl else 0.0
    scores: dict[str, float] = {}
    for sid, nodes in partition.items():
        members = frozenset(n for n in nodes if n in cl)
        intra = [
            v for (a, b), v in nl.items() if a in members and b in members
        ]
        mean_cl = sum(cl[n] for n in members) / len(members)
        mean_nl = sum(intra) / len(intra) if intra else fleet_nl
        scores[sid] = alpha * mean_cl + (1.0 - alpha) * mean_nl
    return scores


class TestScoringAgreesWithBruteForce:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_paper_topology_ranking(self, paper_sc, alpha):
        router = make_federation(paper_sc, 4)
        snap = router._snapshots()
        aggs = router._partitioned().aggregates()
        expected = brute_force_scores(snap, router.partition, alpha)
        for sid, agg in aggs.items():
            assert router._score(agg, alpha) == pytest.approx(
                expected[sid], rel=1e-9
            )
        ranked = router._rank(aggs, alpha=alpha)
        assert ranked == sorted(
            expected,
            key=lambda s: (expected[s], -aggs[s].free_procs, s),
        )

    def test_allocate_forwards_to_best_scoring_shard(self, paper_sc):
        router = make_federation(paper_sc, 4)
        aggs = router._partitioned().aggregates()
        best = router._rank(aggs, alpha=0.3)[0]
        out = router.allocate_batch(
            [AllocateParams(n_processes=2, alpha=0.3, ttl_s=TTL)]
        )[0]
        assert not isinstance(out, ProtocolError)
        assert out["lease_id"].startswith(f"{best}:")

    def test_degenerate_single_shard(self, small_sc):
        router = make_federation(small_sc, 1)
        assert router.shard_ids == ("shard1",)
        out = router.allocate_batch(
            [AllocateParams(n_processes=2, ttl_s=TTL)]
        )[0]
        assert not isinstance(out, ProtocolError)
        assert out["lease_id"].startswith("shard1:")
        # nothing to spill or split to: an oversized ask is a typed denial
        huge = router.allocate_batch(
            [AllocateParams(n_processes=10_000, ttl_s=TTL)]
        )[0]
        assert isinstance(huge, ProtocolError)
        assert huge.code == ErrorCode.NO_CAPACITY


class TestQuarantineAvoidance:
    def test_quarantined_subtree_is_never_picked(self, small_sc):
        quarantine = NodeQuarantine(
            clock=lambda: small_sc.engine.now,
            flap_threshold=1,
            window_s=1e9,
            cooldown_s=1e9,
        )
        router = make_federation(small_sc, 2, quarantine=quarantine)
        aggs = router._partitioned().aggregates()
        best = router._rank(aggs, alpha=0.3)[0]
        for node in router.partition[best]:
            quarantine.record_flap(node)
        assert set(router.partition[best]) <= quarantine.excluded()

        ranked = router._rank(
            router._partitioned().aggregates(
                quarantined=router._quarantined()
            ),
            alpha=0.3,
        )
        assert best not in ranked
        for _ in range(3):
            out = router.allocate_batch(
                [AllocateParams(n_processes=2, ttl_s=TTL)]
            )[0]
            assert not isinstance(out, ProtocolError)
            assert not out["lease_id"].startswith(f"{best}:")
            assert not set(out["nodes"]) & set(router.partition[best])

    def test_shards_verb_reports_quarantine(self, small_sc):
        quarantine = NodeQuarantine(
            clock=lambda: small_sc.engine.now,
            flap_threshold=1,
            window_s=1e9,
            cooldown_s=1e9,
        )
        router = make_federation(small_sc, 2, quarantine=quarantine)
        victim = router.shard_ids[0]
        for node in router.partition[victim]:
            quarantine.record_flap(node)
        rows = {r["shard"]: r for r in router.shards()["shards"]}
        assert rows[victim]["quarantined"] == len(router.partition[victim])
        assert rows[victim]["usable_nodes"] == 0


class _DenyingService:
    """Wraps a shard service; every allocate is a NO_CAPACITY denial."""

    def __init__(self, service):
        self._service = service
        self.denials = 0

    def __getattr__(self, name):
        return getattr(self._service, name)

    def allocate_batch(self, batch):
        self.denials += len(batch)
        return [
            ProtocolError(ErrorCode.NO_CAPACITY, "stub: shard full")
            for _ in batch
        ]


class TestSpillOver:
    def test_denial_spills_to_next_ranked_shard(self, small_sc):
        router = make_federation(small_sc, 2)
        best = router._rank(
            router._partitioned().aggregates(), alpha=0.3
        )[0]
        stub = _DenyingService(router.shard(best).service)
        router.shard(best).service = stub
        out = router.allocate_batch(
            [AllocateParams(n_processes=2, alpha=0.3, ttl_s=TTL)]
        )[0]
        assert not isinstance(out, ProtocolError)
        assert not out["lease_id"].startswith(f"{best}:")
        assert stub.denials == 1
        assert router.spills == 1

    def test_non_capacity_errors_do_not_spill(self, small_sc):
        class Exploding(_DenyingService):
            def allocate_batch(self, batch):
                self.denials += len(batch)
                return [
                    ProtocolError(ErrorCode.BAD_REQUEST, "stub: malformed")
                    for _ in batch
                ]

        router = make_federation(small_sc, 2)
        best = router._rank(
            router._partitioned().aggregates(), alpha=0.3
        )[0]
        router.shard(best).service = Exploding(router.shard(best).service)
        out = router.allocate_batch(
            [AllocateParams(n_processes=2, alpha=0.3, ttl_s=TTL)]
        )[0]
        assert isinstance(out, ProtocolError)
        assert out.code == ErrorCode.BAD_REQUEST
        assert router.spills == 0


class TestCrossShardSizing:
    def test_helper_exceeds_every_single_shard(self, small_sc):
        router = make_federation(small_sc, 2)
        n = cross_shard_n(router)
        rows = router.shards()["shards"]
        assert all(n > row["free_procs"] for row in rows)
        assert n <= sum(row["free_procs"] for row in rows)
