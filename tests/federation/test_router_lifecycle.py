"""Lease lifecycle through the router: tokens, two-phase, shard death."""

from __future__ import annotations

import pytest

from repro.broker.protocol import (
    AllocateParams,
    ErrorCode,
    ProtocolError,
    ReconfigureParams,
    ReleaseParams,
    RenewParams,
    ResolveParams,
)
from tests.federation.conftest import TTL, cross_shard_n, make_federation


def allocate(router, **kwargs):
    kwargs.setdefault("ttl_s", TTL)
    out = router.allocate_batch([AllocateParams(**kwargs)])[0]
    if isinstance(out, ProtocolError):
        raise out
    return out


def active_leases(router) -> int:
    return sum(
        len(router.shard(sid).service.leases.active())
        for sid in router.shard_ids
    )


class TestTokenPreservation:
    def test_single_shard_retry_replays_the_grant(self, small_sc):
        router = make_federation(small_sc, 2)
        first = allocate(router, n_processes=2, token="tok-1")
        again = allocate(router, n_processes=2, token="tok-1")
        assert again["lease_id"] == first["lease_id"]
        assert active_leases(router) == 1

    def test_retry_sticks_to_the_granting_shard(self, small_sc):
        # Even when the first grant made its shard look worse than the
        # other, the retry must go back to it — the shard's own memo is
        # the only place the duplicate can be detected.
        router = make_federation(small_sc, 2)
        first = allocate(router, n_processes=4, token="tok-sticky")
        sid = first["lease_id"].split(":")[0]
        assert router._token_shard["tok-sticky"] == sid
        again = allocate(router, n_processes=4, token="tok-sticky")
        assert again["lease_id"] == first["lease_id"]

    def test_cross_shard_retry_replays_verbatim(self, small_sc):
        router = make_federation(small_sc, 2)
        n = cross_shard_n(router)
        first = allocate(router, n_processes=n, token="tok-x")
        assert len(first["shards"]) >= 2
        before = active_leases(router)
        again = allocate(router, n_processes=n, token="tok-x")
        assert again == first
        assert active_leases(router) == before
        assert router.metrics.allocates_deduped == 1
        assert router.cross_shard_grants == 1


class TestCrossShardLifecycle:
    def test_grant_spans_shards_and_composes(self, small_sc):
        router = make_federation(small_sc, 2)
        n = cross_shard_n(router)
        grant = allocate(router, n_processes=n)
        assert grant["lease_id"].startswith("x:")
        assert grant["policy"] == "federated"
        assert len(grant["shards"]) == 2
        assert sum(grant["procs"].values()) == n
        assert len(grant["nodes"]) == len(set(grant["nodes"]))
        assert grant["hostfile"].endswith("\n")
        # every member shard holds exactly its slice
        for sid, member_id in grant["shards"].items():
            lease = router.shard(sid).service.leases.get(member_id)
            assert lease is not None
            assert set(lease.nodes) <= set(router.partition[sid])

    def test_renew_fans_out(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        renewed = router.renew(
            RenewParams(lease_id=grant["lease_id"], ttl_s=2 * TTL)
        )
        assert renewed["lease_id"] == grant["lease_id"]
        # every member clamps to its table's max_ttl_s; the composed
        # answer is the *minimum* over members — the honest expiry
        assert renewed["ttl_s"] == TTL
        assert renewed["renewals"] >= 1

    def test_resolve_names_the_members(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        resolved = router.resolve(ResolveParams(lease_id=grant["lease_id"]))
        assert resolved["cross_shard"] is True
        assert {
            (m["shard"], m["lease_id"]) for m in resolved["members"]
        } == set(grant["shards"].items())

    def test_release_frees_every_member(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        released = router.release(ReleaseParams(lease_id=grant["lease_id"]))
        assert released["released"] is True
        assert set(released["nodes"]) == set(grant["nodes"])
        assert active_leases(router) == 0
        with pytest.raises(ProtocolError) as err:
            router.resolve(ResolveParams(lease_id=grant["lease_id"]))
        assert err.value.code == ErrorCode.UNKNOWN_LEASE

    def test_reconfigure_is_a_typed_denial(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        with pytest.raises(ProtocolError) as err:
            router.reconfigure(
                ReconfigureParams(lease_id=grant["lease_id"], alpha=0.5)
            )
        assert err.value.code == ErrorCode.BAD_REQUEST


class TestShardDeath:
    def test_commit_phase_death_rolls_back_everything(self, small_sc):
        router = make_federation(small_sc, 2)
        killed: list[str] = []

        def die_at_commit(sid: str) -> None:
            if not killed:
                victim = next(s for s in router.shard_ids if s != sid)
                router.kill(victim)
                killed.append(victim)

        router.commit_hook = die_at_commit
        out = router.allocate_batch(
            [AllocateParams(n_processes=cross_shard_n(router), ttl_s=TTL)]
        )[0]
        assert isinstance(out, ProtocolError)
        assert out.code == ErrorCode.SHARD_DOWN
        assert "rolled back" in out.message
        assert router.cross_shard_rollbacks == 1
        assert active_leases(router) == 0

    def test_revived_shard_serves_the_retry(self, small_sc):
        router = make_federation(small_sc, 2)
        killed: list[str] = []

        def die_at_commit(sid: str) -> None:
            if not killed:
                victim = next(s for s in router.shard_ids if s != sid)
                router.kill(victim)
                killed.append(victim)

        router.commit_hook = die_at_commit
        n = cross_shard_n(router)
        with pytest.raises(ProtocolError):
            allocate(router, n_processes=n, token="t1")
        router.commit_hook = None
        router.revive(killed[0])
        grant = allocate(router, n_processes=n, token="t2")
        assert len(grant["shards"]) == 2

    def test_dead_shard_lease_ops_are_typed(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=2)
        sid = grant["lease_id"].split(":")[0]
        router.kill(sid)
        with pytest.raises(ProtocolError) as err:
            router.renew(RenewParams(lease_id=grant["lease_id"]))
        assert err.value.code == ErrorCode.SHARD_DOWN
        assert router.shard_down_errors >= 1

    def test_sweep_reaps_a_fed_lease_missing_a_member(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        victim = next(iter(grant["shards"]))
        router.kill(victim)
        router.sweep_expired()
        assert router.cross_shard_reclaimed == 1
        assert active_leases(router) == 0
        with pytest.raises(ProtocolError) as err:
            router.resolve(ResolveParams(lease_id=grant["lease_id"]))
        assert err.value.code == ErrorCode.UNKNOWN_LEASE

    def test_all_shards_down_is_no_capacity(self, small_sc):
        router = make_federation(small_sc, 2)
        for sid in router.shard_ids:
            router.kill(sid)
        out = router.allocate_batch(
            [AllocateParams(n_processes=2, ttl_s=TTL)]
        )[0]
        assert isinstance(out, ProtocolError)
        assert out.code == ErrorCode.NO_CAPACITY


class TestStatusShape:
    def test_status_is_single_broker_shaped_plus_federation(self, small_sc):
        router = make_federation(small_sc, 2)
        grant = allocate(router, n_processes=cross_shard_n(router))
        status = router.status()
        assert status["policy"] == "federated"
        assert status["leases"]["cross_shard"] == 1
        assert status["leases"]["nodes_held"] == len(grant["nodes"])
        fed = status["federation"]
        assert set(fed["shards"]) == set(router.shard_ids)
        assert fed["counters"]["cross_shard_grants"] == 1
        assert status["metrics"]["granted"] >= 1
