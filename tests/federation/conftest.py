"""Shared fixtures for the federation subsystem tests."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import paper_scenario, small_scenario
from repro.federation import (
    build_federation,
    snapshot_switches,
    subtree_partition,
)

#: leases far outlive every test, so expiry never confounds accounting
TTL = 3600.0


@pytest.fixture(scope="module")
def paper_sc():
    """The §5 evaluation cluster, warmed — read-only per module."""
    return paper_scenario(seed=5, warmup_s=600.0)


@pytest.fixture(scope="module")
def small_sc():
    """16 nodes / 4 per switch → four subtrees, warmed — read-only."""
    return small_scenario(16, seed=3, warmup_s=600.0)


def make_federation(sc, n_shards, **kwargs):
    """A federation over a frozen snapshot of the scenario.

    The snapshot is captured once, so every shard (and the router's
    aggregates) reason about the identical fleet state — routing tests
    stay deterministic regardless of how often sources are polled.
    """
    snap = sc.snapshot()
    partition = subtree_partition(snapshot_switches(snap), n_shards)
    kwargs.setdefault("default_ttl_s", TTL)
    return build_federation(
        lambda: snap, partition, clock=lambda: sc.engine.now, **kwargs
    )


def cross_shard_n(router) -> int:
    """A process count no single shard can host but the fleet can."""
    frees = sorted(
        row["free_procs"]
        for row in router.shards()["shards"]
        if row["alive"]
    )
    return frees[-1] + max(2, frees[0] // 4)
