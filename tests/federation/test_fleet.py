"""Fleet passes through the federation router.

A fleet pass fans out as per-shard batches: each live shard replans its
own slice against its own source (a shard cannot price another shard's
nodes), the router sums the reports, and cross-shard leases stay on the
two-phase reserve path.  Dead shards degrade the pass — their row says
so — rather than failing it.
"""

from __future__ import annotations

from repro.broker.protocol import AllocateParams, FleetPlanParams, ProtocolError
from tests.federation.conftest import TTL, make_federation

#: a two-node lease on a uniform shard always has a shrink available,
#: so executed passes have something real to commit
LEASE_KW = dict(n_processes=8, ppn=4)


def allocate(router, **kwargs):
    kwargs.setdefault("ttl_s", TTL)
    out = router.allocate_batch([AllocateParams(**kwargs)])[0]
    if isinstance(out, ProtocolError):
        raise out
    return out


def seed_each_shard(router):
    """One single-shard lease per shard, via each shard's own service."""
    grants = {}
    for sid in router.shard_ids:
        out = router.shard(sid).service.allocate_batch(
            [AllocateParams(ttl_s=TTL, **LEASE_KW)]
        )[0]
        assert not isinstance(out, ProtocolError), out
        grants[sid] = out
    return grants


class TestFleetPlanFanOut:
    def test_dry_run_aggregates_per_shard_batches(self, small_sc):
        router = make_federation(small_sc, 2)
        seed_each_shard(router)
        out = router.fleet_plan(FleetPlanParams(dry_run=True))
        assert out["dry_run"] is True
        assert set(out["shards"]) == set(router.shard_ids)
        assert out["considered"] == 2
        assert out["planned"] == sum(
            len(row["planned"]) for row in out["shards"].values()
        )
        assert out["objective_gain"] == sum(
            row["objective_gain"] for row in out["shards"].values()
        )
        assert out["applied"] == 0 and out["failed"] == 0
        # a dry run is not a pass: no router or shard counters burned
        assert router.metrics.fleet_passes == 0
        for sid in router.shard_ids:
            assert router.shard(sid).service.metrics.fleet_passes == 0

    def test_executed_pass_commits_on_every_shard(self, small_sc):
        router = make_federation(small_sc, 2)
        grants = seed_each_shard(router)
        out = router.fleet_plan(FleetPlanParams())
        assert out["applied"] == 2 and out["failed"] == 0
        assert router.metrics.fleet_passes == 1
        assert router.metrics.fleet_actions_applied == 2
        # each shard committed an action; the reshaped lease is still
        # active and still confined to its own shard's slice
        for sid, grant in grants.items():
            lease = router.shard(sid).service.leases.get(grant["lease_id"])
            assert lease is not None
            assert set(lease.nodes) != set(grant["nodes"])
            assert set(lease.nodes) <= set(router.partition[sid])

    def test_dead_shard_degrades_not_fails(self, small_sc):
        router = make_federation(small_sc, 2)
        seed_each_shard(router)
        dead, live = router.shard_ids
        router.kill(dead)
        out = router.fleet_plan(FleetPlanParams())
        assert out["shards"][dead] == {"alive": False}
        assert out["considered"] == 1
        assert out["applied"] == out["shards"][live]["applied"]


class TestFleetStatusAggregation:
    def test_totals_and_router_passes(self, small_sc):
        router = make_federation(small_sc, 2)
        seed_each_shard(router)
        router.fleet_plan(FleetPlanParams())
        status = router.fleet_status()
        assert status["router_passes"] == 1
        assert status["passes"] == 2  # one per-shard pass each
        assert status["actions_applied"] == 2
        assert status["actions_failed"] == 0
        assert set(status["shards"]) == set(router.shard_ids)

    def test_dead_shard_row_in_status(self, small_sc):
        router = make_federation(small_sc, 2)
        dead = router.shard_ids[0]
        router.kill(dead)
        status = router.fleet_status()
        assert status["shards"][dead] == {"alive": False}
        assert status["passes"] == 0


class TestStatusCounters:
    def test_shard_rows_carry_malleability_counters(self, small_sc):
        router = make_federation(small_sc, 2)
        seed_each_shard(router)
        router.fleet_plan(FleetPlanParams())
        rows = router.status()["federation"]["shards"]
        for sid in router.shard_ids:
            row = rows[sid]
            for key in (
                "reconfigured",
                "reconfig_rejected",
                "fleet_passes",
                "fleet_actions_applied",
                "fleet_actions_failed",
            ):
                assert key in row, f"{key} missing from shard row"
            # fleet commits land in the shared reconfigure counter too
            assert row["fleet_passes"] == 1
            assert row["reconfigured"] == row["fleet_actions_applied"]
