"""FederationDaemon + client over real loopback TCP.

The router rides behind the unchanged ``BrokerServer`` transport; the
daemon subclass only adds the ``shards`` and ``resolve`` dispatch
branches.  These tests drive the full wire path — framing, batching,
typed errors — the way a production client would.
"""

from __future__ import annotations

import pytest

from repro.broker import BrokerClient, BrokerDaemonThread, BrokerError
from repro.broker.protocol import PROTOCOL_VERSION
from repro.experiments.scenario import small_scenario
from repro.federation import (
    FederationDaemon,
    build_federation,
    snapshot_switches,
    subtree_partition,
)
from repro.monitor.snapshot import CachedSnapshotSource


@pytest.fixture(scope="module")
def daemon():
    sc = small_scenario(16, seed=7, warmup_s=600.0)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
    partition = subtree_partition(snapshot_switches(source()), 2)
    router = build_federation(source, partition, default_ttl_s=60.0)
    server = FederationDaemon(router, port=0)
    with BrokerDaemonThread(server) as d:
        yield d


@pytest.fixture
def client(daemon):
    with BrokerClient(port=daemon.port, timeout_s=10.0) as c:
        yield c


class TestFederatedRoundTrip:
    def test_allocate_renew_release(self, client):
        grant = client.allocate(4, ttl_s=30.0)
        assert ":" in grant.lease_id  # namespaced by the owning shard
        assert sum(grant.procs.values()) == 4
        renewed = client.renew(grant.lease_id, ttl_s=45.0)
        assert renewed["renewals"] == 1
        released = client.release(grant.lease_id)
        assert released["released"] is True
        assert set(released["nodes"]) == set(grant.nodes)

    def test_shards_verb(self, client):
        shards = client.shards()
        rows = {r["shard"]: r for r in shards["shards"]}
        assert set(rows) == {"shard1", "shard2"}
        for row in rows.values():
            assert row["alive"] is True
            assert row["usable_nodes"] > 0
            assert "score" in row
        assert "counters" in shards

    def test_resolve_verb(self, client):
        grant = client.allocate(2, ttl_s=30.0)
        sid = grant.lease_id.split(":")[0]
        resolved = client.resolve(grant.lease_id)
        assert resolved["cross_shard"] is False
        assert resolved["shard"] == sid
        assert resolved["active"] is True
        client.release(grant.lease_id)

    def test_resolve_unknown_is_typed(self, client):
        with pytest.raises(BrokerError) as err:
            client.resolve("nowhere:L00000042")
        assert err.value.code == "UNKNOWN_LEASE"

    def test_status_reports_federation(self, client):
        status = client.status()
        assert status["protocol_version"] == PROTOCOL_VERSION
        assert status["policy"] == "federated"
        assert set(status["federation"]["shards"]) == {"shard1", "shard2"}
