"""Snapshot slicing: projection correctness and the incremental path."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import small_scenario
from repro.federation import snapshot_switches, subtree_partition
from repro.monitor.slicing import ShardSnapshotSource, slice_snapshot


@pytest.fixture
def sc():
    """A private scenario — these tests advance simulated time."""
    return small_scenario(8, seed=1, warmup_s=300.0)


class TestSliceSnapshot:
    def test_projection_keeps_only_shard_state(self, sc):
        snap = sc.snapshot()
        part = subtree_partition(snapshot_switches(snap), 2)
        keep = set(part["shard1"])
        sliced = slice_snapshot(snap, keep)
        assert set(sliced.nodes) == keep & set(snap.nodes)
        assert sliced.time == snap.time
        for pair in sliced.bandwidth_mbs:
            assert pair[0] in keep and pair[1] in keep
        for pair in sliced.latency_us:
            assert pair[0] in keep and pair[1] in keep
        assert all(h in keep for h in sliced.livehosts)
        # livehosts order is the parent's, filtered
        assert list(sliced.livehosts) == [
            h for h in snap.livehosts if h in keep
        ]

    def test_cross_subtree_links_are_dropped(self, sc):
        snap = sc.snapshot()
        part = subtree_partition(snapshot_switches(snap), 2)
        sliced = slice_snapshot(snap, part["shard1"])
        crossing = [
            pair
            for pair in snap.latency_us
            if (pair[0] in part["shard1"]) != (pair[1] in part["shard1"])
        ]
        assert all(pair not in sliced.latency_us for pair in crossing)

    def test_unknown_nodes_are_ignored(self, sc):
        snap = sc.snapshot()
        sliced = slice_snapshot(snap, ["ghost1", *list(snap.nodes)[:2]])
        assert len(sliced.nodes) == 2


class TestShardSnapshotSource:
    def test_same_parent_object_reuses_the_slice(self, sc):
        snap = sc.snapshot()
        source = ShardSnapshotSource(lambda: snap, list(snap.nodes)[:4])
        first = source()
        second = source()
        assert second is first
        assert source.reuses == 1
        assert source.rebuilds == 1  # the initial slice

    def test_parent_advance_is_served_incrementally(self, sc):
        part = subtree_partition(
            snapshot_switches(sc.snapshot()), 2
        )
        source = ShardSnapshotSource(sc.snapshot, part["shard1"])
        first = source()
        sc.advance(30.0)
        second = source()
        assert second is not first
        assert second.time > first.time
        assert set(second.nodes) == set(first.nodes)
        assert source.deltas + source.rebuilds >= 2

    def test_rejects_empty_node_set(self, sc):
        with pytest.raises(ValueError):
            ShardSnapshotSource(sc.snapshot, [])
