"""Daemon + client library over real loopback TCP.

The round-trip tests run a daemon thread and the blocking client, like a
production caller would.  The backpressure test runs inside one asyncio
loop with the batcher deliberately paused, so the bounded admission
queue fills synchronously — deterministic, no timing races.
"""

import asyncio
import json

import pytest

from repro.broker import (
    BrokerClient,
    BrokerDaemonThread,
    BrokerError,
    BrokerServer,
    BrokerService,
)
from repro.broker.protocol import PROTOCOL_VERSION
from repro.monitor.snapshot import CachedSnapshotSource


@pytest.fixture(scope="module")
def daemon(scenario):
    source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
    service = BrokerService(source, default_ttl_s=30.0)
    server = BrokerServer(service, port=0)
    with BrokerDaemonThread(server) as d:
        yield d


@pytest.fixture
def client(daemon):
    with BrokerClient(port=daemon.port, timeout_s=10.0) as c:
        yield c


class TestRoundTrip:
    def test_allocate_renew_release(self, client):
        grant = client.allocate(8, ppn=4, ttl_s=20.0)
        assert sum(grant.procs.values()) == 8
        assert grant.lease_id.startswith("L")
        assert grant.hostfile.endswith("\n")

        renewed = client.renew(grant.lease_id, ttl_s=40.0)
        assert renewed["ttl_s"] == 40.0 and renewed["renewals"] == 1

        released = client.release(grant.lease_id)
        assert released["released"] is True
        assert set(released["nodes"]) == set(grant.nodes)

    def test_double_release_is_structured_error(self, client):
        grant = client.allocate(4)
        client.release(grant.lease_id)
        with pytest.raises(BrokerError) as err:
            client.release(grant.lease_id)
        assert err.value.code == "UNKNOWN_LEASE"

    def test_unknown_lease_renew(self, client):
        with pytest.raises(BrokerError) as err:
            client.renew("L99999999")
        assert err.value.code == "UNKNOWN_LEASE"

    def test_status_counts_traffic(self, client):
        grant = client.allocate(4)
        client.release(grant.lease_id)
        status = client.status()
        assert status["protocol_version"] == PROTOCOL_VERSION
        assert status["metrics"]["granted"] >= 1
        assert status["metrics"]["batches"] >= 1
        assert status["snapshot"]["refreshes"] >= 1

    def test_two_clients_cannot_double_book(self, daemon):
        with BrokerClient(port=daemon.port) as c1, \
                BrokerClient(port=daemon.port) as c2:
            g1 = c1.allocate(8, ppn=4)
            g2 = c2.allocate(8, ppn=4)
            try:
                assert not set(g1.nodes) & set(g2.nodes)
            finally:
                c1.release(g1.lease_id)
                c2.release(g2.lease_id)

    def test_bad_params_rejected(self, client):
        with pytest.raises(BrokerError) as err:
            client.allocate(-1)
        assert err.value.code == "BAD_REQUEST"

    def test_unknown_policy_rejected(self, client):
        with pytest.raises(BrokerError) as err:
            client.allocate(4, policy="first_fit")
        assert err.value.code == "BAD_REQUEST"

    def test_connect_failure_is_structured(self):
        client = BrokerClient(
            port=1, timeout_s=1.0, connect_retries=1, retry_delay_s=0.01
        )
        with pytest.raises(BrokerError) as err:
            client.status()
        assert err.value.code == "CONNECT"


class TestWireLevel:
    """Raw socket conversations (malformed input, versioning)."""

    def _talk(self, daemon, payload: bytes) -> dict:
        import socket

        with socket.create_connection(("127.0.0.1", daemon.port), 5.0) as s:
            s.sendall(payload)
            buf = s.makefile("rb").readline()
        return json.loads(buf)

    def test_malformed_json_answered_not_dropped(self, daemon):
        obj = self._talk(daemon, b"this is not json\n")
        assert obj["ok"] is False
        assert obj["error"]["code"] == "BAD_REQUEST"

    def test_wrong_version_rejected(self, daemon):
        line = json.dumps({"v": 999, "id": "x", "op": "status"}) + "\n"
        obj = self._talk(daemon, line.encode())
        assert obj["error"]["code"] == "UNSUPPORTED_VERSION"
        assert obj["id"] == "x"  # id is salvaged for correlation

    def test_unknown_op_rejected(self, daemon):
        line = json.dumps({"v": 1, "id": "y", "op": "defrag"}) + "\n"
        obj = self._talk(daemon, line.encode())
        assert obj["error"]["code"] == "UNKNOWN_OP"


class TestBackpressure:
    def test_busy_when_admission_queue_full(self, scenario):
        """With the batcher paused, queue slot 1 fills; request 2 → BUSY."""

        async def scenario_run():
            source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
            service = BrokerService(source)
            server = BrokerServer(service, port=0, max_queue=1)
            await server.start(start_batcher=False, start_sweeper=False)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                req = {"v": 1, "id": "a1", "op": "allocate", "params": {"n": 4}}
                writer.write((json.dumps(req) + "\n").encode())
                req2 = dict(req, id="a2")
                # A second connection: the first one's handler is awaiting
                # its (never-decided) response and won't read more lines.
                reader2, writer2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer2.write((json.dumps(req2) + "\n").encode())
                line = await asyncio.wait_for(reader2.readline(), timeout=5.0)
                obj = json.loads(line)
                assert obj["id"] == "a2"
                assert obj["ok"] is False
                assert obj["error"]["code"] == "BUSY"
                assert service.metrics.busy_rejected == 1
                writer.close()
                writer2.close()
            finally:
                await server.stop()

        asyncio.run(scenario_run())

    def test_queue_drains_after_batcher_resumes(self, scenario):
        """BUSY is backpressure, not failure: capacity returns."""

        async def scenario_run():
            source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
            service = BrokerService(source)
            server = BrokerServer(service, port=0, max_queue=1)
            await server.start(start_batcher=True, start_sweeper=False)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                req = {"v": 1, "id": "b1", "op": "allocate", "params": {"n": 4}}
                writer.write((json.dumps(req) + "\n").encode())
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                obj = json.loads(line)
                assert obj["ok"] is True, obj
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario_run())
