"""BrokerClient transport retries: idempotent, jittered, and bounded.

Driven through the chaos transport (a scripted in-memory socket factory
over a real service): the client must survive a mid-request socket death
by retrying — but only for replay-safe operations, and for ``allocate``
only because the idempotency token makes the replay dedupe server-side
instead of double-granting.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.broker.client import BrokerClient, BrokerError
from repro.broker.service import BrokerService
from repro.chaos.transport import (
    DIE_AFTER_SEND,
    DIE_BEFORE_SEND,
    OK,
    ScriptedSocketFactory,
)

from tests.core.test_array_equivalence import random_snapshot


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def service() -> BrokerService:
    snap = random_snapshot(np.random.default_rng(42), 8)
    return BrokerService(lambda: snap, clock=FakeClock(), default_ttl_s=600.0)


def _client(service, script, **kwargs):
    factory = ScriptedSocketFactory(service, script)
    defaults = dict(
        connect_retries=2,
        retry_delay_s=0.0,
        transport_retries=1,
        backoff_s=0.0,
        socket_factory=factory,
        rng=random.Random(0),
        sleep=lambda _s: None,
    )
    defaults.update(kwargs)
    return BrokerClient("fake", 0, **defaults), factory


class TestAllocateRetryIdempotency:
    def test_die_after_send_retries_and_dedupes(self, service):
        """The dangerous case: the grant happened, the response was lost."""
        client, factory = _client(service, [DIE_AFTER_SEND, OK])
        grant = client.allocate(4, ppn=2)
        assert grant.lease_id
        assert client.retries_used == 1
        # Two requests reached the server; the token collapsed them into
        # ONE lease — a naive retry would have granted twice.
        assert factory.dispatched == 2
        assert service.metrics.allocates_deduped == 1
        assert len(service.leases.active()) == 1
        held = {n for l in service.leases.active() for n in l.nodes}
        assert set(grant.nodes) == held

    def test_die_before_send_retry_is_trivially_safe(self, service):
        client, factory = _client(service, [DIE_BEFORE_SEND, OK])
        grant = client.allocate(4, ppn=2)
        assert grant.lease_id
        assert client.retries_used == 1
        assert factory.dispatched == 1  # server saw it exactly once
        assert service.metrics.allocates_deduped == 0
        assert len(service.leases.active()) == 1

    def test_caller_supplied_token_dedupes_across_clients(self, service):
        client_a, _ = _client(service, [OK])
        client_b, _ = _client(service, [OK])
        a = client_a.allocate(4, ppn=2, token="job-77")
        b = client_b.allocate(4, ppn=2, token="job-77")
        assert a.lease_id == b.lease_id
        assert len(service.leases.active()) == 1

    def test_retries_exhausted_raises_transport_error(self, service):
        client, factory = _client(
            service, [DIE_AFTER_SEND, DIE_AFTER_SEND], transport_retries=1
        )
        with pytest.raises(BrokerError) as err:
            client.allocate(4, ppn=2)
        assert err.value.code == "CONNECT"
        assert client.retries_used == 1
        # Both attempts reached the server, still only one lease.
        assert factory.dispatched == 2
        assert len(service.leases.active()) == 1


class TestRetryScope:
    def test_status_is_retried(self, service):
        client, _ = _client(service, [DIE_AFTER_SEND, OK])
        status = client.call("status")
        assert status["leases"]["active"] == 0
        assert client.retries_used == 1

    @pytest.mark.parametrize("op", ["renew", "release", "reconfigure"])
    def test_mutating_ops_are_never_replayed(self, service, op):
        client, factory = _client(service, [DIE_AFTER_SEND, OK])
        with pytest.raises(BrokerError) as err:
            client.call(op, {"lease_id": "L00000000"})
        assert err.value.code == "CONNECT"
        assert client.retries_used == 0
        assert factory.dispatched == 1  # no second attempt

    def test_allocate_without_token_is_not_replayed(self, service):
        client, factory = _client(service, [DIE_AFTER_SEND, OK])
        with pytest.raises(BrokerError):
            client.call("allocate", {"n": 4, "ppn": 2})  # raw, token-less
        assert client.retries_used == 0
        assert factory.dispatched == 1

    def test_server_side_errors_are_not_transport_retried(self, service):
        client, factory = _client(service, [OK, OK])
        with pytest.raises(BrokerError) as err:
            client.allocate(0)  # invalid n → typed protocol error
        assert err.value.code != "CONNECT"
        assert client.retries_used == 0
        assert factory.dispatched == 1


class TestBackoff:
    def test_backoff_is_jittered_and_exponential(self, service):
        delays: list[float] = []
        client, _ = _client(
            service,
            [DIE_AFTER_SEND, DIE_AFTER_SEND, DIE_AFTER_SEND, OK],
            transport_retries=3,
            backoff_s=0.1,
            rng=random.Random(123),
            sleep=delays.append,
        )
        grant = client.allocate(4, ppn=2)
        assert grant.lease_id
        assert len(delays) == 3
        for attempt, delay in enumerate(delays):
            base = 0.1 * (2**attempt)
            assert 0.5 * base <= delay <= 1.5 * base
        # Deterministic under an injected rng.
        rng = random.Random(123)
        expected = [
            0.1 * (2**i) * (0.5 + rng.random()) for i in range(3)
        ]
        assert delays == pytest.approx(expected)

    def test_zero_backoff_allowed(self, service):
        client, _ = _client(service, [DIE_AFTER_SEND, OK], backoff_s=0.0)
        assert client.allocate(2, ppn=2).lease_id


class TestSeedKnob:
    """The DET003 fix: retry jitter replays byte-identically from a seed."""

    def _delays(self, service, **kwargs):
        delays: list[float] = []
        client, _ = _client(
            service,
            [DIE_AFTER_SEND, DIE_AFTER_SEND, OK],
            transport_retries=3,
            backoff_s=0.1,
            rng=None,  # exercise the seed path, not the injected-rng path
            sleep=delays.append,
            **kwargs,
        )
        assert client.allocate(4, ppn=2).lease_id
        return delays

    def test_same_seed_replays_identical_jitter(self, service):
        assert self._delays(service, seed=7) == self._delays(service, seed=7)

    def test_different_seeds_diverge(self, service):
        assert self._delays(service, seed=7) != self._delays(service, seed=8)

    def test_env_knob_seeds_the_default(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_SEED", "7")
        from_env = self._delays(service)
        assert from_env == self._delays(service, seed=7)

    def test_unseeded_default_is_still_deterministic(self, service, monkeypatch):
        # No seed, no env: seed 0, so two fresh clients replay identically.
        monkeypatch.delenv("REPRO_CLIENT_SEED", raising=False)
        assert self._delays(service) == self._delays(service, seed=0)

    def test_garbage_env_value_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_SEED", "not-an-int")
        with pytest.raises(ValueError, match="REPRO_CLIENT_SEED"):
            BrokerClient("fake", 0, socket_factory=lambda *a: None)

    def test_explicit_rng_wins_over_seed(self, service):
        delays_rng: list[float] = []
        client, _ = _client(
            service,
            [DIE_AFTER_SEND, OK],
            transport_retries=2,
            backoff_s=0.1,
            rng=random.Random(123),
            seed=999,
            sleep=delays_rng.append,
        )
        assert client.allocate(4, ppn=2).lease_id
        rng = random.Random(123)
        assert delays_rng == pytest.approx(
            [0.1 * (0.5 + rng.random())]
        )
