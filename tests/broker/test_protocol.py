"""Wire-protocol parsing, validation and encoding."""

import json

import pytest

from repro.broker.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    AllocateParams,
    ErrorCode,
    ProtocolError,
    encode_request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)


def line(**overrides) -> str:
    obj = {"v": PROTOCOL_VERSION, "id": "r1", "op": "status"}
    obj.update(overrides)
    return json.dumps(obj)


class TestParseRequest:
    def test_roundtrip_allocate(self):
        raw = encode_request(
            "c7", "allocate", {"n": 32, "ppn": 4, "alpha": 0.4, "ttl_s": 60}
        )
        req = parse_request(raw)
        assert req.id == "c7" and req.op == "allocate"
        assert req.params == AllocateParams(
            n_processes=32, ppn=4, alpha=0.4, ttl_s=60
        )

    def test_defaults(self):
        req = parse_request(line(op="allocate", params={"n": 8}))
        assert req.params.ppn is None
        assert req.params.alpha == 0.3
        assert req.params.policy is None and req.params.ttl_s is None

    def test_renew_release_status(self):
        renew = parse_request(
            line(op="renew", params={"lease_id": "L1", "ttl_s": 5})
        )
        assert renew.params.lease_id == "L1" and renew.params.ttl_s == 5
        release = parse_request(line(op="release", params={"lease_id": "L1"}))
        assert release.params.lease_id == "L1"
        status = parse_request(line(op="status"))
        assert status.op == "status"

    def test_numeric_id_coerced_to_string(self):
        assert parse_request(line(id=12)).id == "12"

    @pytest.mark.parametrize("bad", [
        "not json at all",
        "[1, 2, 3]",
        '"a string"',
        line(op="allocate"),                        # missing n
        line(op="allocate", params={"n": 0}),       # non-positive n
        line(op="allocate", params={"n": -4}),
        line(op="allocate", params={"n": 8, "ppn": 0}),
        line(op="allocate", params={"n": 8, "alpha": 1.5}),
        line(op="allocate", params={"n": 8, "ttl_s": -1}),
        line(op="allocate", params={"n": True}),    # bool is not an int here
        line(op="allocate", params={"n": "8"}),
        line(op="renew", params={}),                # missing lease_id
        line(op="renew", params={"lease_id": ""}),
        line(op="release", params={"lease_id": 7}),
        line(op="status", params="nope"),
        json.dumps({"id": "x", "op": "status"}),    # missing v
    ])
    def test_bad_requests(self, bad):
        with pytest.raises(ProtocolError) as err:
            parse_request(bad)
        assert err.value.code == ErrorCode.BAD_REQUEST

    def test_wrong_version(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(line(v=99))
        assert err.value.code == ErrorCode.UNSUPPORTED_VERSION

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(line(op="teleport"))
        assert err.value.code == ErrorCode.UNKNOWN_OP

    def test_oversized_line_rejected(self):
        huge = line(op="allocate", params={"n": 8, "policy": "x" * MAX_LINE_BYTES})
        with pytest.raises(ProtocolError) as err:
            parse_request(huge)
        assert err.value.code == ErrorCode.BAD_REQUEST


class TestEncodeResponse:
    def test_ok_roundtrip(self):
        raw = encode_response(ok_response("r9", {"lease_id": "L1"}))
        obj = json.loads(raw)
        assert obj == {
            "v": PROTOCOL_VERSION,
            "id": "r9",
            "ok": True,
            "result": {"lease_id": "L1"},
        }

    def test_error_roundtrip(self):
        err = ProtocolError(ErrorCode.BUSY, "queue full")
        obj = json.loads(encode_response(error_response("r2", err)))
        assert obj["ok"] is False
        assert obj["error"] == {"code": "BUSY", "message": "queue full"}

    def test_one_line_per_message(self):
        raw = encode_response(ok_response("a", {"x": 1}))
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
