"""Shared fixtures for the broker subsystem tests."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import small_scenario


class FakeClock:
    """A manually advanced clock: call it for 'now', += to advance."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        assert dt >= 0
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(scope="module")
def scenario():
    """One warmed 8-node cluster shared by a test module (read-only)."""
    return small_scenario(8, seed=3, warmup_s=600.0)
