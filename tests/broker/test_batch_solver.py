"""Batch solver and lineage-memo behaviour under incremental snapshots.

Two PR-6 guarantees live here:

* ``allocate_batch`` is a *solver*, not a loop — higher-priority jobs
  are decided first under contention, the swap-improvement pass can only
  lower the summed raw Equation-4 cost, and with all-default priorities
  the grants are identical to the historical sequential arrival-order
  behaviour.
* the decision memo is keyed on snapshot *lineage*: an applied delta
  evicts exactly the entries whose usable-node scope intersects the
  delta's affected nodes — a memo hit can never replay a decision made
  against data the delta rewrote (the stale-grant regression), while
  entries untouched by the delta keep their hit.
"""

import dataclasses

import pytest

from repro.broker.protocol import (
    AllocateParams,
    ErrorCode,
    ProtocolError,
    ReleaseParams,
)
from repro.broker.service import BrokerService
from repro.monitor.snapshot import CachedSnapshotSource


def fresh_snapshot(scenario):
    """A scenario snapshot with its own (empty) derived cache.

    Incremental migration consumes the previous snapshot's cached array
    states in place, so tests that refresh must not share one snapshot
    object across services.
    """
    return scenario.snapshot()


def drift_loads(snap, names, factor=8.0):
    """``snap`` with the CPU load of ``names`` scaled — a pure delta."""
    views = dict(snap.nodes)
    for name in names:
        view = views[name]
        views[name] = dataclasses.replace(
            view,
            cpu_load={k: float(v) * factor for k, v in view.cpu_load.items()},
        )
    return dataclasses.replace(snap, time=snap.time + 1.0, nodes=views)


def incremental_service(scenario, clock, **kwargs):
    """Service over an incremental cached source fed by a mutable cell."""
    cell = [fresh_snapshot(scenario)]
    source = CachedSnapshotSource(
        lambda: cell[-1], max_age_s=5.0, clock=clock, incremental=True
    )
    kwargs.setdefault("default_ttl_s", 30.0)
    return BrokerService(source, clock=clock, **kwargs), cell, source


def sealed_service(scenario, clock, **kwargs):
    """Service over one pinned snapshot (the historical fixture shape)."""
    kwargs.setdefault("default_ttl_s", 30.0)
    source = CachedSnapshotSource(
        scenario.snapshot, max_age_s=1e9, clock=clock
    )
    return BrokerService(source, clock=clock, **kwargs)


def grant_of(result):
    assert not isinstance(result, ProtocolError), result
    return result


def raw_cost(grant, alpha):
    """Raw Equation-4 objective of one grant (cross-decision comparable)."""
    return alpha * grant["compute_cost"] + (1.0 - alpha) * grant["network_cost"]


class TestBatchNoWorseThanSequential:
    BATCHES = [
        [(12, 0.0), (8, 0.0), (4, 0.0)],
        [(4, 1.0), (12, 3.0), (8, 2.0)],
        [(8, 0.0), (8, 5.0), (8, 1.0), (4, 0.0)],
    ]

    @pytest.mark.parametrize("shape", BATCHES, ids=["flat", "inverted", "mixed"])
    def test_batch_total_cost_le_sequential(self, scenario, clock, shape):
        alpha = 0.3
        batch = [
            AllocateParams(n_processes=n, ppn=4, alpha=alpha, priority=pr)
            for n, pr in shape
        ]
        sequential = sealed_service(scenario, clock)
        seq_grants = [
            grant_of(sequential.allocate_batch([p])[0]) for p in batch
        ]
        batched = sealed_service(scenario, clock)
        results = batched.allocate_batch(batch)
        bat_grants = [grant_of(r) for r in results]
        seq_total = sum(raw_cost(g, alpha) for g in seq_grants)
        bat_total = sum(raw_cost(g, alpha) for g in bat_grants)
        assert bat_total <= seq_total + 1e-9

    def test_default_priorities_reproduce_sequential_grants(
        self, scenario, clock
    ):
        batch = [
            AllocateParams(n_processes=n, ppn=4, alpha=0.3)
            for n in (12, 8, 4)
        ]
        sequential = sealed_service(scenario, clock, batch_improve=False)
        seq_nodes = [
            grant_of(sequential.allocate_batch([p])[0])["nodes"] for p in batch
        ]
        batched = sealed_service(scenario, clock, batch_improve=False)
        bat_nodes = [
            grant_of(r)["nodes"] for r in batched.allocate_batch(batch)
        ]
        assert bat_nodes == seq_nodes

    def test_improvement_pass_never_hurts(self, scenario, clock):
        alpha = 0.3
        batch = [
            AllocateParams(n_processes=n, ppn=4, alpha=alpha, priority=pr)
            for n, pr in [(4, 0.0), (12, 0.0), (8, 0.0)]
        ]
        plain = sealed_service(scenario, clock, batch_improve=False)
        improved = sealed_service(scenario, clock, batch_improve=True)
        plain_total = sum(
            raw_cost(grant_of(r), alpha) for r in plain.allocate_batch(batch)
        )
        improved_total = sum(
            raw_cost(grant_of(r), alpha)
            for r in improved.allocate_batch(batch)
        )
        assert improved_total <= plain_total + 1e-9
        assert plain.metrics.batch_swaps_adopted == 0
        assert improved.metrics.batch_swaps_adopted >= 0
        assert "batch_swaps_adopted" in improved.metrics.snapshot()


class TestPriorityOrdering:
    def test_high_priority_gets_the_good_nodes(self, scenario, clock):
        """Decided first → the lightly loaded nodes, despite arriving last."""
        alpha = 0.3
        probe = sealed_service(scenario, clock)
        best = grant_of(
            probe.allocate_batch(
                [AllocateParams(n_processes=24, ppn=4, alpha=alpha)]
            )[0]
        )
        service = sealed_service(scenario, clock)
        low = AllocateParams(n_processes=24, ppn=4, alpha=alpha, priority=0.0)
        high = AllocateParams(n_processes=24, ppn=4, alpha=alpha, priority=5.0)
        first, second = service.allocate_batch([low, high])
        g_low, g_high = grant_of(first), grant_of(second)
        # results stay in arrival order, but the high-priority job got
        # the unconstrained (best) decision even though it arrived second
        assert g_high["nodes"] == best["nodes"]
        assert set(g_low["nodes"]).isdisjoint(g_high["nodes"])

    def test_high_priority_survives_capacity_exhaustion(self, scenario, clock):
        # three 16-proc jobs at ppn=4 need 4 nodes each; the cluster has
        # 8, so whichever job is decided last finds no usable node left
        service = sealed_service(scenario, clock)
        p = lambda pr: AllocateParams(n_processes=16, ppn=4, priority=pr)
        results = service.allocate_batch([p(0.0), p(5.0), p(1.0)])
        assert isinstance(results[0], ProtocolError)
        assert results[0].code == ErrorCode.NO_CAPACITY
        assert not isinstance(results[1], ProtocolError)
        assert not isinstance(results[2], ProtocolError)

    def test_equal_priority_keeps_arrival_order(self, scenario, clock):
        service = sealed_service(scenario, clock)
        p = AllocateParams(n_processes=16, ppn=4, priority=1.0)
        results = service.allocate_batch([p, p, p])
        assert not isinstance(results[0], ProtocolError)
        assert not isinstance(results[1], ProtocolError)
        assert isinstance(results[2], ProtocolError)


class TestLineageMemo:
    def test_stale_grant_after_delta_regression(self, scenario, clock):
        """A delta touching a decision's nodes must evict its memo entry."""
        service, cell, source = incremental_service(scenario, clock)
        p = AllocateParams(n_processes=8, ppn=4)
        [r1] = service.allocate_batch([p])
        g1 = grant_of(r1)
        service.release(ReleaseParams(lease_id=g1["lease_id"]))
        [r2] = service.allocate_batch([p])
        g2 = grant_of(r2)
        assert g2["nodes"] == g1["nodes"]
        assert service.metrics.decisions_memoized == 1
        service.release(ReleaseParams(lease_id=g2["lease_id"]))
        # crush the granted nodes with load and refresh incrementally
        cell.append(drift_loads(cell[-1], g1["nodes"], factor=50.0))
        clock.advance(10.0)
        [r3] = service.allocate_batch([p])
        g3 = grant_of(r3)
        assert source.deltas_applied == 1
        assert service.metrics.decisions_invalidated >= 1
        # no stale replay: the decision was recomputed, not memo-served
        assert service.metrics.decisions_memoized == 1
        assert set(g3["nodes"]) != set(g1["nodes"])

    def test_delta_on_held_nodes_keeps_disjoint_memo_entries(
        self, scenario, clock
    ):
        """Entries whose scope the delta never touches survive it."""
        service, cell, source = incremental_service(scenario, clock)
        big = AllocateParams(n_processes=16, ppn=4)  # pins 4 of 8 nodes
        [rb] = service.allocate_batch([big])
        held_nodes = grant_of(rb)["nodes"]
        small = AllocateParams(n_processes=8, ppn=4)
        [r1] = service.allocate_batch([small])
        g1 = grant_of(r1)
        service.release(ReleaseParams(lease_id=g1["lease_id"]))
        # drift ONLY the held nodes: the memoized small-job decision was
        # scoped to the other four, so its entry must survive the delta
        # (the big job's entry was decided with nothing held — its scope
        # covers every node, so it alone is evicted)
        cell.append(drift_loads(cell[-1], held_nodes, factor=50.0))
        clock.advance(10.0)
        [r2] = service.allocate_batch([small])
        g2 = grant_of(r2)
        assert source.deltas_applied == 1
        assert g2["nodes"] == g1["nodes"]
        assert service.metrics.decisions_memoized == 1
        assert service.metrics.decisions_invalidated == 1

    def test_fresh_serial_clears_memo_wholesale(self, scenario, clock):
        """A non-incremental refresh (new serial) drops every entry."""
        service, cell, source = incremental_service(scenario, clock)
        p = AllocateParams(n_processes=8, ppn=4)
        [r1] = service.allocate_batch([p])
        service.release(ReleaseParams(lease_id=grant_of(r1)["lease_id"]))
        # structural change: a node vanishes → full rebuild, new serial
        gone = sorted(cell[-1].nodes)[-1]
        shrunk = dataclasses.replace(
            cell[-1],
            time=cell[-1].time + 1.0,
            nodes={
                k: v for k, v in cell[-1].nodes.items() if k != gone
            },
            livehosts=tuple(h for h in cell[-1].livehosts if h != gone),
        )
        cell.append(shrunk)
        clock.advance(10.0)
        [r2] = service.allocate_batch([p])
        grant_of(r2)
        assert source.delta_full_rebuilds == 1
        assert service.metrics.decisions_memoized == 0
        assert service.metrics.decisions_invalidated == 1
