"""Transport v2: codec negotiation, framed codecs, and pipelining.

The ``hello`` verb is a *transport* op — answered by the connection
layer in whatever codec the connection currently speaks, with the
upgrade applying only to messages after the response.  These tests run
the real daemon over loopback TCP: negotiation shapes, binary-codec
round-trips, pipelined bursts (including out-of-order completion and
window-overflow BUSY), transparent re-negotiation after reconnect, and
the chaos transport's honest JSON-only hello mirror.
"""

import asyncio
import json

import pytest

from repro.broker import (
    BrokerClient,
    BrokerDaemonThread,
    BrokerError,
    BrokerServer,
    BrokerService,
)
from repro.broker.protocol import CODECS, PROTOCOL_VERSION
from repro.chaos.transport import ScriptedSocketFactory
from repro.monitor.snapshot import CachedSnapshotSource


@pytest.fixture(scope="module")
def daemon(scenario):
    source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
    service = BrokerService(source, default_ttl_s=30.0)
    server = BrokerServer(service, port=0)
    with BrokerDaemonThread(server) as d:
        yield d


@pytest.fixture
def client(daemon):
    with BrokerClient(port=daemon.port, timeout_s=10.0) as c:
        yield c


class TestHelloNegotiation:
    def test_default_hello_shape(self, client):
        result = client.hello()
        assert result["codec"] == "json"
        assert result["pipeline"] is False
        assert result["max_inflight"] == 1
        assert result["protocol_version"] == PROTOCOL_VERSION
        assert "json" in result["codecs"] and "binary" in result["codecs"]

    def test_binary_codec_round_trip(self, client):
        result = client.hello(codec="binary")
        assert result["codec"] == "binary"
        grant = client.allocate(8, ppn=4, ttl_s=20.0)
        assert sum(grant.procs.values()) == 8
        renewed = client.renew(grant.lease_id, ttl_s=40.0)
        assert renewed["ttl_s"] == 40.0
        released = client.release(grant.lease_id)
        assert released["released"] is True
        assert client.status()["protocol_version"] == PROTOCOL_VERSION

    def test_unsupported_codec_rejected_connection_survives(self, client):
        with pytest.raises(BrokerError) as err:
            client.hello(codec="zstd")
        assert err.value.code == "BAD_REQUEST"
        assert "zstd" in err.value.message
        # the hello error did not upgrade anything: same connection,
        # still JSON lines, still serving
        client._negotiate = None  # drop the refused wish before reconnects
        assert client.status()["protocol_version"] == PROTOCOL_VERSION

    def test_msgpack_gated_on_import(self, client):
        if "msgpack" in CODECS:  # pragma: no cover — env-dependent
            result = client.hello(codec="msgpack")
            assert result["codec"] == "msgpack"
            assert client.status()["protocol_version"] == PROTOCOL_VERSION
        else:
            with pytest.raises(BrokerError) as err:
                client.hello(codec="msgpack")
            assert err.value.code == "BAD_REQUEST"

    def test_hello_before_connect_negotiates_on_connect(self, daemon):
        client = BrokerClient(port=daemon.port, timeout_s=10.0)
        try:
            result = client.hello(codec="binary", pipeline=True, max_inflight=4)
            assert result["codec"] == "binary"
            assert result["pipeline"] is True
            assert result["max_inflight"] == 4
        finally:
            client.close()

    def test_window_capped_by_server_queue(self, client):
        # 1024 is the protocol's hard validation cap; the server then
        # grants no more than its own admission-queue depth (128 default)
        result = client.hello(pipeline=True, max_inflight=1024)
        assert result["max_inflight"] == 128
        with pytest.raises(BrokerError) as err:
            client.hello(pipeline=True, max_inflight=100_000)
        assert err.value.code == "BAD_REQUEST"


class TestPipelinedBursts:
    def test_call_many_requires_negotiation(self, client):
        with pytest.raises(BrokerError) as err:
            client.call_many("status", [None])
        assert err.value.code == "BAD_REQUEST"

    def test_status_burst_exceeding_window(self, client):
        client.hello(pipeline=True, max_inflight=8)
        results = client.call_many("status", [None] * 20)
        assert len(results) == 20
        for r in results:
            assert not isinstance(r, BrokerError)
            assert r["protocol_version"] == PROTOCOL_VERSION

    def test_allocate_burst_mixes_grants_and_errors(self, client):
        client.hello(pipeline=True, max_inflight=8)
        results = client.call_many(
            "allocate",
            [{"n": 4, "ppn": 4}, {"n": -1}, {"n": 4, "ppn": 4}],
        )
        good = [r for r in results if not isinstance(r, BrokerError)]
        bad = [r for r in results if isinstance(r, BrokerError)]
        assert len(good) == 2 and len(bad) == 1
        assert isinstance(results[1], BrokerError)
        assert bad[0].code == "BAD_REQUEST"
        granted = {n for r in good for n in r["nodes"]}
        assert len(granted) == sum(len(r["nodes"]) for r in good)  # disjoint
        for r in good:
            client.release(r["lease_id"])

    def test_binary_pipelined_burst(self, client):
        client.hello(codec="binary", pipeline=True, max_inflight=4)
        results = client.call_many("status", [None] * 10)
        assert len(results) == 10
        assert all(not isinstance(r, BrokerError) for r in results)

    def test_empty_burst(self, client):
        client.hello(pipeline=True)
        assert client.call_many("status", []) == []


class TestReconnectRenegotiation:
    def test_reconnect_replays_negotiation(self, client):
        client.hello(codec="binary", pipeline=True, max_inflight=4)
        client.close()  # simulate transport death
        # plain call reconnects; connect() must replay the negotiation
        # before this request goes out, or the codecs would disagree
        assert client.status()["protocol_version"] == PROTOCOL_VERSION
        assert client._codec == "binary"
        results = client.call_many("status", [None] * 3)
        assert all(not isinstance(r, BrokerError) for r in results)


class TestWireLevelPipelining:
    """Raw asyncio conversations pinning server-side semantics."""

    def test_inline_ops_overtake_pending_allocates(self, scenario):
        """Out-of-order by design: status answers while allocate batches."""

        async def run():
            source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
            service = BrokerService(source)
            # a generous straggler window keeps the allocate undecided
            # long enough that ordering is deterministic
            server = BrokerServer(service, port=0, batch_window_s=0.5)
            await server.start(start_sweeper=False)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                hello = {
                    "v": 1, "id": "h", "op": "hello",
                    "params": {"pipeline": True, "max_inflight": 8},
                }
                writer.write((json.dumps(hello) + "\n").encode())
                obj = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                assert obj["ok"] is True
                alloc = {
                    "v": 1, "id": "slow", "op": "allocate",
                    "params": {"n": 4},
                }
                status = {"v": 1, "id": "fast", "op": "status"}
                writer.write(
                    (json.dumps(alloc) + "\n" + json.dumps(status) + "\n").encode()
                )
                first = json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                second = json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                assert first["id"] == "fast"  # overtook the batching allocate
                assert second["id"] == "slow" and second["ok"] is True
                writer.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_window_overflow_answers_busy(self, scenario):
        """The (N+1)-th in-flight allocate is refused, not queued."""

        async def run():
            source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
            service = BrokerService(source)
            server = BrokerServer(service, port=0)
            # batcher paused: pipelined allocates stay in flight forever
            await server.start(start_batcher=False, start_sweeper=False)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                hello = {
                    "v": 1, "id": "h", "op": "hello",
                    "params": {"pipeline": True, "max_inflight": 2},
                }
                writer.write((json.dumps(hello) + "\n").encode())
                obj = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                assert obj["result"]["max_inflight"] == 2
                for rid in ("a1", "a2", "a3"):
                    req = {
                        "v": 1, "id": rid, "op": "allocate",
                        "params": {"n": 4},
                    }
                    writer.write((json.dumps(req) + "\n").encode())
                busy = json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                assert busy["id"] == "a3"
                assert busy["error"]["code"] == "BUSY"
                assert "pipeline window" in busy["error"]["message"]
                assert service.metrics.busy_rejected == 1
                writer.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_binary_frames_on_the_wire(self, scenario):
        """After a binary hello, responses are length-prefixed frames."""
        from repro.broker.protocol import FRAME_HEADER, encode_frame

        async def run():
            source = CachedSnapshotSource(scenario.snapshot, max_age_s=1e9)
            service = BrokerService(source)
            server = BrokerServer(service, port=0, max_queue=4)
            await server.start(start_sweeper=False)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                hello = {
                    "v": 1, "id": "h", "op": "hello",
                    "params": {"codec": "binary"},
                }
                writer.write((json.dumps(hello) + "\n").encode())
                # hello response still travels as a JSON line
                obj = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                assert obj["ok"] is True and obj["result"]["codec"] == "binary"
                # ...but the next exchange is framed in both directions
                frame = encode_frame(
                    {"v": 1, "id": "s1", "op": "status"}, "binary"
                )
                writer.write(frame)
                header = await asyncio.wait_for(
                    reader.readexactly(FRAME_HEADER.size), 5.0
                )
                (length,) = FRAME_HEADER.unpack(header)
                payload = await asyncio.wait_for(reader.readexactly(length), 5.0)
                response = json.loads(payload)
                assert response["id"] == "s1" and response["ok"] is True
                writer.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestChaosTransportMirror:
    def test_chaos_hello_grants_json_only(self, scenario, clock):
        source = CachedSnapshotSource(
            scenario.snapshot, max_age_s=1e9, clock=clock
        )
        service = BrokerService(source, clock=clock)
        factory = ScriptedSocketFactory(service)
        client = BrokerClient(socket_factory=factory, connect_retries=0)
        result = client.hello()
        assert result == {
            "codec": "json",
            "pipeline": False,
            "max_inflight": 1,
            "codecs": ["json"],
            "protocol_version": PROTOCOL_VERSION,
        }
        assert client.status()["protocol_version"] == PROTOCOL_VERSION

    def test_chaos_hello_refuses_upgrades(self, scenario, clock):
        source = CachedSnapshotSource(
            scenario.snapshot, max_age_s=1e9, clock=clock
        )
        service = BrokerService(source, clock=clock)
        client = BrokerClient(
            socket_factory=ScriptedSocketFactory(service), connect_retries=0
        )
        with pytest.raises(BrokerError) as err:
            client.hello(codec="binary")
        assert err.value.code == "BAD_REQUEST"
        with pytest.raises(BrokerError) as err:
            client.hello(pipeline=True)
        assert err.value.code == "BAD_REQUEST"
