"""The ``fleet_plan`` / ``fleet_status`` RPCs — parser to round-trip.

The broker side of the fleet optimizer: one pass replans every live
lease against one snapshot, gates each plan with the per-lease cooldown
bypassed (the global :class:`FleetRateLimiter` takes over), and applies
the accepted batch shrinks-first through the two-phase executor.  A
dry run must be a pure function of the snapshot: no lease moves, no
cooldown or limiter state burned.
"""

from __future__ import annotations

import pytest

from repro.broker import BrokerClient, BrokerService
from repro.broker.protocol import (
    AllocateParams,
    FleetPlanParams,
    FleetStatusParams,
    ProtocolError,
    parse_request,
)
from repro.chaos.transport import ScriptedSocketFactory
from repro.elastic.gate import FleetRateLimiter

from tests.core.conftest import make_snapshot, make_view


def snapshot_of(loads, time=0.0):
    views = {n: make_view(n, load=v) for n, v in loads.items()}
    return make_snapshot(views, time=time)


@pytest.fixture
def world():
    holder = {
        "snap": snapshot_of({f"n{i}": 0.5 if i <= 4 else 6.0
                             for i in range(1, 9)})
    }
    return holder


@pytest.fixture
def service(world, clock):
    return BrokerService(
        lambda: world["snap"], clock=clock, default_ttl_s=3600.0
    )


def allocate(service, n=8, ppn=4):
    result = service.allocate_batch([AllocateParams(n_processes=n, ppn=ppn)])[0]
    assert not isinstance(result, ProtocolError), result
    return result


def make_hot(world, nodes, time):
    """Saturate ``nodes``, idle everything else."""
    hot = set(nodes)
    world["snap"] = snapshot_of(
        {f"n{i}": 10.0 if f"n{i}" in hot else 0.2 for i in range(1, 9)},
        time=time,
    )


def request_line(op, params=None, id="1"):
    import json

    return json.dumps(
        {"v": 1, "id": id, "op": op, "params": params or {}}
    ).encode() + b"\n"


class TestParser:
    def test_fleet_plan_defaults(self):
        req = parse_request(request_line("fleet_plan"))
        assert isinstance(req.params, FleetPlanParams)
        assert req.params.dry_run is False
        assert req.params.max_actions == 8

    def test_fleet_plan_explicit(self):
        req = parse_request(
            request_line("fleet_plan", {"dry_run": True, "max_actions": 3})
        )
        assert req.params == FleetPlanParams(dry_run=True, max_actions=3)

    @pytest.mark.parametrize("params", [
        {"dry_run": "yes"},
        {"max_actions": 0},
        {"max_actions": -1},
        {"max_actions": 10_000},
        {"max_actions": 2.5},
    ])
    def test_fleet_plan_bad_params(self, params):
        with pytest.raises(ProtocolError) as err:
            parse_request(request_line("fleet_plan", params))
        assert err.value.code.value == "BAD_REQUEST"

    def test_fleet_status_parses(self):
        req = parse_request(request_line("fleet_status"))
        assert isinstance(req.params, FleetStatusParams)


class TestServiceFleetPlan:
    def test_dry_run_plans_without_moving(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        result = service.fleet_plan(FleetPlanParams(dry_run=True))
        assert result["dry_run"] is True
        assert result["considered"] == 1
        assert len(result["planned"]) == 1
        assert result["applied"] == 0 and result["failed"] == 0
        assert result["objective_gain"] > 0
        # nothing moved, nothing counted, no limiter slot burned
        lease = service.leases.get(grant["lease_id"])
        assert set(lease.nodes) == set(grant["nodes"])
        assert service.metrics.fleet_passes == 0
        assert service.gate.fleet_limiter.in_window == 0

    def test_executed_pass_moves_the_drifted_lease(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        result = service.fleet_plan(FleetPlanParams())
        assert result["applied"] == 1 and result["failed"] == 0
        assert result["actions"][0]["outcome"] == "committed"
        lease = service.leases.get(grant["lease_id"])
        assert not (set(lease.nodes) & set(grant["nodes"]))
        assert service.metrics.fleet_passes == 1
        assert service.metrics.fleet_actions_applied == 1
        # fleet commits land in the shared reconfigure counters too
        assert service.metrics.reconfigured == 1
        assert service.gate.fleet_limiter.in_window == 1

    def test_settled_fleet_is_a_no_op_pass(self, service, world, clock):
        # a single-node lease on a uniform idle cluster has no better
        # shape: the pass considers it and plans nothing
        world["snap"] = snapshot_of({f"n{i}": 0.5 for i in range(1, 9)})
        allocate(service, n=4, ppn=4)
        result = service.fleet_plan(FleetPlanParams())
        assert result["considered"] == 1
        assert result["planned"] == []
        assert result["applied"] == 0

    def test_max_actions_caps_the_pass(self, world, clock):
        service = BrokerService(
            lambda: world["snap"], clock=clock, default_ttl_s=3600.0
        )
        grants = [allocate(service, n=4, ppn=4) for _ in range(2)]
        make_hot(
            world,
            [n for g in grants for n in g["nodes"]],
            time=100.0,
        )
        clock.advance(100.0)
        result = service.fleet_plan(FleetPlanParams(max_actions=1))
        assert len(result["planned"]) <= 1
        reasons = {s["reason"] for s in result["skipped"]}
        assert "max_actions" in reasons

    def test_rate_limiter_stops_a_saturated_window(self, world, clock):
        service = BrokerService(
            lambda: world["snap"],
            clock=clock,
            default_ttl_s=3600.0,
            fleet_limiter=FleetRateLimiter(max_actions=1, window_s=300.0),
        )
        grants = [allocate(service, n=4, ppn=4) for _ in range(2)]
        make_hot(
            world,
            [n for g in grants for n in g["nodes"]],
            time=100.0,
        )
        clock.advance(100.0)
        result = service.fleet_plan(FleetPlanParams())
        assert result["applied"] == 1
        reasons = {s["reason"] for s in result["skipped"]}
        assert "fleet_rate_limited" in reasons

    def test_pass_plans_do_not_claim_the_same_nodes(self, world, clock):
        service = BrokerService(
            lambda: world["snap"], clock=clock, default_ttl_s=3600.0
        )
        grants = [allocate(service, n=4, ppn=4) for _ in range(2)]
        make_hot(
            world,
            [n for g in grants for n in g["nodes"]],
            time=100.0,
        )
        clock.advance(100.0)
        result = service.fleet_plan(FleetPlanParams(dry_run=True))
        claimed: set[str] = set()
        for action in result["planned"]:
            added = set(action["add_nodes"])
            assert not (added & claimed), "two plans claimed the same node"
            claimed |= added


class TestServiceFleetStatus:
    def test_counters_and_limiter_state(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        service.fleet_plan(FleetPlanParams())
        status = service.fleet_status()
        assert status["passes"] == 1
        assert status["actions_applied"] == 1
        assert status["actions_failed"] == 0
        assert status["rate_limiter"]["in_window"] == 1
        assert status["rate_limiter"]["max_actions"] >= 1
        assert status["gate_counts"]["accepted"] == 1


class TestClientRoundTrip:
    def test_fleet_verbs_over_the_wire(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        factory = ScriptedSocketFactory(service)
        client = BrokerClient(socket_factory=factory)
        with client:
            dry = client.fleet_plan(dry_run=True)
            assert dry["dry_run"] is True and dry["applied"] == 0
            executed = client.fleet_plan()
            assert executed["applied"] == 1
            status = client.fleet_status()
            assert status["passes"] == 1
        assert service.metrics.requests_by_op["fleet_plan"] == 2
        assert service.metrics.requests_by_op["fleet_status"] == 1
