"""Lease lifecycle invariants (satellite: expiry & double-release).

All timing is driven by the injected FakeClock — no real-time sleeps.
"""

import pytest

from repro.scheduler.leases import LeaseError, LeaseTable


@pytest.fixture
def table(clock) -> LeaseTable:
    return LeaseTable(clock=clock, default_ttl_s=30.0, min_ttl_s=1.0,
                      max_ttl_s=120.0)


class TestGrant:
    def test_grant_holds_nodes(self, table):
        lease = table.grant(["a", "b"], {"a": 4, "b": 4})
        assert table.held_nodes() == {"a", "b"}
        assert table.get(lease.lease_id) is lease
        assert lease.expires_at == 30.0 and lease.ttl_s == 30.0

    def test_ttl_clamped(self, table):
        assert table.grant(["a"], {"a": 1}, ttl_s=0.01).ttl_s == 1.0
        assert table.grant(["b"], {"b": 1}, ttl_s=9999).ttl_s == 120.0

    def test_ids_unique_and_monotonic(self, table):
        ids = [table.grant([f"n{i}"], {f"n{i}": 1}).lease_id for i in range(3)]
        assert len(set(ids)) == 3 and ids == sorted(ids)

    def test_double_booking_rejected(self, table):
        table.grant(["a"], {"a": 1})
        with pytest.raises(LeaseError) as err:
            table.grant(["a", "b"], {"a": 1, "b": 1})
        assert err.value.code == "NODE_CONFLICT"
        # the failed grant must not leak a partial hold on "b"
        assert table.held_nodes() == {"a"}


class TestRenew:
    def test_renew_extends_from_now(self, table, clock):
        lease = table.grant(["a"], {"a": 1}, ttl_s=30.0)
        clock.advance(20.0)
        renewed = table.renew(lease.lease_id)
        assert renewed.expires_at == pytest.approx(50.0)
        assert renewed.renewals == 1

    def test_renew_can_change_ttl(self, table, clock):
        lease = table.grant(["a"], {"a": 1}, ttl_s=30.0)
        renewed = table.renew(lease.lease_id, ttl_s=60.0)
        assert renewed.ttl_s == 60.0 and renewed.expires_at == 60.0

    def test_renew_unknown(self, table):
        with pytest.raises(LeaseError) as err:
            table.renew("L99999999")
        assert err.value.code == "UNKNOWN_LEASE"

    def test_renew_after_expire_rejected_and_reclaims(self, table, clock):
        lease = table.grant(["a"], {"a": 1}, ttl_s=10.0)
        clock.advance(10.0)  # expiry is inclusive: now == expires_at
        with pytest.raises(LeaseError) as err:
            table.renew(lease.lease_id)
        assert err.value.code == "EXPIRED_LEASE"
        assert table.held_nodes() == frozenset()
        assert table.sweep() == []  # nodes were returned exactly once


class TestRelease:
    def test_release_frees_nodes(self, table):
        lease = table.grant(["a", "b"], {"a": 1, "b": 1})
        released = table.release(lease.lease_id)
        assert released.nodes == ("a", "b")
        assert table.held_nodes() == frozenset()
        assert len(table) == 0

    def test_double_release_structured_error(self, table):
        lease = table.grant(["a"], {"a": 1})
        table.release(lease.lease_id)
        with pytest.raises(LeaseError) as err:
            table.release(lease.lease_id)
        assert err.value.code == "UNKNOWN_LEASE"

    def test_release_of_expired_reclaims_once(self, table, clock):
        lease = table.grant(["a"], {"a": 1}, ttl_s=5.0)
        clock.advance(6.0)
        with pytest.raises(LeaseError) as err:
            table.release(lease.lease_id)
        assert err.value.code == "EXPIRED_LEASE"
        assert table.held_nodes() == frozenset()
        # already reclaimed: sweep must not see it again
        assert table.sweep() == []
        with pytest.raises(LeaseError) as err:
            table.release(lease.lease_id)
        assert err.value.code == "UNKNOWN_LEASE"


class TestSweep:
    def test_sweep_returns_each_expired_lease_exactly_once(self, table, clock):
        l1 = table.grant(["a"], {"a": 1}, ttl_s=10.0)
        l2 = table.grant(["b"], {"b": 1}, ttl_s=20.0)
        l3 = table.grant(["c"], {"c": 1}, ttl_s=90.0)
        clock.advance(25.0)
        swept = table.sweep()
        assert {l.lease_id for l in swept} == {l1.lease_id, l2.lease_id}
        assert table.held_nodes() == {"c"}
        assert table.sweep() == []  # exactly once
        # the survivor is untouched and still releasable
        assert table.release(l3.lease_id).lease_id == l3.lease_id

    def test_nodes_reusable_after_sweep(self, table, clock):
        table.grant(["a"], {"a": 1}, ttl_s=5.0)
        clock.advance(10.0)
        table.sweep()
        lease = table.grant(["a"], {"a": 1})  # no double-booking error
        assert table.held_nodes() == {"a"}
        assert lease.renewals == 0

    def test_sweep_noop_when_nothing_expired(self, table, clock):
        table.grant(["a"], {"a": 1}, ttl_s=50.0)
        clock.advance(10.0)
        assert table.sweep() == []
        assert table.held_nodes() == {"a"}


class TestSwap:
    """Atomic node-set swaps (elastic expand/shrink/migrate building block).

    The all-or-nothing contract: a rejected swap — for *any* reason,
    including a partial conflict — leaves the table byte-identical.
    """

    def _snapshot(self, table):
        """Observable table state, for exact before/after comparison."""
        return (
            {l.lease_id: (l.nodes, dict(l.procs), l.expires_at, l.reconfigs)
             for l in table.active()},
            table.held_nodes(),
        )

    def test_migrate_swaps_nodes_and_counts_reconfig(self, table):
        lease = table.grant(["a", "b"], {"a": 4, "b": 4})
        swapped = table.swap(lease.lease_id, ["c"], ["b"])
        assert set(swapped.nodes) == {"a", "c"}
        assert swapped.reconfigs == 1
        assert table.held_nodes() == {"a", "c"}

    def test_swap_does_not_touch_ttl(self, table, clock):
        lease = table.grant(["a"], {"a": 4}, ttl_s=30.0)
        clock.advance(20.0)
        swapped = table.swap(lease.lease_id, ["b"], [])
        assert swapped.expires_at == 30.0  # rebalance is not a keep-alive
        clock.advance(10.0)  # now == expires_at: dead despite the swap
        with pytest.raises(LeaseError) as err:
            table.swap(lease.lease_id, ["c"], [])
        assert err.value.code == "EXPIRED_LEASE"
        assert table.held_nodes() == frozenset()

    def test_partial_conflict_rejects_whole_swap(self, table, clock):
        """One conflicting node among many poisons the entire swap."""
        victim = table.grant(["a", "b"], {"a": 4, "b": 4})
        other = table.grant(["c"], {"c": 4})
        clock.advance(5.0)
        before = self._snapshot(table)
        with pytest.raises(LeaseError) as err:
            # "d" is free, "c" is other's: all-or-nothing must roll back
            table.swap(victim.lease_id, ["d", "c"], ["b"])
        assert err.value.code == "NODE_CONFLICT"
        assert self._snapshot(table) == before
        assert table.get(victim.lease_id).nodes == ("a", "b")
        assert table.get(victim.lease_id).reconfigs == 0
        # the free node of the failed swap was not leaked into the table
        assert "d" not in table.held_nodes()
        # and both leases still operate normally afterwards
        assert table.swap(other.lease_id, ["d"], []).nodes == ("c", "d")

    def test_bad_procs_map_rolls_back(self, table):
        lease = table.grant(["a", "b"], {"a": 4, "b": 4})
        before = self._snapshot(table)
        with pytest.raises(LeaseError) as err:
            table.swap(lease.lease_id, ["c"], ["b"], procs={"a": 4})
        assert err.value.code == "BAD_SWAP"
        assert self._snapshot(table) == before

    @pytest.mark.parametrize("add,drop", [
        (["b"], ["b"]),    # overlapping add/drop
        ([], ["z"]),       # dropping a node the lease does not hold
        (["a"], []),       # adding a node it already holds
        ([], ["a"]),       # would leave the lease empty
    ])
    def test_structural_rejections(self, table, add, drop):
        lease = table.grant(["a"], {"a": 4})
        before = self._snapshot(table)
        with pytest.raises(LeaseError) as err:
            table.swap(lease.lease_id, add, drop)
        assert err.value.code == "BAD_SWAP"
        assert self._snapshot(table) == before

    def test_unknown_lease(self, table):
        with pytest.raises(LeaseError) as err:
            table.swap("L99999999", ["a"], [])
        assert err.value.code == "UNKNOWN_LEASE"

    def test_expired_lease_is_reclaimed_by_swap(self, table, clock):
        lease = table.grant(["a"], {"a": 1}, ttl_s=10.0)
        clock.advance(15.0)
        with pytest.raises(LeaseError) as err:
            table.swap(lease.lease_id, ["b"], [])
        assert err.value.code == "EXPIRED_LEASE"
        assert table.held_nodes() == frozenset()
        assert table.sweep() == []  # reclaimed exactly once

    def test_default_procs_fill_mean(self, table):
        lease = table.grant(["a", "b"], {"a": 6, "b": 2})
        swapped = table.swap(lease.lease_id, ["c"], [])
        assert swapped.procs == {"a": 6, "b": 2, "c": 4}

    def test_explicit_procs_replace_map(self, table):
        lease = table.grant(["a", "b"], {"a": 4, "b": 4})
        swapped = table.swap(
            lease.lease_id, ["c"], ["a", "b"], procs={"c": 8}
        )
        assert swapped.nodes == ("c",)
        assert swapped.procs == {"c": 8}
        assert table.held_nodes() == {"c"}


class TestValidation:
    def test_bad_ttl_ordering_rejected(self, clock):
        with pytest.raises(ValueError):
            LeaseTable(clock=clock, default_ttl_s=10.0, min_ttl_s=20.0)
        with pytest.raises(ValueError):
            LeaseTable(clock=clock, default_ttl_s=10.0, max_ttl_s=5.0)
