"""The ``reconfigure`` RPC — service level and full TCP round-trips.

Also locks in the protocol-hygiene counters (``malformed_lines`` /
``oversized_requests``) the daemon reports through ``status``.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.broker import (
    BrokerClient,
    BrokerDaemonThread,
    BrokerError,
    BrokerServer,
    BrokerService,
)
from repro.broker.protocol import (
    MAX_LINE_BYTES,
    AllocateParams,
    ProtocolError,
    ReconfigureParams,
)

from tests.core.conftest import make_snapshot, make_view


def snapshot_of(loads, time=0.0):
    views = {n: make_view(n, load=v) for n, v in loads.items()}
    return make_snapshot(views, time=time)


@pytest.fixture
def world():
    """A mutable snapshot holder: tests flip loads between calls."""
    holder = {
        "snap": snapshot_of({f"n{i}": 0.5 if i <= 4 else 6.0
                             for i in range(1, 9)})
    }
    return holder


@pytest.fixture
def service(world, clock):
    return BrokerService(
        lambda: world["snap"], clock=clock, default_ttl_s=3600.0
    )


def allocate(service, n=8, ppn=4):
    result = service.allocate_batch([AllocateParams(n_processes=n, ppn=ppn)])[0]
    assert not isinstance(result, ProtocolError), result
    return result


def make_hot(world, nodes, time):
    """Saturate ``nodes``, idle everything else."""
    hot = set(nodes)
    world["snap"] = snapshot_of(
        {f"n{i}": 10.0 if f"n{i}" in hot else 0.2 for i in range(1, 9)},
        time=time,
    )


class TestServiceReconfigure:
    def test_drifted_lease_moves(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        result = service.reconfigure(
            ReconfigureParams(lease_id=grant["lease_id"], remaining_s=36000.0)
        )
        assert result["reconfigured"] is True
        assert result["kind"] in ("migrate", "shrink", "expand", "rebalance")
        assert not (set(result["nodes"]) & set(grant["nodes"]))
        assert result["predicted_gain"] > 0
        assert result["benefit_s"] > result["cost_s"]
        assert result["reconfigs"] == 1
        assert result["hostfile"]
        # the lease table followed the plan
        lease = service.leases.get(grant["lease_id"])
        assert set(lease.nodes) == set(result["nodes"])
        assert service.leases.held_nodes() == set(result["nodes"])

    def test_already_best_stays_put(self, service, world, clock):
        """A job packed onto the single idle node has nowhere better."""
        world["snap"] = snapshot_of(
            {f"n{i}": 0.2 if i == 1 else 10.0 for i in range(1, 9)}
        )
        grant = allocate(service, n=8, ppn=8)
        assert grant["nodes"] == ["n1"]
        result = service.reconfigure(
            ReconfigureParams(lease_id=grant["lease_id"], remaining_s=36000.0)
        )
        assert result["reconfigured"] is False
        assert result["reason"]
        lease = service.leases.get(grant["lease_id"])
        assert set(lease.nodes) == {"n1"}

    def test_short_remaining_runtime_is_gated(self, service, world, clock):
        grant = allocate(service)
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        result = service.reconfigure(
            ReconfigureParams(lease_id=grant["lease_id"], remaining_s=30.0)
        )
        assert result["reconfigured"] is False
        assert result["reason"] == "job_nearly_done"

    def test_unknown_lease(self, service):
        with pytest.raises(ProtocolError) as err:
            service.reconfigure(ReconfigureParams(lease_id="L404"))
        assert err.value.code.value == "UNKNOWN_LEASE"

    def test_expired_lease(self, service, world, clock):
        grant = allocate(service)
        clock.advance(7200.0)  # past the 3600s TTL
        with pytest.raises(ProtocolError) as err:
            service.reconfigure(
                ReconfigureParams(lease_id=grant["lease_id"])
            )
        assert err.value.code.value == "EXPIRED_LEASE"
        assert service.leases.held_nodes() == frozenset()

    def test_metrics_count_both_outcomes(self, service, world, clock):
        grant = allocate(service)
        service.reconfigure(  # stay-put
            ReconfigureParams(lease_id=grant["lease_id"], remaining_s=36000.0)
        )
        make_hot(world, grant["nodes"], time=100.0)
        clock.advance(100.0)
        service.reconfigure(  # move
            ReconfigureParams(lease_id=grant["lease_id"], remaining_s=36000.0)
        )
        m = service.status()["metrics"]
        assert m["reconfigured"] == 1
        assert m["reconfig_rejected"] == 1


class TestTCPRoundTrip:
    @pytest.fixture
    def daemon(self, world):
        service = BrokerService(lambda: world["snap"], default_ttl_s=3600.0)
        server = BrokerServer(service, port=0)
        with BrokerDaemonThread(server) as d:
            yield d

    def test_allocate_then_reconfigure(self, daemon, world):
        with BrokerClient(port=daemon.port) as client:
            grant = client.allocate(8, ppn=4, ttl_s=3600.0)
            make_hot(world, grant.nodes, time=100.0)
            result = client.reconfigure(
                grant.lease_id, remaining_s=36000.0
            )
            assert result["reconfigured"] is True
            assert result["hostfile"]
            assert not (set(result["nodes"]) & set(grant.nodes))
            # released and re-allocatable: the dropped nodes are free
            status = client.status()
            assert status["metrics"]["reconfigured"] == 1

    def test_reconfigure_unknown_lease_error_code(self, daemon):
        with BrokerClient(port=daemon.port) as client:
            with pytest.raises(BrokerError) as err:
                client.reconfigure("L404")
            assert err.value.code == "UNKNOWN_LEASE"


class TestProtocolHygieneCounters:
    @pytest.fixture
    def daemon(self, world):
        service = BrokerService(lambda: world["snap"], default_ttl_s=3600.0)
        server = BrokerServer(service, port=0)
        with BrokerDaemonThread(server) as d:
            yield d

    def _send_raw(self, port: int, payload: bytes) -> dict:
        with socket.create_connection(("127.0.0.1", port), timeout=10.0) as s:
            s.sendall(payload)
            f = s.makefile("rb")
            return json.loads(f.readline())

    def test_garbage_counts_as_malformed(self, daemon):
        reply = self._send_raw(daemon.port, b"this is not json\n")
        assert reply["ok"] is False
        assert reply["error"]["code"] == "BAD_REQUEST"
        m = BrokerClient(port=daemon.port).status()["metrics"]
        assert m["malformed_lines"] == 1
        assert m["oversized_requests"] == 0
        assert m["protocol_errors"] >= 1

    def test_oversized_line_counted_separately(self, daemon):
        big = json.dumps({
            "v": 1, "id": "x", "op": "status",
            "pad": "y" * (MAX_LINE_BYTES + 1024),
        }).encode() + b"\n"
        reply = self._send_raw(daemon.port, big)
        assert reply["ok"] is False
        m = BrokerClient(port=daemon.port).status()["metrics"]
        assert m["oversized_requests"] == 1
        assert m["malformed_lines"] == 0

    def test_valid_json_bad_schema_is_neither(self, daemon):
        """A parseable object with bad fields is a plain protocol error."""
        reply = self._send_raw(
            daemon.port, b'{"v": 1, "id": "x", "op": "frobnicate"}\n'
        )
        assert reply["ok"] is False
        m = BrokerClient(port=daemon.port).status()["metrics"]
        assert m["protocol_errors"] == 1
        assert m["malformed_lines"] == 0
        assert m["oversized_requests"] == 0
