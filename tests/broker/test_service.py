"""BrokerService decisions: batching, exclusion, memoization, expiry.

Timing is injected (FakeClock) — deterministic, no real-time sleeps.
"""

import pytest

from repro.broker.protocol import (
    AllocateParams,
    ErrorCode,
    ProtocolError,
    ReleaseParams,
    RenewParams,
)
from repro.broker.service import BrokerService
from repro.monitor.snapshot import CachedSnapshotSource


def make_service(scenario, clock, **kwargs) -> BrokerService:
    """Service over a cached source so one 'freshness window' covers the
    whole test — decisions share one snapshot object, as in the daemon."""
    kwargs.setdefault("default_ttl_s", 30.0)
    source = CachedSnapshotSource(
        scenario.snapshot, max_age_s=1e9, clock=clock
    )
    return BrokerService(source, clock=clock, **kwargs)


def grant_of(result):
    assert not isinstance(result, ProtocolError), result
    return result


class TestAllocateBatch:
    def test_batch_grants_disjoint_nodes(self, scenario, clock):
        service = make_service(scenario, clock)
        p = AllocateParams(n_processes=8, ppn=4)
        r1, r2 = service.allocate_batch([p, p])
        g1, g2 = grant_of(r1), grant_of(r2)
        assert g1["lease_id"] != g2["lease_id"]
        assert not set(g1["nodes"]) & set(g2["nodes"])
        assert len(service.leases) == 2
        assert service.metrics.batch_size_hist[2] == 1
        assert service.metrics.granted == 2

    def test_no_capacity_is_structured(self, scenario, clock):
        service = make_service(scenario, clock)
        p = AllocateParams(n_processes=16, ppn=4)  # 4 of the 8 nodes each
        results = service.allocate_batch([p, p, p])
        assert not isinstance(results[0], ProtocolError)
        assert not isinstance(results[1], ProtocolError)
        assert isinstance(results[2], ProtocolError)
        assert results[2].code == ErrorCode.NO_CAPACITY
        assert service.metrics.denied == 1

    def test_unknown_policy_rejected(self, scenario, clock):
        service = make_service(scenario, clock)
        [result] = service.allocate_batch(
            [AllocateParams(n_processes=4, policy="first_fit")]
        )
        assert isinstance(result, ProtocolError)
        assert result.code == ErrorCode.BAD_REQUEST

    def test_empty_batch(self, scenario, clock):
        service = make_service(scenario, clock)
        assert service.allocate_batch([]) == []
        assert service.metrics.batches == 0

    def test_hostfile_in_grant(self, scenario, clock):
        service = make_service(scenario, clock)
        [result] = service.allocate_batch([AllocateParams(n_processes=8, ppn=4)])
        grant = grant_of(result)
        lines = grant["hostfile"].strip().splitlines()
        assert len(lines) == len(grant["nodes"])
        assert sum(int(l.split(":")[1]) for l in lines) == 8


class TestDecisionMemo:
    def test_identical_request_memoized_after_release(self, scenario, clock):
        service = make_service(scenario, clock)
        p = AllocateParams(n_processes=8, ppn=4)
        [r1] = service.allocate_batch([p])
        g1 = grant_of(r1)
        service.release(ReleaseParams(lease_id=g1["lease_id"]))
        [r2] = service.allocate_batch([p])
        g2 = grant_of(r2)
        assert g2["nodes"] == g1["nodes"]
        assert service.metrics.decisions_memoized == 1

    def test_random_policy_not_memoized(self, scenario, clock):
        service = make_service(scenario, clock, rng=scenario.streams.child("t"))
        p = AllocateParams(n_processes=8, ppn=4, policy="random")
        [r1] = service.allocate_batch([p])
        service.release(ReleaseParams(lease_id=grant_of(r1)["lease_id"]))
        service.allocate_batch([p])
        assert service.metrics.decisions_memoized == 0

    def test_memo_disabled(self, scenario, clock):
        service = make_service(scenario, clock, memoize_decisions=False)
        p = AllocateParams(n_processes=8, ppn=4)
        [r1] = service.allocate_batch([p])
        service.release(ReleaseParams(lease_id=grant_of(r1)["lease_id"]))
        service.allocate_batch([p])
        assert service.metrics.decisions_memoized == 0

    def test_denial_memoized_too(self, scenario, clock):
        service = make_service(scenario, clock)
        fill = AllocateParams(n_processes=32, ppn=4)  # hold all 8 nodes
        assert not isinstance(service.allocate_batch([fill])[0], ProtocolError)
        p = AllocateParams(n_processes=4)
        [r1] = service.allocate_batch([p])
        [r2] = service.allocate_batch([p])
        assert isinstance(r1, ProtocolError) and isinstance(r2, ProtocolError)
        assert r1.code == r2.code == ErrorCode.NO_CAPACITY
        assert service.metrics.decisions_memoized == 1


class TestLeaseLifecycleViaService:
    def test_renew_then_expire_then_sweep(self, scenario, clock):
        service = make_service(scenario, clock)
        [r] = service.allocate_batch([AllocateParams(n_processes=4, ttl_s=10.0)])
        lease_id = grant_of(r)["lease_id"]
        clock.advance(8.0)
        renewed = service.renew(RenewParams(lease_id=lease_id))
        assert renewed["expires_at"] == pytest.approx(18.0)
        clock.advance(30.0)
        reclaimed = service.sweep_expired()
        assert [l.lease_id for l in reclaimed] == [lease_id]
        assert service.metrics.expired == 1
        # once reclaimed, release is a structured UNKNOWN_LEASE
        with pytest.raises(ProtocolError) as err:
            service.release(ReleaseParams(lease_id=lease_id))
        assert err.value.code == ErrorCode.UNKNOWN_LEASE

    def test_expired_nodes_allocatable_again(self, scenario, clock):
        service = make_service(scenario, clock)
        p = AllocateParams(n_processes=16, ppn=4, ttl_s=10.0)
        g1 = grant_of(service.allocate_batch([p])[0])
        g2 = grant_of(service.allocate_batch([p])[0])
        assert isinstance(service.allocate_batch([p])[0], ProtocolError)
        clock.advance(20.0)
        assert len(service.sweep_expired()) == 2
        g3 = grant_of(service.allocate_batch([p])[0])
        assert set(g3["nodes"]) <= set(g1["nodes"]) | set(g2["nodes"])

    def test_renew_after_expire_via_service(self, scenario, clock):
        service = make_service(scenario, clock)
        [r] = service.allocate_batch([AllocateParams(n_processes=4, ttl_s=5.0)])
        clock.advance(10.0)
        with pytest.raises(ProtocolError) as err:
            service.renew(RenewParams(lease_id=grant_of(r)["lease_id"]))
        assert err.value.code == ErrorCode.EXPIRED_LEASE
        assert service.metrics.expired == 1


class TestStatus:
    def test_status_shape(self, scenario, clock):
        service = make_service(scenario, clock)
        service.allocate_batch([AllocateParams(n_processes=4)])
        clock.advance(3.0)
        status = service.status()
        assert status["protocol_version"] == 1
        assert status["uptime_s"] == pytest.approx(3.0)
        assert status["leases"]["active"] == 1
        assert status["leases"]["nodes_held"] >= 1
        m = status["metrics"]
        assert m["granted"] == 1 and m["batches"] == 1
        assert set(m["decision_latency_ms"]) == {"p50", "p99", "max"}

    def test_status_reports_snapshot_health(self, scenario, clock):
        source = CachedSnapshotSource(
            scenario.snapshot, max_age_s=100.0, clock=clock
        )
        service = BrokerService(source, clock=clock)
        service.allocate_batch([AllocateParams(n_processes=4)])
        status = service.status()
        assert status["snapshot"]["refreshes"] == 1
        assert status["snapshot"]["max_age_s"] == 100.0


class TestCachedSnapshotSource:
    def test_reuses_within_max_age(self, scenario, clock):
        calls = []

        def source():
            calls.append(clock())
            return scenario.snapshot()

        cached = CachedSnapshotSource(source, max_age_s=10.0, clock=clock)
        s1 = cached()
        clock.advance(5.0)
        s2 = cached()
        assert s1 is s2 and len(calls) == 1
        assert cached.hits == 1

    def test_refreshes_when_stale(self, scenario, clock):
        hooks = []
        cached = CachedSnapshotSource(
            scenario.snapshot,
            max_age_s=10.0,
            clock=clock,
            refresh_hook=lambda: hooks.append(clock()),
        )
        cached()
        clock.advance(11.0)
        cached()
        assert cached.refreshes == 2 and len(hooks) == 2

    def test_invalidate_forces_rebuild(self, scenario, clock):
        cached = CachedSnapshotSource(
            scenario.snapshot, max_age_s=1e9, clock=clock
        )
        cached()
        cached.invalidate()
        cached()
        assert cached.refreshes == 2

    def test_age_reporting(self, scenario, clock):
        cached = CachedSnapshotSource(
            scenario.snapshot, max_age_s=100.0, clock=clock
        )
        assert cached.age_s() == float("inf")
        cached()
        clock.advance(7.0)
        assert cached.age_s() == pytest.approx(7.0)

    def test_shared_snapshot_shares_derived_cache(self, scenario, clock):
        """The whole point: one refresh window == one LoadState memo."""
        from repro.core.arrays import load_state
        from repro.monitor.snapshot import derived_cache

        cached = CachedSnapshotSource(
            scenario.snapshot, max_age_s=100.0, clock=clock
        )
        s1, s2 = cached(), cached()
        state1 = load_state(s1, nodes=list(s1.nodes), ppn=4)
        state2 = load_state(s2, nodes=list(s2.nodes), ppn=4)
        assert state1 is state2
        assert any(
            k[0] == "load_state" for k in derived_cache(s1)
        )
