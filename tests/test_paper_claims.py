"""Fast, seed-pinned checks of the paper's headline sentences.

Each test names the paper claim it pins. They run at reduced scale so
the whole file stays under a couple of minutes; the full-scale versions
live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import AllocationRequest
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.runner import compare_policies
from repro.experiments.scenario import paper_scenario


@pytest.fixture(scope="module")
def runs():
    """Three §5-style comparison rounds on the paper cluster."""
    sc = paper_scenario(seed=77, warmup_s=3600.0)
    request = AllocationRequest(
        n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF
    )
    rounds = []
    for _ in range(3):
        rounds.append(
            compare_policies(
                sc,
                MiniMD(16, MiniMDConfig(timesteps=500)),
                request,
                rng=sc.streams.child("claims"),
            )
        )
        sc.advance(1200.0)
    return rounds


def mean_time(rounds, policy):
    return float(np.mean([r.runs[policy].time_s for r in rounds]))


class TestAbstractClaims:
    def test_reduces_execution_times_vs_default_allocation(self, runs):
        """Abstract: 'reduce execution times ... as compared to the
        default allocation' (random/sequential stand in for defaults)."""
        ours = mean_time(runs, "network_load_aware")
        assert ours < mean_time(runs, "random")
        assert ours < mean_time(runs, "sequential")

    def test_improvement_over_all_three_baselines(self, runs):
        """§1: '32-49% improvement over random, sequential and load-aware'
        — at smoke scale we require a clear win over each."""
        ours = mean_time(runs, "network_load_aware")
        for baseline in ("random", "sequential", "load_aware"):
            assert ours < mean_time(runs, baseline), baseline


class TestSection5Claims:
    def test_good_set_definition_holds(self, runs):
        """§1: a good set has 'low CPU load ... high network bandwidth'.

        The winning group's allocation-time load must not exceed
        random's, pinned per round.
        """
        for r in runs:
            ours = r.runs["network_load_aware"].mean_load_per_core
            rnd = r.runs["random"].mean_load_per_core
            assert ours <= rnd + 1e-9

    def test_stable_set_of_nodes(self, runs):
        """§5.1: the algorithm 'was indeed able to select a stable set of
        nodes' — repeat times vary less than random's."""
        ours = [r.runs["network_load_aware"].time_s for r in runs]
        rnd = [r.runs["random"].time_s for r in runs]
        cov = lambda xs: np.std(xs) / np.mean(xs)  # noqa: E731
        assert cov(ours) <= cov(rnd)
