"""CLI and engine semantics: exit codes, JSON, GEN001, the meta-gate.

The meta-tests at the bottom are the acceptance criterion in executable
form: the real repository lints clean against its committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import lint_project
from repro.analysis.source import Project
from repro.cli import main as repro_main

from tests.analysis.conftest import write_tree

REPO_ROOT = Path(__file__).resolve().parents[2]

_VIOLATION = {
    "src/repro/des/engine.py": """
        import time

        def stamp():
            return time.time()
    """,
}

_CLEAN = {
    "src/repro/des/engine.py": """
        def stamp(clock):
            return clock()
    """,
}


class TestExitCodes:
    def test_clean_corpus_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        rc = lint_main(["--root", str(tmp_path), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "hint:" in out

    def test_unknown_rule_family_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--rules", "NOPE"])
        assert rc == 2

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN)
        (tmp_path / "lint-baseline.json").write_text('{"version": 99}')
        rc = lint_main(["--root", str(tmp_path)])
        assert rc == 2

    def test_rules_filter_scopes_families(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        # The violation is DET; restricting to ERR hides it.
        assert lint_main(
            ["--root", str(tmp_path), "--no-baseline", "--rules", "ERR"]
        ) == 0
        assert lint_main(
            ["--root", str(tmp_path), "--no-baseline", "--rules", "DET,ERR"]
        ) == 1


class TestBaselineWorkflow:
    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        assert lint_main(["--root", str(tmp_path)]) == 1  # gate fails
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        assert lint_main(["--root", str(tmp_path)]) == 0  # grandfathered

    def test_new_violation_still_fails_after_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        lint_main(["--root", str(tmp_path), "--write-baseline"])
        write_tree(tmp_path, {
            "src/repro/des/other.py": """
                import time

                def stamp2():
                    return time.time()
            """,
        })
        rc = lint_main(["--root", str(tmp_path)])
        assert rc == 1

    def test_fixed_violation_reports_stale_entry(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        lint_main(["--root", str(tmp_path), "--write-baseline"])
        write_tree(tmp_path, _CLEAN)  # overwrite: violation gone
        rc = lint_main(["--root", str(tmp_path)])
        assert rc == 0  # fixing debt never fails the gate
        assert "stale baseline" in capsys.readouterr().err


class TestOutputs:
    def test_json_report_shape(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        rc = lint_main(["--root", str(tmp_path), "--no-baseline", "--json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        (finding,) = report["new"]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("engine.py")
        assert finding["context"] == "stamp"

    def test_jsonl_emits_one_object_per_finding(self, tmp_path, capsys):
        write_tree(tmp_path, _VIOLATION)
        rc = lint_main(["--root", str(tmp_path), "--no-baseline", "--jsonl"])
        assert rc == 1
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 1
        assert records[0]["rule"] == "DET001"
        assert records[0]["path"].endswith("engine.py")

    def test_jsonl_clean_run_emits_nothing(self, tmp_path, capsys):
        write_tree(
            tmp_path, {"src/repro/des/fine.py": "x = 1\n"}
        )
        rc = lint_main(["--root", str(tmp_path), "--no-baseline", "--jsonl"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == ""

    def test_list_rules_covers_all_families(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "DET001", "ASY001", "ERR001", "PRO001", "GEN001", "RACE001",
        ):
            assert rule in out

    def test_syntax_error_becomes_gen001(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/des/broken.py": "def oops(:\n",
            **_VIOLATION,
        })
        project = Project.load(tmp_path, [tmp_path / "src"])
        findings = lint_project(project)
        rules = [f.rule for f in findings]
        # the broken file reports GEN001; the parseable one still lints
        assert "GEN001" in rules
        assert "DET001" in rules


class TestReproCliDispatch:
    def test_lint_verb_forwards_leading_options(self, tmp_path, capsys):
        # `repro lint --no-baseline ...` — leading options after the verb
        # must reach the lint parser (argparse.REMAINDER would not).
        write_tree(tmp_path, _VIOLATION)
        rc = repro_main(
            ["lint", "--no-baseline", "--root", str(tmp_path)]
        )
        assert rc == 1

    def test_lint_listed_in_help(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "lint" in capsys.readouterr().out


class TestMetaGate:
    """The repository itself must pass its own gate."""

    def test_repo_lints_clean_against_committed_baseline(self, capsys):
        rc = lint_main(["--root", str(REPO_ROOT)])
        assert rc == 0, capsys.readouterr().out

    def test_committed_baseline_is_loadable_and_versioned(self):
        path = REPO_ROOT / "lint-baseline.json"
        assert path.exists(), "lint-baseline.json must be committed"
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert isinstance(data["findings"], dict)
