"""Baseline round-trip: grandfathering, overflow, staleness, validation."""

from __future__ import annotations

import json

import pytest

from repro.analysis import baseline
from repro.analysis.findings import Finding


def make_finding(line=10, rule="ERR002", context="Daemon.loop", path="src/repro/x.py"):
    return Finding(
        path=path,
        line=line,
        col=4,
        rule=rule,
        severity="error",
        message="broad except",
        context=context,
    )


class TestFingerprint:
    def test_position_independent(self):
        # Same site after unrelated edits above it: line moved, identity
        # unchanged — the baseline must not churn.
        a = make_finding(line=10)
        b = make_finding(line=57)
        assert baseline.fingerprint(a) == baseline.fingerprint(b)

    def test_distinguishes_rule_path_and_context(self):
        base = baseline.fingerprint(make_finding())
        assert baseline.fingerprint(make_finding(rule="ERR001")) != base
        assert baseline.fingerprint(make_finding(path="src/repro/y.py")) != base
        assert baseline.fingerprint(make_finding(context="Daemon.stop")) != base


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        findings = [make_finding(), make_finding(line=20), make_finding(rule="DET003")]
        baseline.write(path, findings)
        loaded = baseline.load(path)
        assert loaded == {
            "ERR002|src/repro/x.py|Daemon.loop": 2,
            "DET003|src/repro/x.py|Daemon.loop": 1,
        }

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert baseline.load(tmp_path / "absent.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            baseline.load(path)

    def test_malformed_counts_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": {"a|b|c": 0}}))
        with pytest.raises(ValueError, match="counts"):
            baseline.load(path)


class TestApply:
    def test_grandfathered_finding_is_not_new(self):
        f = make_finding()
        report = baseline.apply([f], {baseline.fingerprint(f): 1})
        assert report.clean
        assert report.baselined == [f]
        assert report.new == []

    def test_overflow_beyond_tolerated_count_is_new(self):
        # A second violation of an already-baselined kind in the same
        # function exceeds the count and fails the gate.
        a, b = make_finding(line=10), make_finding(line=20)
        report = baseline.apply([a, b], {baseline.fingerprint(a): 1})
        assert not report.clean
        assert len(report.baselined) == 1
        assert len(report.new) == 1

    def test_fixed_violation_goes_stale_not_failing(self):
        fp = baseline.fingerprint(make_finding())
        report = baseline.apply([], {fp: 1})
        assert report.clean  # fixing debt never breaks the build
        assert report.stale_baseline == [fp]

    def test_unrelated_finding_is_new(self):
        f = make_finding()
        other = make_finding(rule="DET001")
        report = baseline.apply([other], {baseline.fingerprint(f): 1})
        assert report.new == [other]
