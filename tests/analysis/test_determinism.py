"""DET rules: ambient clocks and seedless RNGs in replayable code."""

from __future__ import annotations

from tests.analysis.conftest import rules_of


class TestClockRules:
    def test_time_time_call_in_des_flagged(self, lint):
        findings = lint({
            "src/repro/des/engine.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert rules_of(findings) == ["DET001"]
        assert "time.time" in findings[0].message
        assert findings[0].context == "stamp"

    def test_clock_reference_is_injection_not_violation(self, lint):
        # `clock: Callable = time.monotonic` is exactly how clocks get
        # injected — only *calls* are ambient reads.
        findings = lint({
            "src/repro/scheduler/leases.py": """
                import time

                def make_table(clock=time.monotonic):
                    return clock
            """,
        })
        assert findings == []

    def test_import_alias_resolved(self, lint):
        findings = lint({
            "src/repro/chaos/faults.py": """
                import time as _t

                def now():
                    return _t.monotonic()
            """,
        })
        assert rules_of(findings) == ["DET001"]

    def test_from_import_resolved(self, lint):
        findings = lint({
            "src/repro/simmpi/job.py": """
                from time import perf_counter

                def tick():
                    return perf_counter()
            """,
        })
        assert rules_of(findings) == ["DET001"]

    def test_clock_call_outside_replayable_packages_allowed(self, lint):
        # The experiments layer may time real executions.
        findings = lint({
            "src/repro/experiments/timing.py": """
                import time

                def wall():
                    return time.time()
            """,
        })
        assert findings == []

    def test_datetime_now_flagged(self, lint):
        findings = lint({
            "src/repro/elastic/logbook.py": """
                from datetime import datetime

                def stamp():
                    return datetime.now()
            """,
        })
        assert rules_of(findings) == ["DET002"]

    def test_pragma_with_rationale_suppresses(self, lint):
        findings = lint({
            "src/repro/des/engine.py": """
                import time

                def stamp():
                    return time.time()  # lint: allow(DET001) — report header stamps real walltime
            """,
        })
        assert findings == []

    def test_pragma_without_rationale_does_not_suppress(self, lint):
        findings = lint({
            "src/repro/des/engine.py": """
                import time

                def stamp():
                    return time.time()  # lint: allow(DET001)
            """,
        })
        assert rules_of(findings) == ["DET001"]


class TestSeedlessRng:
    def test_prefix_broker_client_pattern_flagged(self, lint):
        # The literal pre-fix pattern from broker/client.py: retry jitter
        # drawn from an unseeded generator never replays.
        findings = lint({
            "src/repro/broker/client.py": """
                import random

                class BrokerClient:
                    def __init__(self, rng=None):
                        self._rng = rng if rng is not None else random.Random()
            """,
        })
        assert rules_of(findings) == ["DET003"]
        assert "random.Random" in findings[0].message
        assert findings[0].context == "BrokerClient.__init__"

    def test_seeded_random_ok(self, lint):
        findings = lint({
            "src/repro/broker/client.py": """
                import random

                def make(seed):
                    return random.Random(seed)
            """,
        })
        assert findings == []

    def test_seedless_default_rng_flagged_even_outside_replayable(self, lint):
        # DET003 is package-wide: hidden entropy is a bug anywhere.
        findings = lint({
            "src/repro/experiments/sampling.py": """
                import numpy

                def make():
                    return numpy.random.default_rng()
            """,
        })
        assert rules_of(findings) == ["DET003"]

    def test_default_rng_with_seed_kwarg_ok(self, lint):
        findings = lint({
            "src/repro/experiments/sampling.py": """
                import numpy

                def make(s):
                    return numpy.random.default_rng(seed=s)
            """,
        })
        assert findings == []


class TestModuleLevelRandom:
    def test_module_random_draw_in_chaos_flagged(self, lint):
        findings = lint({
            "src/repro/chaos/faults.py": """
                import random

                def pick(items):
                    return random.choice(items)
            """,
        })
        assert rules_of(findings) == ["DET004"]

    def test_random_seed_global_mutation_flagged(self, lint):
        findings = lint({
            "src/repro/chaos/faults.py": """
                import random

                def reset(s):
                    random.seed(s)
            """,
        })
        assert rules_of(findings) == ["DET004"]

    def test_instance_draws_ok(self, lint):
        findings = lint({
            "src/repro/chaos/faults.py": """
                import random

                def pick(items, seed):
                    rng = random.Random(seed)
                    return rng.choice(items)
            """,
        })
        assert findings == []
