"""Fixture-corpus helpers for the lint-engine tests.

Each test writes a tiny fake package tree under ``tmp_path`` (mirroring
the real ``src/repro/...`` layout, so package-scoped rules fire) and
lints it in-process — no subprocess, no reliance on the real repo's
sources.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import lint_project
from repro.analysis.findings import Finding
from repro.analysis.source import Project


def write_tree(root: Path, files: dict[str, str]) -> None:
    """Write ``{relpath: source}`` under ``root`` (dedented)."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


@pytest.fixture
def lint(tmp_path):
    """``lint({relpath: source}) -> list[Finding]`` over a fake corpus."""

    def run(files: dict[str, str]) -> list[Finding]:
        write_tree(tmp_path, files)
        project = Project.load(tmp_path, [tmp_path / "src"])
        return lint_project(project)

    return run


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]
