"""PRO rules: OPS, dispatch ladders, and client verbs stay in sync."""

from __future__ import annotations

from tests.analysis.conftest import rules_of

_PROTOCOL = """
    OPS = ("allocate", "status")

    def parse_request(op):
        if op == "allocate":
            return 1
        if op == "status":
            return 2
"""

_SERVER = """
    def dispatch(request):
        if request.op == "allocate":
            return 1
        if request.op == "status":
            return 2
"""

_CLIENT = """
    _RETRY_SAFE_OPS = frozenset({"status"})

    class BrokerClient:
        def allocate(self):
            return self.call("allocate", {})

        def status(self):
            return self.call("status", {})
"""


def corpus(**overrides):
    files = {
        "src/repro/broker/protocol.py": _PROTOCOL,
        "src/repro/broker/server.py": _SERVER,
        "src/repro/broker/client.py": _CLIENT,
    }
    files.update(overrides)
    return files


class TestProtocolDrift:
    def test_synced_corpus_is_clean(self, lint):
        assert lint(corpus()) == []

    def test_op_missing_from_server_dispatch(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = """
            def dispatch(request):
                if request.op == "allocate":
                    return 1
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO001"]
        assert "status" in findings[0].message
        assert findings[0].path.endswith("server.py")

    def test_op_missing_from_parser_ladder(self, lint):
        files = corpus()
        files["src/repro/broker/protocol.py"] = """
            OPS = ("allocate", "status")

            def parse_request(op):
                if op == "allocate":
                    return 1
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO001"]
        assert findings[0].path.endswith("protocol.py")

    def test_undeclared_dispatch_branch(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = _SERVER + """
        def extra(request):
            if request.op == "zombie":
                return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO003"]
        assert "zombie" in findings[0].message

    def test_op_missing_from_client(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = """
            class BrokerClient:
                def allocate(self):
                    return self.call("allocate", {})
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO002"]
        assert "status" in findings[0].message

    def test_client_calling_unknown_op(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = _CLIENT + """
        def probe(client):
            return client.call("zombie", {})
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO003"]

    def test_retry_safe_entry_outside_ops(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = _CLIENT.replace(
            'frozenset({"status"})', 'frozenset({"status", "zombie"})'
        )
        findings = lint(files)
        assert rules_of(findings) == ["PRO004"]

    def test_match_statement_ladder_counts(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = """
            def dispatch(request):
                op = request.op
                match op:
                    case "allocate":
                        return 1
                    case "status":
                        return 2
        """
        assert lint(files) == []

    def test_corpus_without_ops_is_exempt(self, lint):
        findings = lint({
            "src/repro/broker/protocol.py": "X = 1\n",
        })
        assert findings == []


_FED_PROTOCOL = """
    OPS = ("allocate", "status")
    FEDERATION_OPS = ("shards", "resolve")

    def parse_request(op):
        if op == "allocate":
            return 1
        if op == "status":
            return 2
        if op == "shards":
            return 3
        if op == "resolve":
            return 4
"""

_FED_DAEMON = """
    class FederationDaemon:
        async def _dispatch(self, request):
            if request.op == "shards":
                return 1
            if request.op == "resolve":
                return 2
            return await super()._dispatch(request)
"""

_FED_CLIENT = """
    _RETRY_SAFE_OPS = frozenset({"status", "shards", "resolve"})

    class BrokerClient:
        def allocate(self):
            return self.call("allocate", {})

        def status(self):
            return self.call("status", {})

        def shards(self):
            return self.call("shards")

        def resolve(self, lease_id):
            return self.call("resolve", {"lease_id": lease_id})
"""


def fed_corpus(**overrides):
    files = {
        "src/repro/broker/protocol.py": _FED_PROTOCOL,
        "src/repro/broker/server.py": _SERVER,
        "src/repro/broker/client.py": _FED_CLIENT,
        "src/repro/federation/daemon.py": _FED_DAEMON,
    }
    files.update(overrides)
    return files


class TestFederationDrift:
    def test_synced_federation_corpus_is_clean(self, lint):
        assert lint(fed_corpus()) == []

    def test_base_daemon_needs_no_federation_branches(self, lint):
        # _SERVER has no shards/resolve ladder — deliberately not drift.
        assert lint(fed_corpus()) == []

    def test_federation_op_missing_from_daemon(self, lint):
        files = fed_corpus()
        files["src/repro/federation/daemon.py"] = """
            class FederationDaemon:
                async def _dispatch(self, request):
                    if request.op == "shards":
                        return 1
                    return await super()._dispatch(request)
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO006"]
        assert "resolve" in findings[0].message
        assert findings[0].path.endswith("daemon.py")

    def test_federation_op_missing_from_parser(self, lint):
        files = fed_corpus()
        files["src/repro/broker/protocol.py"] = """
            OPS = ("allocate", "status")
            FEDERATION_OPS = ("shards", "resolve")

            def parse_request(op):
                if op == "allocate":
                    return 1
                if op == "status":
                    return 2
                if op == "shards":
                    return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO006"]
        assert findings[0].path.endswith("protocol.py")

    def test_federation_op_missing_from_client(self, lint):
        files = fed_corpus()
        files["src/repro/broker/client.py"] = _FED_CLIENT.replace(
            """
        def resolve(self, lease_id):
            return self.call("resolve", {"lease_id": lease_id})
""",
            "",
        )
        findings = lint(files)
        assert rules_of(findings) == ["PRO007"]
        assert "resolve" in findings[0].message

    def test_retry_safe_may_name_federation_ops(self, lint):
        # shards/resolve in _RETRY_SAFE_OPS must NOT trip PRO004.
        assert lint(fed_corpus()) == []

    def test_undeclared_op_in_federation_daemon(self, lint):
        files = fed_corpus()
        files["src/repro/federation/daemon.py"] = _FED_DAEMON + """
        def extra(request):
            if request.op == "zombie":
                return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO003"]
        assert "zombie" in findings[0].message

    def test_tokenless_allocate_params_in_federation(self, lint):
        files = fed_corpus()
        files["src/repro/federation/router.py"] = """
            def split(params, take):
                return AllocateParams(n_processes=take, ppn=params.ppn)
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO008"]
        assert "token" in findings[0].message

    def test_token_forwarding_allocate_params_is_clean(self, lint):
        files = fed_corpus()
        files["src/repro/federation/router.py"] = """
            def split(params, take, sub):
                return AllocateParams(n_processes=take, token=sub)
        """
        assert lint(files) == []

    def test_token_via_splat_is_trusted(self, lint):
        files = fed_corpus()
        files["src/repro/federation/router.py"] = """
            def split(kwargs):
                return AllocateParams(**kwargs)
        """
        assert lint(files) == []

    def test_tokenless_outside_federation_is_fine(self, lint):
        files = fed_corpus()
        files["src/repro/broker/helper.py"] = """
            def probe():
                return AllocateParams(n_processes=1)
        """
        assert lint(files) == []


_FLEET_PROTOCOL = """
    OPS = ("allocate", "status")
    FLEET_OPS = ("fleet_plan", "fleet_status")

    def parse_request(op):
        if op == "allocate":
            return 1
        if op == "status":
            return 2
        if op == "fleet_plan":
            return 3
        if op == "fleet_status":
            return 4
"""

_FLEET_SERVER = """
    def dispatch(request):
        if request.op == "allocate":
            return 1
        if request.op == "fleet_plan":
            return 2
        if request.op == "fleet_status":
            return 3
        if request.op == "status":
            return 4
"""

_FLEET_CLIENT = """
    _RETRY_SAFE_OPS = frozenset({"status", "fleet_status"})

    class BrokerClient:
        def allocate(self):
            return self.call("allocate", {})

        def status(self):
            return self.call("status", {})

        def fleet_plan(self):
            return self.call("fleet_plan", {})

        def fleet_status(self):
            return self.call("fleet_status")
"""


def fleet_corpus(**overrides):
    files = {
        "src/repro/broker/protocol.py": _FLEET_PROTOCOL,
        "src/repro/broker/server.py": _FLEET_SERVER,
        "src/repro/broker/client.py": _FLEET_CLIENT,
    }
    files.update(overrides)
    return files


class TestFleetDrift:
    def test_synced_fleet_corpus_is_clean(self, lint):
        assert lint(fleet_corpus()) == []

    def test_fleet_op_missing_from_server_dispatch(self, lint):
        files = fleet_corpus()
        files["src/repro/broker/server.py"] = """
            def dispatch(request):
                if request.op == "allocate":
                    return 1
                if request.op == "fleet_plan":
                    return 2
                if request.op == "status":
                    return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO009"]
        assert "fleet_status" in findings[0].message
        assert findings[0].path.endswith("server.py")

    def test_fleet_op_missing_from_parser(self, lint):
        files = fleet_corpus()
        files["src/repro/broker/protocol.py"] = """
            OPS = ("allocate", "status")
            FLEET_OPS = ("fleet_plan", "fleet_status")

            def parse_request(op):
                if op == "allocate":
                    return 1
                if op == "status":
                    return 2
                if op == "fleet_plan":
                    return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO009"]
        assert findings[0].path.endswith("protocol.py")

    def test_fleet_op_missing_from_client(self, lint):
        files = fleet_corpus()
        files["src/repro/broker/client.py"] = _FLEET_CLIENT.replace(
            """
        def fleet_status(self):
            return self.call("fleet_status")
""",
            "",
        )
        findings = lint(files)
        assert rules_of(findings) == ["PRO010"]
        assert "fleet_status" in findings[0].message

    def test_retry_safe_may_name_fleet_status(self, lint):
        # fleet_status in _RETRY_SAFE_OPS must NOT trip PRO004.
        assert lint(fleet_corpus()) == []
