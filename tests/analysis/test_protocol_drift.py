"""PRO rules: OPS, dispatch ladders, and client verbs stay in sync."""

from __future__ import annotations

from tests.analysis.conftest import rules_of

_PROTOCOL = """
    OPS = ("allocate", "status")

    def parse_request(op):
        if op == "allocate":
            return 1
        if op == "status":
            return 2
"""

_SERVER = """
    def dispatch(request):
        if request.op == "allocate":
            return 1
        if request.op == "status":
            return 2
"""

_CLIENT = """
    _RETRY_SAFE_OPS = frozenset({"status"})

    class BrokerClient:
        def allocate(self):
            return self.call("allocate", {})

        def status(self):
            return self.call("status", {})
"""


def corpus(**overrides):
    files = {
        "src/repro/broker/protocol.py": _PROTOCOL,
        "src/repro/broker/server.py": _SERVER,
        "src/repro/broker/client.py": _CLIENT,
    }
    files.update(overrides)
    return files


class TestProtocolDrift:
    def test_synced_corpus_is_clean(self, lint):
        assert lint(corpus()) == []

    def test_op_missing_from_server_dispatch(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = """
            def dispatch(request):
                if request.op == "allocate":
                    return 1
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO001"]
        assert "status" in findings[0].message
        assert findings[0].path.endswith("server.py")

    def test_op_missing_from_parser_ladder(self, lint):
        files = corpus()
        files["src/repro/broker/protocol.py"] = """
            OPS = ("allocate", "status")

            def parse_request(op):
                if op == "allocate":
                    return 1
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO001"]
        assert findings[0].path.endswith("protocol.py")

    def test_undeclared_dispatch_branch(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = _SERVER + """
        def extra(request):
            if request.op == "zombie":
                return 3
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO003"]
        assert "zombie" in findings[0].message

    def test_op_missing_from_client(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = """
            class BrokerClient:
                def allocate(self):
                    return self.call("allocate", {})
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO002"]
        assert "status" in findings[0].message

    def test_client_calling_unknown_op(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = _CLIENT + """
        def probe(client):
            return client.call("zombie", {})
        """
        findings = lint(files)
        assert rules_of(findings) == ["PRO003"]

    def test_retry_safe_entry_outside_ops(self, lint):
        files = corpus()
        files["src/repro/broker/client.py"] = _CLIENT.replace(
            'frozenset({"status"})', 'frozenset({"status", "zombie"})'
        )
        findings = lint(files)
        assert rules_of(findings) == ["PRO004"]

    def test_match_statement_ladder_counts(self, lint):
        files = corpus()
        files["src/repro/broker/server.py"] = """
            def dispatch(request):
                op = request.op
                match op:
                    case "allocate":
                        return 1
                    case "status":
                        return 2
        """
        assert lint(files) == []

    def test_corpus_without_ops_is_exempt(self, lint):
        findings = lint({
            "src/repro/broker/protocol.py": "X = 1\n",
        })
        assert findings == []
