"""ASY rules: nothing blocks an async def body."""

from __future__ import annotations

from tests.analysis.conftest import rules_of


class TestBlockingCalls:
    def test_time_sleep_in_async_def_flagged(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                import time

                async def handler():
                    time.sleep(1.0)
            """,
        })
        assert rules_of(findings) == ["ASY001"]
        assert "handler" in findings[0].message

    def test_asyncio_sleep_ok(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                import asyncio

                async def handler():
                    await asyncio.sleep(1.0)
            """,
        })
        assert findings == []

    def test_subprocess_and_socket_flagged(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                import socket
                import subprocess

                async def handler(host, port):
                    subprocess.run(["true"])
                    socket.create_connection((host, port))
            """,
        })
        assert sorted(rules_of(findings)) == ["ASY001", "ASY001"]

    def test_sync_def_not_scanned(self, lint):
        # Blocking calls in ordinary functions are the caller's business.
        findings = lint({
            "src/repro/broker/server.py": """
                import time

                def helper():
                    time.sleep(1.0)
            """,
        })
        assert findings == []

    def test_nested_sync_def_inside_async_not_scanned(self, lint):
        # A nested def's execution context is unknown (it may run in a
        # thread via to_thread); only direct async-body calls count.
        findings = lint({
            "src/repro/broker/server.py": """
                import time

                async def handler():
                    def blocking_job():
                        time.sleep(1.0)
                    return blocking_job
            """,
        })
        assert findings == []

    def test_nested_async_def_scanned_exactly_once(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                import time

                async def outer():
                    async def inner():
                        time.sleep(1.0)
                    await inner()
            """,
        })
        assert rules_of(findings) == ["ASY001"]

    def test_applies_outside_broker_too(self, lint):
        # Any async def in the package is an event-loop context.
        findings = lint({
            "src/repro/monitor/poller.py": """
                import time

                async def poll():
                    time.sleep(0.1)
            """,
        })
        assert rules_of(findings) == ["ASY001"]


class TestStoreAccess:
    def test_store_read_in_async_def_warns(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                async def refresh(self):
                    return self.store.value("load")
            """,
        })
        assert rules_of(findings) == ["ASY002"]
        assert findings[0].severity == "warning"

    def test_non_store_receiver_ok(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                async def refresh(mapping):
                    return mapping.get("load")
            """,
        })
        assert findings == []

    def test_pragma_suppresses_store_warning(self, lint):
        findings = lint({
            "src/repro/broker/server.py": """
                async def refresh(self):
                    return self.store.value("load")  # lint: allow(ASY002) — tmpfs-backed store, sub-ms reads
            """,
        })
        assert findings == []
