"""Unit tests for the await-segmented CFG builder behind the RACE rules."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.race import build, module_assigned_names
from repro.analysis.race.cfg import (
    CHECK,
    ITERATE,
    MUTATE,
    READ,
    WRITE,
    lock_name,
)


def cfg_of(source, module_shared=frozenset()):
    tree = ast.parse(textwrap.dedent(source))
    fns = [n for n in ast.walk(tree) if isinstance(n, ast.AsyncFunctionDef)]
    assert len(fns) == 1, "fixture must contain exactly one async def"
    return build(fns[0], module_shared)


def accesses_by_kind(cfg, kind):
    return [a for a in cfg.accesses if a.kind == kind]


class TestSegments:
    def test_no_awaits_is_one_segment(self):
        cfg = cfg_of("""
            async def f(self):
                self.x = 1
        """)
        assert cfg.segments == 1
        assert cfg.yield_points == []

    def test_each_await_bumps_the_epoch(self):
        cfg = cfg_of("""
            async def f(self):
                self.a = 1
                await one()
                self.b = 2
                await two()
                self.c = 3
        """)
        assert cfg.segments == 3
        segs = {a.var: a.segment for a in cfg.accesses}
        assert segs == {"self.a": 0, "self.b": 1, "self.c": 2}

    def test_async_with_yields_on_enter_and_exit(self):
        cfg = cfg_of("""
            async def f(self):
                async with self._lock:
                    self.x = 1
        """)
        kinds = [y.kind for y in cfg.yield_points]
        assert kinds == ["async_with", "async_with"]
        assert cfg.segments == 3

    def test_async_for_counts_the_implicit_anext(self):
        cfg = cfg_of("""
            async def f(self, source):
                async for item in source:
                    self.x = item
        """)
        assert any(y.kind == "async_for" for y in cfg.yield_points)

    def test_await_inside_expression_stamps_value_first(self):
        # the read of self.x happens *before* the await suspends
        cfg = cfg_of("""
            async def f(self):
                await self.push(self.x)
        """)
        (read,) = accesses_by_kind(cfg, READ)
        assert read.var == "self.x"
        assert read.segment == 0


class TestAccessKinds:
    def test_assign_targets_are_writes(self):
        cfg = cfg_of("""
            async def f(self):
                self.x = 1
        """)
        (write,) = cfg.accesses
        assert (write.var, write.kind) == ("self.x", WRITE)

    def test_augassign_is_write_only(self):
        cfg = cfg_of("""
            async def f(self):
                self.count += 1
        """)
        assert [a.kind for a in cfg.accesses] == [WRITE]

    def test_subscript_store_mutates_the_base(self):
        cfg = cfg_of("""
            async def f(self, k, v):
                self.table[k] = v
        """)
        (mutate,) = accesses_by_kind(cfg, MUTATE)
        assert mutate.var == "self.table"

    def test_mutator_method_call_is_a_mutate(self):
        cfg = cfg_of("""
            async def f(self, t):
                self.tasks.append(t)
        """)
        (mutate,) = accesses_by_kind(cfg, MUTATE)
        assert mutate.var == "self.tasks"

    def test_non_mutator_method_call_is_a_read(self):
        cfg = cfg_of("""
            async def f(self, k):
                return self.table.get(k)
        """)
        assert accesses_by_kind(cfg, MUTATE) == []
        (read,) = accesses_by_kind(cfg, READ)
        assert read.var == "self.table"

    def test_branch_test_reads_are_checks(self):
        cfg = cfg_of("""
            async def f(self, k):
                if k in self.table:
                    pass
        """)
        (check,) = accesses_by_kind(cfg, CHECK)
        assert check.var == "self.table"

    def test_for_iterable_is_an_iterate(self):
        cfg = cfg_of("""
            async def f(self):
                for t in self.tasks:
                    await t
        """)
        (it,) = accesses_by_kind(cfg, ITERATE)
        assert it.var == "self.tasks"
        (site,) = cfg.iterations
        assert site.yields_in_body == 1


class TestScopes:
    def test_locals_and_params_are_excluded(self):
        cfg = cfg_of("""
            async def f(self, jobs):
                out = []
                for job in jobs:
                    out.append(job)
                return out
        """)
        assert cfg.accesses == []

    def test_module_shared_names_are_included(self):
        cfg = cfg_of(
            """
            async def f(k, v):
                registry[k] = v
            """,
            module_shared=frozenset({"registry"}),
        )
        (mutate,) = accesses_by_kind(cfg, MUTATE)
        assert mutate.var == "registry"

    def test_module_shared_name_shadowed_by_local_is_excluded(self):
        cfg = cfg_of(
            """
            async def f(k, v):
                registry = {}
                registry[k] = v
            """,
            module_shared=frozenset({"registry"}),
        )
        assert accesses_by_kind(cfg, MUTATE) == []

    def test_global_declaration_makes_bare_writes_shared(self):
        cfg = cfg_of("""
            async def f():
                global counter
                counter = 1
        """)
        (write,) = cfg.accesses
        assert (write.var, write.kind) == ("counter", WRITE)

    def test_nested_defs_are_not_walked(self):
        cfg = cfg_of("""
            async def f(self):
                def helper():
                    self.x = 1
                helper()
        """)
        assert all(a.var != "self.x" for a in cfg.accesses)


class TestLocks:
    def test_accesses_under_async_with_carry_the_lock(self):
        cfg = cfg_of("""
            async def f(self):
                async with self._lock:
                    self.x = 1
                self.y = 2
        """)
        by_var = {a.var: a.locks for a in cfg.accesses}
        assert by_var["self.x"] == frozenset({"self._lock"})
        assert by_var["self.y"] == frozenset()

    def test_reentry_is_recorded(self):
        cfg = cfg_of("""
            async def f(self):
                async with self._lock:
                    async with self._lock:
                        pass
        """)
        (reentry,) = cfg.reentries
        assert reentry.lock == "self._lock"

    def test_nested_distinct_locks_record_an_ordered_pair(self):
        cfg = cfg_of("""
            async def f(self):
                async with self._a_lock:
                    async with self._b_lock:
                        pass
        """)
        (pair,) = cfg.lock_pairs
        assert (pair.outer, pair.inner) == ("self._a_lock", "self._b_lock")

    def test_non_lock_context_manager_is_not_protection(self):
        cfg = cfg_of("""
            async def f(self):
                async with self._session:
                    self.x = 1
        """)
        (write,) = accesses_by_kind(cfg, WRITE)
        assert write.var == "self.x"
        assert write.locks == frozenset()


class TestCheckActSites:
    def test_check_then_later_segment_write_is_recorded(self):
        cfg = cfg_of("""
            async def f(self, k):
                if k not in self.memo:
                    v = await compute(k)
                    self.memo[k] = v
        """)
        (site,) = cfg.check_acts
        assert site.var == "self.memo"
        assert site.write_segment > site.check_segment

    def test_same_segment_act_is_not_recorded(self):
        cfg = cfg_of("""
            async def f(self, k, v):
                if k not in self.memo:
                    self.memo[k] = v
        """)
        assert cfg.check_acts == []


class TestHelpers:
    def test_module_assigned_names_skips_dunders(self):
        tree = ast.parse(
            textwrap.dedent("""
                __all__ = ["a"]
                registry = {}
                COUNT = 0
            """)
        )
        assert module_assigned_names(tree) == frozenset({"registry", "COUNT"})

    def test_lock_name_recognizes_hints(self):
        def parse(expr):
            return ast.parse(expr, mode="eval").body

        assert lock_name(parse("self._lock")) == "self._lock"
        assert lock_name(parse("self._table_mutex")) == "self._table_mutex"
        assert lock_name(parse("self._session")) is None
