"""Per-rule good/bad fixtures for the RACE family.

Every bad fixture is a minimal reproduction of a hazard class (several
are the literal pre-fix patterns from the broker), and every good
fixture is the idiomatic fix — so each rule's trigger *and* its escape
hatch are pinned.  Only RACE findings are asserted; the fixtures are
written not to trip the other families.
"""

from __future__ import annotations

from tests.analysis.conftest import rules_of


def race_findings(findings):
    return [f for f in findings if f.family == "RACE"]


class TestRace001ReadModifyWrite:
    def test_rmw_spanning_await_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        seen = self._count
                        await asyncio.sleep(0)
                        self._count = seen + 1
            """,
        }))
        assert rules_of(findings) == ["RACE001"]
        (finding,) = findings
        assert "self._count" in finding.message
        assert finding.context == "Counter.bump"

    def test_lock_held_across_both_sides_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        async with self._lock:
                            seen = self._count
                            await asyncio.sleep(0)
                            self._count = seen + 1
            """,
        }))
        assert findings == []

    def test_augmented_assign_is_atomic(self, lint):
        # `x += 1` reads and writes in one segment: never a race by itself
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        self._count += 1
                        await asyncio.sleep(0)
                        self._count -= 1
            """,
        }))
        assert findings == []

    def test_write_before_await_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        seen = self._count
                        self._count = seen + 1
                        await asyncio.sleep(0)
            """,
        }))
        assert findings == []

    def test_mutating_method_after_await_read(self, lint):
        findings = race_findings(lint({
            "src/repro/des/memo.py": """
                import asyncio

                class Memo:
                    async def refresh(self):
                        stale = self._entries.get("k")
                        await asyncio.sleep(0)
                        self._entries.pop("k", stale)
            """,
        }))
        assert rules_of(findings) == ["RACE001"]


class TestRace002CheckThenAct:
    def test_toctou_memo_insert_fires(self, lint):
        # the literal decision-memo shape: check, await the compute, insert
        findings = race_findings(lint({
            "src/repro/des/memo.py": """
                import asyncio

                class Memo:
                    async def get(self, key):
                        if key not in self._memo:
                            value = await self._compute(key)
                            self._memo[key] = value
                        return self._memo[key]
            """,
        }))
        assert "RACE002" in rules_of(findings)

    def test_act_before_await_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/memo.py": """
                import asyncio

                class Memo:
                    async def get(self, key):
                        if key not in self._memo:
                            self._memo[key] = self._placeholder
                            await asyncio.sleep(0)
                        return self._memo[key]
            """,
        }))
        assert findings == []

    def test_lock_guarded_check_then_act_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/memo.py": """
                import asyncio

                class Memo:
                    async def get(self, key):
                        async with self._lock:
                            if key not in self._memo:
                                value = await self._compute(key)
                                self._memo[key] = value
                        return self._memo[key]
            """,
        }))
        assert findings == []


class TestRace003Locks:
    def test_reentry_of_nonreentrant_lock_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/locks.py": """
                class Store:
                    async def outer(self):
                        async with self._lock:
                            async with self._lock:
                                pass
            """,
        }))
        assert rules_of(findings) == ["RACE003"]
        assert "not reentrant" in findings[0].message

    def test_abba_order_across_functions_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/locks.py": """
                class Store:
                    async def forward(self):
                        async with self._table_lock:
                            async with self._store_lock:
                                pass

                    async def backward(self):
                        async with self._store_lock:
                            async with self._table_lock:
                                pass
            """,
        }))
        assert rules_of(findings) == ["RACE003"]
        assert "opposite order" in findings[0].message

    def test_consistent_order_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/locks.py": """
                class Store:
                    async def first(self):
                        async with self._table_lock:
                            async with self._store_lock:
                                pass

                    async def second(self):
                        async with self._table_lock:
                            async with self._store_lock:
                                pass
            """,
        }))
        assert findings == []


class TestRace004FireAndForget:
    def test_bare_create_task_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/spawn.py": """
                import asyncio

                async def kick(work):
                    asyncio.create_task(work())
            """,
        }))
        assert rules_of(findings) == ["RACE004"]

    def test_underscore_assignment_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/spawn.py": """
                import asyncio

                async def kick(work):
                    _ = asyncio.ensure_future(work())
            """,
        }))
        assert rules_of(findings) == ["RACE004"]

    def test_retained_reference_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/spawn.py": """
                import asyncio

                class Spawner:
                    async def kick(self, work):
                        self._tasks.append(asyncio.create_task(work()))
            """,
        }))
        assert findings == []

    def test_done_callback_chain_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/spawn.py": """
                import asyncio

                async def kick(work, on_done):
                    asyncio.create_task(work()).add_done_callback(on_done)
            """,
        }))
        assert findings == []

    def test_task_group_receiver_is_exempt(self, lint):
        # TaskGroup retains its children; discarding its return is fine
        findings = race_findings(lint({
            "src/repro/des/spawn.py": """
                import asyncio

                async def kick(work):
                    async with asyncio.TaskGroup() as task_group:
                        task_group.create_task(work())
            """,
        }))
        assert findings == []


class TestRace005IterationAcrossYield:
    def test_prefix_broker_stop_pattern_fires(self, lint):
        # the literal pre-fix BrokerServer.stop(): awaited drain of a
        # shared task list, then clear() — a task registered during the
        # drain is wiped uncancelled
        findings = race_findings(lint({
            "src/repro/des/server.py": """
                class Server:
                    async def stop(self):
                        for task in self._tasks:
                            task.cancel()
                        for task in self._tasks:
                            await task
                        self._tasks.clear()
            """,
        }))
        assert rules_of(findings) == ["RACE005"]
        assert "self._tasks" in findings[0].message

    def test_dict_view_iteration_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/sweep.py": """
                class Sweeper:
                    async def sweep(self):
                        for key, lease in self._leases.items():
                            await self._expire(key, lease)
            """,
        }))
        assert rules_of(findings) == ["RACE005"]

    def test_snapshot_copy_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/server.py": """
                class Server:
                    async def stop(self):
                        while self._tasks:
                            tasks, self._tasks = self._tasks, []
                            for task in tasks:
                                task.cancel()
                            for task in tasks:
                                await task
            """,
        }))
        assert findings == []

    def test_iteration_without_yield_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/sweep.py": """
                class Sweeper:
                    async def count(self):
                        total = 0
                        for key in self._leases:
                            total += 1
                        return total
            """,
        }))
        assert findings == []


class TestRace006LoopBinding:
    def test_module_scope_primitive_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/shared.py": """
                import asyncio

                QUEUE = asyncio.Queue()
            """,
        }))
        assert rules_of(findings) == ["RACE006"]
        assert findings[0].severity == "warning"

    def test_class_scope_primitive_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/shared.py": """
                import asyncio

                class Hub:
                    ready = asyncio.Event()
            """,
        }))
        assert rules_of(findings) == ["RACE006"]

    def test_get_event_loop_in_coroutine_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/shared.py": """
                import asyncio

                async def current():
                    return asyncio.get_event_loop()
            """,
        }))
        assert rules_of(findings) == ["RACE006"]
        assert "get_running_loop" in findings[0].hint

    def test_instance_scope_primitive_is_clean(self, lint):
        findings = race_findings(lint({
            "src/repro/des/shared.py": """
                import asyncio

                class Hub:
                    def __init__(self):
                        self.ready = asyncio.Event()

                async def current():
                    return asyncio.get_running_loop()
            """,
        }))
        assert findings == []


class TestPragmas:
    def test_rationale_pragma_suppresses(self, lint):
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        seen = self._count
                        await asyncio.sleep(0)
                        self._count = seen + 1  # lint: allow(RACE001) — single-writer by construction
            """,
        }))
        assert findings == []

    def test_pragma_without_rationale_does_not_suppress(self, lint):
        findings = race_findings(lint({
            "src/repro/des/counter.py": """
                import asyncio

                class Counter:
                    async def bump(self):
                        seen = self._count
                        await asyncio.sleep(0)
                        self._count = seen + 1  # lint: allow(RACE001)
            """,
        }))
        assert rules_of(findings) == ["RACE001"]


class TestScope:
    def test_locals_are_not_shared_state(self, lint):
        findings = race_findings(lint({
            "src/repro/des/local.py": """
                import asyncio

                async def gather_all(jobs):
                    results = []
                    for job in jobs:
                        results.append(await job())
                    return results
            """,
        }))
        assert findings == []

    def test_module_global_mutation_fires(self, lint):
        findings = race_findings(lint({
            "src/repro/des/registry.py": """
                import asyncio

                registry = {}

                async def register(key, factory):
                    if key not in registry:
                        value = await factory()
                        registry[key] = value
                    return registry[key]
            """,
        }))
        assert "RACE002" in rules_of(findings)

    def test_nested_sync_def_not_scanned_as_async(self, lint):
        # the inner sync helper's body is not this coroutine's context
        findings = race_findings(lint({
            "src/repro/des/nested.py": """
                import asyncio

                class Box:
                    async def run(self):
                        def helper():
                            seen = self._count
                            self._count = seen + 1
                        await asyncio.sleep(0)
                        helper()
            """,
        }))
        assert findings == []
