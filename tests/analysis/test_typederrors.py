"""ERR rules: justified broad catches, exhaustive ErrorCode wiring."""

from __future__ import annotations

from tests.analysis.conftest import rules_of


class TestBroadExcept:
    def test_bare_except_flagged(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except:
                        pass
            """,
        })
        assert rules_of(findings) == ["ERR001"]

    def test_except_exception_flagged(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except Exception:
                        pass
            """,
        })
        assert rules_of(findings) == ["ERR002"]

    def test_broad_name_inside_tuple_flagged(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except (ValueError, Exception):
                        pass
            """,
        })
        assert rules_of(findings) == ["ERR002"]

    def test_narrow_except_ok(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except (ValueError, OSError):
                        pass
            """,
        })
        assert findings == []

    def test_noqa_with_rationale_suppresses(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except Exception:  # noqa: BLE001 — daemon loop must survive any handler bug
                        pass
            """,
        })
        assert findings == []

    def test_noqa_without_rationale_does_not_suppress(self, lint):
        findings = lint({
            "src/repro/util/helpers.py": """
                def swallow(fn):
                    try:
                        fn()
                    except Exception:  # noqa: BLE001
                        pass
            """,
        })
        assert rules_of(findings) == ["ERR002"]
        # the hint points at the missing rationale, not generic advice
        assert "rationale" in findings[0].hint


# ----------------------------------------------------------------------
# ErrorCode exhaustiveness cross-check (project rule)

_PROTOCOL = """
    class ErrorCode:
        BUSY = "BUSY"
        WAIT = "WAIT"
"""

_CLIENT_OK = """
    KNOWN_ERROR_CODES = frozenset({
        "BUSY", "WAIT", "CONNECT", "TIMEOUT",
    })
"""


class TestErrorCodeExhaustiveness:
    def corpus(self, **overrides):
        files = {
            "src/repro/broker/protocol.py": _PROTOCOL,
            "src/repro/broker/service.py": """
                from repro.broker.protocol import ErrorCode

                def deny():
                    raise ValueError(ErrorCode.BUSY)

                def backoff():
                    return "WAIT"
            """,
            "src/repro/broker/client.py": _CLIENT_OK,
        }
        files.update(overrides)
        return files

    def test_fully_wired_corpus_is_clean(self, lint):
        assert lint(self.corpus()) == []

    def test_enum_body_is_not_production_evidence(self, lint):
        # `BUSY = "BUSY"` in the enum itself must not count: with no
        # server-side producer both codes go ERR003.
        files = self.corpus()
        files["src/repro/broker/service.py"] = "x = 1\n"
        findings = lint(files)
        assert rules_of(findings) == ["ERR003", "ERR003"]

    def test_unproduced_code_flagged(self, lint):
        files = self.corpus()
        files["src/repro/broker/service.py"] = """
            from repro.broker.protocol import ErrorCode

            def deny():
                raise ValueError(ErrorCode.BUSY)
        """
        findings = lint(files)
        assert rules_of(findings) == ["ERR003"]
        assert "WAIT" in findings[0].message

    def test_missing_registry_flagged(self, lint):
        files = self.corpus()
        files["src/repro/broker/client.py"] = "def call():\n    pass\n"
        findings = lint(files)
        assert rules_of(findings) == ["ERR004"]
        assert "KNOWN_ERROR_CODES" in findings[0].message

    def test_registry_missing_a_code_flagged(self, lint):
        files = self.corpus()
        files["src/repro/broker/client.py"] = """
            KNOWN_ERROR_CODES = frozenset({"BUSY", "CONNECT", "TIMEOUT"})
        """
        findings = lint(files)
        assert rules_of(findings) == ["ERR004"]
        assert "WAIT" in findings[0].message

    def test_stale_registry_entry_flagged(self, lint):
        files = self.corpus()
        files["src/repro/broker/client.py"] = """
            KNOWN_ERROR_CODES = frozenset({
                "BUSY", "WAIT", "ZOMBIE", "CONNECT", "TIMEOUT",
            })
        """
        findings = lint(files)
        assert rules_of(findings) == ["ERR005"]
        assert "ZOMBIE" in findings[0].message

    def test_client_only_codes_are_not_stale(self, lint):
        # CONNECT/TIMEOUT are minted client-side; the registry may (must)
        # list them even though the enum doesn't.
        assert lint(self.corpus()) == []

    def test_corpus_without_broker_is_exempt(self, lint):
        findings = lint({
            "src/repro/util/math.py": "def double(x):\n    return 2 * x\n",
        })
        assert findings == []
