"""Extra scenario-builder tests."""

import pytest

from repro.experiments.scenario import Scenario, paper_scenario, small_scenario
from repro.cluster.topology import uniform_cluster
from repro.monitor.system import MonitorConfig
from repro.workload.generator import WorkloadConfig


class TestScenarioOptions:
    def test_small_scenario_shape(self):
        sc = small_scenario(n_nodes=6, seed=0, warmup_s=0.0, nodes_per_switch=3)
        assert len(sc.cluster) == 6
        assert len(sc.cluster.topology.switches) == 3  # root + 2 leaves

    def test_custom_workload_config(self):
        cfg = WorkloadConfig(tick_s=30.0)
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        sc = Scenario.build(specs, topo, seed=0, workload_config=cfg)
        assert sc.workload.config.tick_s == 30.0

    def test_custom_monitor_config(self):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        sc = Scenario.build(
            specs, topo, seed=0,
            monitor_config=MonitorConfig(nodestate_period_s=9.0),
        )
        assert sc.monitoring.config.nodestate_period_s == 9.0

    def test_paper_scenario_is_paper_cluster(self):
        sc = paper_scenario(seed=0, warmup_s=0.0)
        assert len(sc.cluster) == 60
        assert sc.cluster.spec("csews1").cores == 12
        assert sc.cluster.spec("csews11").cores == 8

    def test_same_seed_same_livehosts_and_states(self):
        a = small_scenario(n_nodes=4, seed=4, warmup_s=300.0)
        b = small_scenario(n_nodes=4, seed=4, warmup_s=300.0)
        sa = {n: a.cluster.state(n).cpu_load for n in a.cluster.names}
        sb = {n: b.cluster.state(n).cpu_load for n in b.cluster.names}
        assert sa == sb

    def test_warmup_advances_clock(self):
        sc = small_scenario(n_nodes=4, seed=0, warmup_s=123.0)
        assert sc.engine.now == 123.0
