"""Unit tests for Fig2Result helpers (synthetic data, no long runs)."""

import numpy as np
import pytest

from repro.experiments.figures import Fig2Result


def make_result(bw_same=120.0, bw_cross=40.0):
    """30 paper nodes; same-switch pairs fast, cross-switch slow."""
    nodes = [f"csews{i}" for i in range(1, 31)]
    n = len(nodes)
    mat = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            same = (i // 15) == (j // 15)
            mat[i, j] = mat[j, i] = bw_same if same else bw_cross
    np.fill_diagonal(mat, np.nan)
    series = np.tile(np.array([[50.0, 60.0, 70.0]]), (10, 1))
    return Fig2Result(
        nodes=nodes,
        mean_bandwidth=mat,
        pair_names=[("csews1", "csews2"), ("csews1", "csews20"),
                    ("csews3", "csews25")],
        pair_times_h=np.arange(10) / 6.0,
        pair_series=series,
    )


class TestProximityCorrelation:
    def test_structured_matrix_is_negative(self):
        assert make_result().proximity_correlation() < -0.9

    def test_inverted_structure_is_positive(self):
        res = make_result(bw_same=40.0, bw_cross=120.0)
        assert res.proximity_correlation() > 0.9


class TestRender:
    def test_panels_present(self):
        text = make_result().render()
        assert "Figure 2(a)" in text
        assert "Figure 2(b)" in text
        assert "csews1-csews2" in text

    def test_correlation_reported(self):
        assert "correlation" in make_result().render()
