"""Extra runner tests: policy subsets and custom factories."""

import numpy as np
import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.policies.hierarchical import HierarchicalNetworkLoadAwarePolicy
from repro.experiments.runner import compare_policies, run_grid
from repro.experiments.scenario import small_scenario
from repro.integrations.condor import CondorLikePolicy


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(n_nodes=8, seed=23, warmup_s=600.0)


class TestCustomPolicySets:
    def test_policy_factory_extends_comparison(self, scenario):
        """The runner accepts extension policies alongside the §5 four."""
        extra = {
            "condor_rank": CondorLikePolicy,
            "hierarchical": HierarchicalNetworkLoadAwarePolicy,
            "network_load_aware": NetworkLoadAwarePolicy,
        }
        comparison = compare_policies(
            scenario,
            MiniMD(8, MiniMDConfig(timesteps=50)),
            AllocationRequest(8, ppn=4),
            rng=np.random.default_rng(0),
            policies=tuple(extra),
            policy_factory=lambda name: extra[name](),
        )
        assert set(comparison.runs) == set(extra)

    def test_grid_with_policy_subset(self, scenario):
        grid = run_grid(
            scenario,
            lambda s: MiniMD(s, MiniMDConfig(timesteps=50)),
            proc_counts=(8,),
            sizes=(8,),
            repeats=1,
            gap_s=60.0,
            policies=("random", "network_load_aware"),
        )
        assert set(grid.times) == {"random", "network_load_aware"}

    def test_grid_respects_explicit_tradeoff(self, scenario):
        from repro.core.weights import TradeOff

        grid = run_grid(
            scenario,
            lambda s: MiniMD(s, MiniMDConfig(timesteps=50)),
            proc_counts=(8,),
            sizes=(8,),
            repeats=1,
            gap_s=60.0,
            tradeoff=TradeOff(1.0, 0.0),
        )
        alloc = grid.allocations["network_load_aware"][(8, 8)][0]
        assert alloc.request.tradeoff.alpha == 1.0
