"""Tests that figure results render to valid SVG files."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.experiments.figures import (
    Fig1Result,
    Fig2Result,
    Fig7Result,
    save_fig5_svg,
    save_grid_svgs,
)
from repro.experiments.runner import GridResult
from tests.experiments.test_figures_unit import tiny_trace


def valid_svg(path):
    root = ET.parse(path).getroot()
    assert root.tag.endswith("svg")
    return root


class TestFig1Svgs:
    def test_three_panels(self, tmp_path):
        res = Fig1Result(
            trace=tiny_trace(), node_a="a", node_b="b", sample_nodes=["a", "b"]
        )
        paths = res.save_svgs(tmp_path)
        assert len(paths) == 3
        for p in paths:
            valid_svg(p)


class TestFig2Svgs:
    def test_heatmap_and_series(self, tmp_path):
        mat = np.array([[np.nan, 50.0], [50.0, np.nan]])
        res = Fig2Result(
            nodes=["x", "y"],
            mean_bandwidth=mat,
            pair_names=[("x", "y")],
            pair_times_h=np.array([0.0, 1.0, 2.0]),
            pair_series=np.array([[10.0], [20.0], [15.0]]),
        )
        paths = res.save_svgs(tmp_path)
        assert len(paths) == 2
        for p in paths:
            valid_svg(p)


class TestGridSvgs:
    def test_one_chart_per_proc_count(self, tmp_path):
        grid = GridResult(
            app_name="miniMD",
            proc_counts=(8, 32),
            sizes=(16, 32),
            repeats=1,
            policies=("random", "network_load_aware"),
            times={
                "random": {(8, 16): [2.0], (8, 32): [4.0],
                           (32, 16): [2.5], (32, 32): [5.0]},
                "network_load_aware": {(8, 16): [1.0], (8, 32): [2.0],
                                       (32, 16): [1.2], (32, 32): [2.4]},
            },
            allocations={},
            loads_per_core={},
        )
        paths = save_grid_svgs(grid, tmp_path, prefix="fig4")
        assert len(paths) == 2
        assert paths[0].endswith("fig4_procs8.svg")
        for p in paths:
            valid_svg(p)


class TestFig5AndFig7Svgs:
    def test_fig5_bar(self, tmp_path):
        path = tmp_path / "fig5.svg"
        save_fig5_svg({"random": 0.72, "ours": 0.43}, path)
        valid_svg(path)

    def test_fig7_heatmap(self, tmp_path):
        res = Fig7Result(
            nodes=["n1", "n2"],
            bandwidth_complement=np.array([[np.nan, 3.0], [3.0, np.nan]]),
            cpu_load=[1.0, 2.0],
            selections={"ours": ("n1",)},
        )
        path = tmp_path / "fig7.svg"
        res.save_svg(path)
        valid_svg(path)
