"""Tests for experiment metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.metrics import (
    coefficient_of_variation,
    gain_percent,
    gain_stats,
)


class TestGainPercent:
    def test_faster_is_positive(self):
        assert gain_percent(10.0, 5.0) == pytest.approx(50.0)

    def test_slower_is_negative(self):
        assert gain_percent(5.0, 10.0) == pytest.approx(-100.0)

    def test_equal_is_zero(self):
        assert gain_percent(3.0, 3.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            gain_percent(0.0, 1.0)

    @given(
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_bounded_above_by_100(self, base, ours):
        assert gain_percent(base, ours) <= 100.0


class TestGainStats:
    def test_statistics(self):
        base = [10.0, 20.0, 40.0]
        ours = [5.0, 10.0, 10.0]  # gains: 50, 50, 75
        st_ = gain_stats(base, ours)
        assert st_.average == pytest.approx(175.0 / 3)
        assert st_.median == pytest.approx(50.0)
        assert st_.maximum == pytest.approx(75.0)
        assert st_.n == 3
        assert st_.row() == (st_.average, st_.median, st_.maximum)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            gain_stats([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            gain_stats([], [])


class TestCoV:
    def test_constant_series_zero(self):
        assert coefficient_of_variation([4.0, 4.0, 4.0]) == 0.0

    def test_known_value(self):
        # std([1, 3]) = 1 (population), mean = 2 -> CoV 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([0.0, 0.0])
