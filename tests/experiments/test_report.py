"""Tests for text rendering of results."""

import numpy as np
import pytest

from repro.experiments.report import (
    ascii_heatmap,
    comparison_table,
    format_table,
    series_summary,
    sparkline,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ["name", "value"], [["alpha", 1.234], ["b", 10.0]], title="T"
        )
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "alpha" in out and "1.23" in out and "10.00" in out

    def test_header_only(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestAsciiHeatmap:
    def test_shape_and_labels(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = ascii_heatmap(m, labels=["r1", "r2"])
        lines = out.split("\n")
        assert len(lines) == 2
        assert lines[0].strip().startswith("r1")

    def test_invert_flips_shades(self):
        m = np.array([[0.0, 1.0]])
        normal = ascii_heatmap(m)
        inverted = ascii_heatmap(m, invert=True)
        assert normal != inverted

    def test_nan_rendered_blank(self):
        m = np.array([[np.nan, 1.0]])
        out = ascii_heatmap(m)
        assert out[0] == " "

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3))

    def test_label_count_must_match_rows(self):
        with pytest.raises(ValueError, match="labels"):
            ascii_heatmap(np.zeros((2, 2)), labels=["only-one"])

    def test_constant_matrix(self):
        out = ascii_heatmap(np.ones((2, 2)))
        assert len(set(out.replace("\n", ""))) == 1


class TestSparkline:
    def test_length_capped(self):
        out = sparkline(list(range(1000)), width=50)
        assert len(out) <= 50

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_shades(self):
        out = sparkline([0.0, 10.0])
        assert out[0] != out[-1]


class TestSeriesSummary:
    def test_contents(self):
        s = series_summary("x", [1.0, 2.0, 3.0], unit="s")
        assert "min=1" in s and "max=3" in s and "(n=3)" in s


class TestComparisonTable:
    def test_grid_layout(self):
        times = {
            "random": {(8, 16): [2.0, 4.0], (8, 32): [8.0]},
            "ours": {(8, 16): [1.0, 1.0], (8, 32): [2.0]},
        }
        out = comparison_table(times, [8], [16, 32], title="Fig")
        assert "#procs = 8" in out
        assert "3.00" in out  # mean of 2, 4
        assert "random" in out and "ours" in out
