"""Fast unit tests for figure-result helpers (no paper-scale runs)."""

import numpy as np
import pytest

from repro.experiments.figures import Fig1Result, Fig7Result, fig5, render_fig5
from repro.experiments.runner import GridResult
from repro.workload.traces import FIELDS, ClusterTrace


def tiny_trace(nodes=("a", "b"), n_samples=4):
    data = np.zeros((n_samples, len(nodes), len(FIELDS)))
    for t in range(n_samples):
        for j in range(len(nodes)):
            data[t, j, FIELDS.index("cpu_load")] = t + j
            data[t, j, FIELDS.index("cpu_util")] = 25.0
            data[t, j, FIELDS.index("memory_used_gb")] = 4.0
            data[t, j, FIELDS.index("flow_rate_mbs")] = 2.0 * j
    return ClusterTrace(
        nodes=list(nodes),
        times=np.arange(n_samples) * 300.0,
        data=data,
    )


class TestFig1Result:
    @pytest.fixture
    def result(self):
        return Fig1Result(
            trace=tiny_trace(),
            node_a="a",
            node_b="b",
            sample_nodes=["a", "b"],
        )

    def test_hours(self, result):
        assert result.hours()[1] == pytest.approx(300.0 / 3600.0)

    def test_summary_keys(self, result):
        s = result.summary()
        assert set(s) == {
            "mean_cpu_util_pct",
            "mean_cpu_load",
            "max_cpu_load",
            "mean_memory_gb",
            "mean_flow_mbs",
        }
        assert s["mean_cpu_util_pct"] == pytest.approx(25.0)

    def test_render_mentions_all_panels(self, result):
        text = result.render()
        for marker in ("(a) CPU load", "(b) network I/O", "(c) CPU utilization"):
            assert marker in text


class TestFig7Result:
    def test_render_marks_selection(self):
        res = Fig7Result(
            nodes=["n1", "n2", "n3"],
            bandwidth_complement=np.zeros((3, 3)),
            cpu_load=[0.5, 1.5, 2.5],
            selections={"ours": ("n1", "n3")},
        )
        text = res.render()
        row = next(l for l in text.splitlines() if "ours" in l)
        assert row.strip().endswith("X.X")
        assert "CPU load" in text


class TestFig5FromGrid:
    def test_fig5_averages_loads(self):
        grid = GridResult(
            app_name="miniMD",
            proc_counts=(8,),
            sizes=(16,),
            repeats=2,
            policies=("random", "network_load_aware"),
            times={
                "random": {(8, 16): [2.0, 4.0]},
                "network_load_aware": {(8, 16): [1.0, 1.0]},
            },
            allocations={"random": {}, "network_load_aware": {}},
            loads_per_core={
                "random": {(8, 16): [0.6, 0.8]},
                "network_load_aware": {(8, 16): [0.2, 0.4]},
            },
        )
        loads = fig5(grid)
        assert loads["random"] == pytest.approx(0.7)
        assert loads["network_load_aware"] == pytest.approx(0.3)
        assert "Figure 5" in render_fig5(loads)
