"""Fast unit tests for table helpers (no paper-scale runs)."""

import pytest

from repro.experiments.runner import GridResult
from repro.experiments.tables import GainTable, gain_table


def synthetic_grid(app="miniMD"):
    """Grid where the proposed policy is exactly 2x faster than random,
    1.25x faster than sequential, and equal to load_aware."""
    policies = ("random", "sequential", "load_aware", "network_load_aware")
    times = {
        "random": {(8, 16): [4.0, 8.0]},
        "sequential": {(8, 16): [2.5, 5.0]},
        "load_aware": {(8, 16): [2.0, 4.0]},
        "network_load_aware": {(8, 16): [2.0, 4.0]},
    }
    return GridResult(
        app_name=app,
        proc_counts=(8,),
        sizes=(16,),
        repeats=2,
        policies=policies,
        times=times,
        allocations={p: {} for p in policies},
        loads_per_core={p: {(8, 16): [0.1, 0.1]} for p in policies},
    )


class TestGainTable:
    def test_gain_values(self):
        table = gain_table(synthetic_grid())
        assert table.gains["random"].average == pytest.approx(50.0)
        assert table.gains["sequential"].average == pytest.approx(20.0)
        assert table.gains["load_aware"].average == pytest.approx(0.0)

    def test_cov_per_policy(self):
        table = gain_table(synthetic_grid())
        # times [2, 4]: std=1, mean=3 -> CoV 1/3
        assert table.cov["network_load_aware"] == pytest.approx(1.0 / 3.0)

    def test_render_contains_rows(self):
        text = gain_table(synthetic_grid()).render(table_no=2)
        assert "Table 2" in text
        assert "50.0%" in text
        assert "coefficient of variation" in text

    def test_single_repeat_cov_zero(self):
        grid = synthetic_grid()
        for p in grid.policies:
            grid.times[p] = {(8, 16): [3.0]}
        table = gain_table(grid)
        assert all(v == 0.0 for v in table.cov.values())
