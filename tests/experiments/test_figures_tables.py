"""Smoke-scale tests for every figure and table driver.

Full paper-scale runs live in ``benchmarks/``; here each driver runs on a
reduced grid/horizon and we verify structure plus the qualitative claims
the paper makes about each artefact.
"""

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.scenario import paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(seed=11, warmup_s=1800.0)


@pytest.fixture(scope="module")
def minimd_grid(scenario):
    return figures.fig4(
        scenario=scenario,
        proc_counts=(8, 32),
        sizes=(16,),
        repeats=2,
        gap_s=120.0,
    )


@pytest.fixture(scope="module")
def minife_grid(scenario):
    return figures.fig6(
        scenario=scenario,
        proc_counts=(8, 32),
        sizes=(96,),
        repeats=2,
        gap_s=120.0,
    )


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig1(seed=2, hours=6.0, sample_period_s=600.0)

    def test_structure(self, result):
        assert len(result.sample_nodes) == 20
        assert len(result.trace.times) == 36

    def test_stats_in_paper_bands(self, result):
        s = result.summary()
        assert 10.0 <= s["mean_cpu_util_pct"] <= 45.0  # paper: 20-35 %
        assert s["max_cpu_load"] > s["mean_cpu_load"]  # spikes exist
        assert 2.0 <= s["mean_memory_gb"] <= 8.0  # ~25 % of 16 GB

    def test_render(self, result):
        text = result.render()
        assert "Figure 1" in text
        assert result.node_a in text and result.node_b in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig2(
            seed=2,
            n_nodes=20,
            n_heatmap_samples=3,
            heatmap_gap_s=120.0,
            series_hours=3.0,
            series_period_s=600.0,
        )

    def test_heatmap_symmetric(self, result):
        m = result.mean_bandwidth
        mask = ~np.isnan(m)
        assert np.allclose(m[mask], m.T[mask])

    def test_proximity_structure(self, result):
        """Paper: closer nodes have higher bandwidth (negative corr)."""
        assert result.proximity_correlation() < 0.0

    def test_series_tracked(self, result):
        assert result.pair_series.shape[1] == 3
        assert (result.pair_series > 0).all()

    def test_render(self, result):
        text = result.render()
        assert "Figure 2(a)" in text and "Figure 2(b)" in text


class TestFig4AndTable2:
    def test_network_load_aware_wins_on_average(self, minimd_grid):
        t = tables.table2(minimd_grid)
        assert t.gains["random"].average > 0
        # Not every baseline must lose in a smoke run, but random should
        # lose clearly and the full ordering is checked at bench scale.

    def test_render_fig4(self, minimd_grid):
        text = figures.render_fig4(minimd_grid)
        assert "miniMD" in text and "#procs = 8" in text

    def test_table2_requires_minimd(self, minife_grid):
        with pytest.raises(ValueError):
            tables.table2(minife_grid)

    def test_table2_render(self, minimd_grid):
        text = tables.table2(minimd_grid).render(table_no=2)
        assert "Average Gain" in text and "coefficient of variation" in text


class TestFig5:
    def test_loads_per_policy(self, minimd_grid):
        loads = figures.fig5(minimd_grid)
        assert set(loads) == set(minimd_grid.policies)
        # load-aware picks the least-loaded nodes by construction
        assert loads["load_aware"] <= loads["random"]
        text = figures.render_fig5(loads)
        assert "Figure 5" in text


class TestFig6AndTable3:
    def test_structure(self, minife_grid):
        assert minife_grid.app_name == "miniFE"
        t = tables.table3(minife_grid)
        assert set(t.gains) == {"random", "sequential", "load_aware"}

    def test_table3_requires_minife(self, minimd_grid):
        with pytest.raises(ValueError):
            tables.table3(minimd_grid)

    def test_render_fig6(self, minife_grid):
        assert "miniFE" in figures.render_fig6(minife_grid)


class TestTable4AndFig7:
    @pytest.fixture(scope="class")
    def analysis(self, scenario):
        return tables.table4(scenario=scenario)

    def test_all_policies_present(self, analysis):
        assert set(analysis.runs) == {
            "random", "sequential", "load_aware", "network_load_aware",
        }

    def test_paper_shape(self, analysis):
        """Net-aware group: low BW complement and low latency (Table 4)."""
        ours = analysis.group_state("network_load_aware")
        rnd = analysis.group_state("random")
        assert ours["avg_bandwidth_complement_mbs"] <= rnd["avg_bandwidth_complement_mbs"]
        assert ours["avg_latency_us"] <= rnd["avg_latency_us"]

    def test_render(self, analysis):
        text = analysis.render()
        assert "Table 4" in text and "Avg. CPU load" in text

    def test_fig7_structure(self, scenario):
        result = figures.fig7(scenario=scenario)
        n = len(result.nodes)
        assert result.bandwidth_complement.shape == (n, n)
        assert len(result.cpu_load) == n
        text = result.render()
        assert "Figure 7" in text and "CPU load" in text
