"""AllocationAnalysis unit tests with synthetic runs (Table 4 shape)."""

import pytest

from repro.core.policies import Allocation, AllocationRequest
from repro.experiments.runner import PolicyRun
from repro.experiments.tables import AllocationAnalysis
from repro.simmpi.job import ExecutionReport
from tests.core.conftest import make_snapshot, make_view


def run_for(nodes, time_s, request):
    alloc = Allocation(
        policy="x",
        nodes=tuple(nodes),
        procs={n: request.n_processes // len(nodes) for n in nodes},
        request=request,
        snapshot_time=0.0,
    )
    report = ExecutionReport(
        app="toy", n_ranks=request.n_processes, nodes=tuple(nodes),
        total_time_s=time_s, compute_time_s=time_s / 2,
        comm_time_s=time_s / 2, steps=10,
    )
    return PolicyRun(policy="x", allocation=alloc, report=report)


class TestGroupState:
    def test_metrics_computed_over_group_pairs(self):
        views = {
            "a": make_view("a", load=1.0),
            "b": make_view("b", load=3.0),
            "c": make_view("c", load=5.0),
        }
        snap = make_snapshot(
            views,
            bandwidth={("a", "b"): 100.0, ("a", "c"): 25.0, ("b", "c"): 75.0},
            latency={("a", "b"): 80.0, ("a", "c"): 400.0, ("b", "c"): 120.0},
        )
        request = AllocationRequest(4, ppn=2)
        analysis = AllocationAnalysis(
            snapshot=snap,
            runs={"p": run_for(["a", "b"], 5.0, request)},
        )
        st = analysis.group_state("p")
        assert st["avg_cpu_load"] == pytest.approx(2.0)
        # complement of available bandwidth: 125 - 100 = 25
        assert st["avg_bandwidth_complement_mbs"] == pytest.approx(25.0)
        assert st["avg_latency_us"] == pytest.approx(80.0)
        assert st["execution_time_s"] == 5.0

    def test_render_has_all_columns(self):
        views = {"a": make_view("a"), "b": make_view("b")}
        snap = make_snapshot(views)
        request = AllocationRequest(4, ppn=2)
        analysis = AllocationAnalysis(
            snapshot=snap, runs={"p": run_for(["a", "b"], 1.0, request)}
        )
        text = analysis.render()
        for col in ("Avg. CPU load", "BW complement", "latency", "Exec time"):
            assert col in text
