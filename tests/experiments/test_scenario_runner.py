"""Integration tests for scenarios and the experiment runner.

These run small clusters and short horizons to stay fast while still
exercising the full §5 protocol end to end.
"""

import numpy as np
import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import AllocationRequest
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.runner import POLICY_ORDER, compare_policies, run_grid
from repro.experiments.scenario import Scenario, paper_scenario, small_scenario


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(n_nodes=10, seed=3, warmup_s=900.0, nodes_per_switch=5)


class TestScenario:
    def test_small_scenario_wired(self, scenario):
        assert len(scenario.cluster) == 10
        snap = scenario.snapshot()
        assert len(snap.nodes) == 10

    def test_advance_moves_clock(self, scenario):
        t = scenario.engine.now
        scenario.advance(60.0)
        assert scenario.engine.now == t + 60.0

    def test_broker_from_scenario(self, scenario):
        broker = scenario.broker()
        res = broker.request(
            AllocationRequest(8, ppn=4, tradeoff=MINIMD_TRADEOFF)
        )
        assert res.allocation.n_nodes == 2

    def test_without_monitoring(self):
        sc = paper_scenario(seed=0, warmup_s=0.0, with_monitoring=False)
        assert sc.monitoring is None
        with pytest.raises(RuntimeError):
            sc.snapshot()


class TestComparePolicies:
    def test_all_policies_run(self, scenario):
        app = MiniMD(8, MiniMDConfig(timesteps=50))
        comparison = compare_policies(
            scenario,
            app,
            AllocationRequest(8, ppn=4, tradeoff=MINIMD_TRADEOFF),
            rng=np.random.default_rng(0),
        )
        assert set(comparison.runs) == set(POLICY_ORDER)
        for run in comparison.runs.values():
            assert run.time_s > 0
            assert run.mean_load_per_core >= 0

    def test_runs_share_snapshot_time(self, scenario):
        app = MiniMD(8, MiniMDConfig(timesteps=50))
        comparison = compare_policies(
            scenario,
            app,
            AllocationRequest(8, ppn=4),
            rng=np.random.default_rng(0),
        )
        times = {r.allocation.snapshot_time for r in comparison.runs.values()}
        assert len(times) == 1


class TestRunGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        sc = small_scenario(n_nodes=10, seed=7, warmup_s=900.0, nodes_per_switch=5)
        return run_grid(
            sc,
            lambda s: MiniMD(s, MiniMDConfig(timesteps=50)),
            proc_counts=(8,),
            sizes=(8, 16),
            repeats=2,
            gap_s=120.0,
        )

    def test_grid_shape(self, grid):
        assert grid.proc_counts == (8,)
        assert grid.sizes == (8, 16)
        for p in POLICY_ORDER:
            for key in [(8, 8), (8, 16)]:
                assert len(grid.times[p][key]) == 2

    def test_mean_time(self, grid):
        assert grid.mean_time("random", 8, 8) > 0

    def test_paired_times_alignment(self, grid):
        a, b = grid.paired_times("random", "network_load_aware")
        assert len(a) == len(b) == 4

    def test_repeats_differ(self, grid):
        """Between repeats the cluster evolved, so times should vary."""
        varied = any(
            len(set(v)) > 1
            for v in grid.times["network_load_aware"].values()
        )
        assert varied

    def test_loads_recorded(self, grid):
        assert grid.mean_load_per_core("random") >= 0.0

    def test_allocations_recorded(self, grid):
        allocs = grid.allocations["sequential"][(8, 8)]
        assert len(allocs) == 2
        assert all(a.policy == "sequential" for a in allocs)

    def test_to_csv(self, grid, tmp_path):
        path = tmp_path / "grid.csv"
        text = grid.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        header, rows = lines[0], lines[1:]
        assert header.startswith("app,policy,procs,size,repeat")
        # 4 policies x 2 configs x 2 repeats
        assert len(rows) == 16
        assert all(r.split(",")[0] == "miniMD" for r in rows)
