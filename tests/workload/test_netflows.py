"""Tests for background network transfers."""

import numpy as np
import pytest

from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.flows import Flow
from repro.workload.netflows import NetFlowConfig, NetFlowProcess


def make_proc(engine, config=None, seed=0, active=None):
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    active = active if active is not None else []
    return NetFlowProcess(
        engine,
        topo.nodes,
        topo.switch_of,
        config or NetFlowConfig(),
        np.random.default_rng(seed),
        add_flow=active.append,
        remove_flow=lambda f: active.remove(f),
    ), active


class TestNetFlowConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"arrival_rate_per_hour": 0.0},
            {"mean_duration_s": 0.0},
            {"demand_cap_mbs": 0.0},
            {"cross_switch_prob": 2.0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            NetFlowConfig(**kw)


class TestNetFlowProcess:
    def test_needs_two_nodes(self):
        eng = Engine()
        with pytest.raises(ValueError):
            NetFlowProcess(
                eng, ["only"], lambda n: "s", NetFlowConfig(),
                np.random.default_rng(0),
                add_flow=lambda f: None, remove_flow=lambda f: None,
            )

    def test_flows_created_and_capped(self):
        eng = Engine()
        cfg = NetFlowConfig(
            arrival_rate_per_hour=360.0, mean_duration_s=1e9, demand_cap_mbs=50.0
        )
        _proc, active = make_proc(eng, cfg)
        eng.run(3600.0)
        assert active
        assert all(f.demand_mbs <= 50.0 for f in active)

    def test_flows_drain_after_stop(self):
        eng = Engine()
        cfg = NetFlowConfig(arrival_rate_per_hour=360.0, mean_duration_s=120.0)
        proc, active = make_proc(eng, cfg)
        eng.run(3600.0)
        proc.stop()
        eng.run(48 * 3600.0)
        assert active == []

    def test_cross_switch_bias(self):
        eng = Engine()
        cfg = NetFlowConfig(
            arrival_rate_per_hour=720.0, mean_duration_s=1e9,
            cross_switch_prob=1.0,
        )
        proc, active = make_proc(eng, cfg)
        eng.run(3600.0)
        _, topo = uniform_cluster(8, nodes_per_switch=4)
        assert all(
            topo.switch_of(f.src) != topo.switch_of(f.dst) for f in active
        )

    def test_same_switch_only(self):
        eng = Engine()
        cfg = NetFlowConfig(
            arrival_rate_per_hour=720.0, mean_duration_s=1e9,
            cross_switch_prob=0.0,
        )
        proc, active = make_proc(eng, cfg)
        eng.run(3600.0)
        _, topo = uniform_cluster(8, nodes_per_switch=4)
        assert all(
            topo.switch_of(f.src) == topo.switch_of(f.dst) for f in active
        )

    def test_endpoints_always_differ(self):
        eng = Engine()
        proc, active = make_proc(
            eng, NetFlowConfig(arrival_rate_per_hour=720.0, mean_duration_s=1e9)
        )
        eng.run(3600.0)
        assert all(f.src != f.dst for f in active)
