"""Tests for the BackgroundWorkload orchestrator."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel
from repro.workload.generator import BackgroundWorkload, WorkloadConfig


@pytest.fixture
def setup():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    engine = Engine()
    return engine, cluster, network


class TestWorkloadConfig:
    @pytest.mark.parametrize(
        "kw", [{"tick_s": 0.0}, {"ambient_load_theta": 0.0}, {"busyness_sigma": -1.0}]
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            WorkloadConfig(**kw)


class TestBackgroundWorkload:
    def test_states_populated_after_run(self, setup):
        engine, cluster, network = setup
        BackgroundWorkload(engine, cluster, network, seed=0)
        engine.run(3600.0)
        loads = [cluster.state(n).cpu_load for n in cluster.names]
        assert any(v > 0 for v in loads)
        utils = [cluster.state(n).cpu_util for n in cluster.names]
        assert all(0.0 <= u <= 100.0 for u in utils)

    def test_memory_capped_at_physical(self, setup):
        engine, cluster, network = setup
        BackgroundWorkload(engine, cluster, network, seed=0)
        engine.run(6 * 3600.0)
        for n in cluster.names:
            assert cluster.state(n).memory_used_gb <= cluster.spec(n).memory_gb

    def test_deterministic_given_seed(self):
        def run(seed):
            specs, topo = uniform_cluster(4, nodes_per_switch=2)
            cluster = Cluster(specs, topo)
            engine = Engine()
            BackgroundWorkload(engine, cluster, NetworkModel(topo), seed=seed)
            engine.run(3600.0)
            return [cluster.state(n).cpu_load for n in cluster.names]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_busyness_varies_across_nodes(self, setup):
        engine, cluster, network = setup
        wl = BackgroundWorkload(engine, cluster, network, seed=3)
        vals = list(wl.busyness.values())
        assert len(set(vals)) == len(vals)
        assert all(v > 0 for v in vals)

    def test_flow_rate_reflects_network(self, setup):
        engine, cluster, network = setup
        BackgroundWorkload(engine, cluster, network, seed=0)
        engine.run(12 * 3600.0)
        rates = network.node_flow_rates()
        # ground truth state mirrors the fair-share solution exactly at
        # refresh time (states refresh on every tick)
        for n, r in rates.items():
            if n in cluster:
                assert cluster.state(n).flow_rate_mbs == pytest.approx(r)
        if len(network.flows):
            assert sum(rates.values()) > 0

    def test_stop_freezes_generation(self, setup):
        engine, cluster, network = setup
        wl = BackgroundWorkload(engine, cluster, network, seed=0)
        engine.run(3600.0)
        wl.stop()
        engine.run(72 * 3600.0)
        # all sessions/jobs/flows eventually drain
        assert len(network.flows) == 0
        assert all(s.user_count == 0 for s in wl._sessions.values())

    def test_load_provider_wired(self, setup):
        engine, cluster, network = setup
        BackgroundWorkload(engine, cluster, network, seed=0)
        engine.run(3600.0)
        # endpoint factor reflects ground-truth load
        n1, n2 = cluster.names[:2]
        factor = network.endpoint_bw_factor(n1, n2)
        assert 0.0 < factor <= 1.0

    def test_calibration_bands(self):
        """48-h statistics stay in the paper's Figure 1 bands."""
        specs, topo = uniform_cluster(12, nodes_per_switch=4)
        cluster = Cluster(specs, topo)
        engine = Engine()
        network = NetworkModel(topo)
        BackgroundWorkload(engine, cluster, network, seed=1)
        utils, loads, mems = [], [], []
        for _ in range(48):
            engine.run(3600.0)
            for n in cluster.names:
                st = cluster.state(n)
                utils.append(st.cpu_util)
                loads.append(st.cpu_load / cluster.spec(n).cores)
                mems.append(st.memory_used_gb / cluster.spec(n).memory_gb)
        assert 12.0 <= np.mean(utils) <= 45.0  # paper: 20-35 %
        assert 0.1 <= np.mean(loads) <= 1.2    # paper Fig 5: 0.3-0.7/core
        assert 0.15 <= np.mean(mems) <= 0.5    # paper: ~25 % used
