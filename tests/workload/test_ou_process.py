"""Tests for the Ornstein–Uhlenbeck process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.ou_process import OUProcess


class TestConstruction:
    def test_starts_at_mu_by_default(self):
        assert OUProcess(mu=2.0, theta=0.1, sigma=0.5).x == 2.0

    def test_x0_override(self):
        assert OUProcess(mu=2.0, theta=0.1, sigma=0.5, x0=5.0).x == 5.0

    def test_floor_applied_to_x0(self):
        p = OUProcess(mu=1.0, theta=0.1, sigma=0.5, x0=-3.0, floor=0.0)
        assert p.x == 0.0

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            OUProcess(mu=0.0, theta=0.0, sigma=0.1)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            OUProcess(mu=0.0, theta=0.1, sigma=-1.0)


class TestDynamics:
    def test_zero_sigma_decays_to_mu(self):
        p = OUProcess(mu=1.0, theta=0.5, sigma=0.0, x0=10.0)
        rng = np.random.default_rng(0)
        for _ in range(100):
            p.step(10.0, rng)
        assert p.x == pytest.approx(1.0, abs=1e-3)

    def test_never_below_floor(self):
        p = OUProcess(mu=0.1, theta=0.01, sigma=1.0, floor=0.0)
        rng = np.random.default_rng(1)
        for _ in range(500):
            assert p.step(5.0, rng) >= 0.0

    def test_invalid_dt(self):
        p = OUProcess(mu=0.0, theta=0.1, sigma=0.1)
        with pytest.raises(ValueError):
            p.step(0.0, np.random.default_rng(0))

    def test_stationary_mean_near_mu(self):
        p = OUProcess(mu=3.0, theta=0.1, sigma=0.2, floor=-100.0)
        rng = np.random.default_rng(2)
        # burn in, then sample
        for _ in range(200):
            p.step(1.0, rng)
        samples = [p.step(1.0, rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(3.0, abs=0.15)

    def test_stationary_std_formula(self):
        p = OUProcess(mu=0.0, theta=0.5, sigma=1.0)
        assert p.stationary_std() == pytest.approx(1.0)

    def test_exact_discretisation_stationary_std(self):
        p = OUProcess(mu=0.0, theta=0.2, sigma=0.4, floor=-1e9)
        rng = np.random.default_rng(3)
        for _ in range(500):
            p.step(1.0, rng)
        samples = np.array([p.step(1.0, rng) for _ in range(20000)])
        assert samples.std() == pytest.approx(p.stationary_std(), rel=0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        mu=st.floats(0.0, 5.0),
        dt=st.floats(0.1, 600.0),
        seed=st.integers(0, 1000),
    )
    def test_step_is_finite(self, mu, dt, seed):
        p = OUProcess(mu=mu, theta=0.01, sigma=0.3)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            assert np.isfinite(p.step(dt, rng))
