"""Tests for the external-load hook (scheduler ↔ workload coupling)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel
from repro.workload.generator import BackgroundWorkload


@pytest.fixture
def wl():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    engine = Engine()
    workload = BackgroundWorkload(engine, cluster, NetworkModel(topo), seed=0)
    return engine, cluster, workload


class TestExternalLoad:
    def test_add_raises_ground_truth_immediately(self, wl):
        _, cluster, workload = wl
        before = cluster.state("node1").cpu_load
        workload.add_external_load("node1", 4.0)
        assert cluster.state("node1").cpu_load == pytest.approx(before + 4.0)

    def test_remove_restores(self, wl):
        _, cluster, workload = wl
        workload.add_external_load("node1", 4.0)
        workload.add_external_load("node1", -4.0)
        assert "node1" not in workload.external_load

    def test_accumulates(self, wl):
        _, cluster, workload = wl
        workload.add_external_load("node1", 2.0)
        workload.add_external_load("node1", 3.0)
        assert workload.external_load["node1"] == 5.0

    def test_survives_workload_ticks(self, wl):
        engine, cluster, workload = wl
        workload.add_external_load("node1", 6.0)
        engine.run(600.0)  # many refresh ticks
        # the external component persists through every refresh
        other = cluster.state("node2").cpu_load
        assert cluster.state("node1").cpu_load >= 6.0
        assert cluster.state("node1").cpu_load > other

    def test_feeds_endpoint_latency(self, wl):
        engine, cluster, workload = wl
        net = workload.network
        before = net.latency_us("node1", "node2")
        workload.add_external_load("node1", 12.0)
        assert net.latency_us("node1", "node2") > before

    def test_visible_to_monitor(self, wl):
        engine, cluster, workload = wl
        from repro.monitor.system import MonitoringSystem

        mon = MonitoringSystem(engine, cluster, workload.network, seed=1)
        mon.start()
        workload.add_external_load("node3", 8.0)
        engine.run(60.0)
        view = mon.snapshot().nodes["node3"]
        assert view.cpu_load["now"] >= 8.0
