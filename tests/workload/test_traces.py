"""Tests for trace recording."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel
from repro.workload.generator import BackgroundWorkload
from repro.workload.traces import FIELDS, TraceRecorder


@pytest.fixture
def live():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    engine = Engine()
    BackgroundWorkload(engine, cluster, network, seed=0)
    return engine, cluster, network


class TestTraceRecorder:
    def test_sampling_cadence(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=100.0)
        engine.run(1000.0)
        trace = rec.finish()
        assert len(trace.times) == 10
        assert np.allclose(np.diff(trace.times), 100.0)

    def test_invalid_period(self, live):
        engine, cluster, _ = live
        with pytest.raises(ValueError):
            TraceRecorder(engine, cluster, period_s=0.0)

    def test_pairs_require_network(self, live):
        engine, cluster, _ = live
        with pytest.raises(ValueError, match="network"):
            TraceRecorder(engine, cluster, pairs=[("node1", "node2")])

    def test_series_access(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=60.0)
        engine.run(600.0)
        trace = rec.finish()
        s = trace.series("node1", "cpu_load")
        assert s.shape == (10,)
        with pytest.raises(KeyError):
            trace.series("ghost", "cpu_load")
        with pytest.raises(KeyError):
            trace.series("node1", "nonsense")

    def test_mean_series(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=60.0)
        engine.run(600.0)
        trace = rec.finish()
        m = trace.mean_series("cpu_util")
        manual = trace.data[:, :, FIELDS.index("cpu_util")].mean(axis=1)
        assert np.allclose(m, manual)

    def test_pair_bandwidth_tracking(self, live):
        engine, cluster, network = live
        rec = TraceRecorder(
            engine,
            cluster,
            period_s=120.0,
            network=network,
            pairs=[("node2", "node1"), ("node1", "node3")],
        )
        engine.run(1200.0)
        trace = rec.finish()
        # pair stored canonically but accessible in either order
        s1 = trace.pair_series(("node1", "node2"))
        s2 = trace.pair_series(("node2", "node1"))
        assert np.array_equal(s1, s2)
        assert (s1 > 0).all()
        with pytest.raises(KeyError):
            trace.pair_series(("node1", "node4"))

    def test_pair_series_without_tracking(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=60.0)
        engine.run(120.0)
        trace = rec.finish()
        with pytest.raises(ValueError):
            trace.pair_series(("node1", "node2"))

    def test_csv_round_trip(self, live, tmp_path):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=60.0)
        engine.run(180.0)
        trace = rec.finish()
        path = tmp_path / "trace.csv"
        text = trace.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().split("\n")
        assert lines[0] == "time,node," + ",".join(FIELDS)
        assert len(lines) == 1 + 3 * len(cluster.names)

    def test_finish_stops_sampling(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=60.0)
        engine.run(120.0)
        trace = rec.finish()
        n = len(trace.times)
        engine.run(600.0)
        assert len(trace.times) == n

    def test_empty_trace(self, live):
        engine, cluster, _ = live
        rec = TraceRecorder(engine, cluster, period_s=1000.0)
        trace = rec.finish()
        assert trace.data.shape[0] == 0
