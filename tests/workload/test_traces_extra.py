"""Extra trace tests: replay-grade fidelity of recorded fields."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel
from repro.workload.generator import BackgroundWorkload
from repro.workload.traces import FIELDS, TraceRecorder


class TestFieldFidelity:
    def test_samples_match_ground_truth_at_sample_instant(self):
        specs, topo = uniform_cluster(3, nodes_per_switch=3)
        cluster = Cluster(specs, topo)
        engine = Engine()
        BackgroundWorkload(engine, cluster, NetworkModel(topo), seed=5)
        captured: dict[str, tuple] = {}

        class Spy(TraceRecorder):
            def _sample(self, now):
                super()._sample(now)
                if now == 600.0:
                    for n in cluster.names:
                        st = cluster.state(n)
                        captured[n] = (
                            st.cpu_load, st.cpu_util, st.memory_used_gb,
                            st.flow_rate_mbs, st.users,
                        )

        rec = Spy(engine, cluster, period_s=300.0)
        engine.run(900.0)
        trace = rec.finish()
        idx = list(trace.times).index(600.0)
        for j, n in enumerate(trace.nodes):
            assert tuple(trace.data[idx, j]) == pytest.approx(captured[n])

    def test_fields_enumeration_is_stable(self):
        """Downstream code (replay, CSV) indexes FIELDS positionally."""
        assert FIELDS == (
            "cpu_load", "cpu_util", "memory_used_gb", "flow_rate_mbs", "users",
        )

    def test_users_column_is_integral(self):
        specs, topo = uniform_cluster(3, nodes_per_switch=3)
        cluster = Cluster(specs, topo)
        engine = Engine()
        BackgroundWorkload(engine, cluster, NetworkModel(topo), seed=5)
        rec = TraceRecorder(engine, cluster, period_s=300.0)
        engine.run(1800.0)
        trace = rec.finish()
        users = trace.data[:, :, FIELDS.index("users")]
        assert np.allclose(users, np.round(users))
