"""Tests for trace replay."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.workload.replay import TraceReplayer
from repro.workload.traces import FIELDS, ClusterTrace


def make_trace(nodes, times, loads):
    """Trace where cpu_load varies per (time, node) and the rest is fixed."""
    data = np.zeros((len(times), len(nodes), len(FIELDS)))
    data[:, :, FIELDS.index("cpu_load")] = loads
    data[:, :, FIELDS.index("cpu_util")] = 20.0
    data[:, :, FIELDS.index("memory_used_gb")] = 4.0
    data[:, :, FIELDS.index("flow_rate_mbs")] = 1.0
    data[:, :, FIELDS.index("users")] = 2.0
    return ClusterTrace(nodes=list(nodes), times=np.array(times, float), data=data)


@pytest.fixture
def env():
    specs, topo = uniform_cluster(2, nodes_per_switch=2)
    return Engine(), Cluster(specs, topo)


class TestTraceReplayer:
    def test_initial_state_applied_immediately(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 100.0], [[3.0, 5.0], [7.0, 9.0]])
        TraceReplayer(engine, cluster, trace)
        assert cluster.state("node1").cpu_load == pytest.approx(3.0)
        assert cluster.state("node2").cpu_load == pytest.approx(5.0)
        assert cluster.state("node1").users == 2

    def test_interpolation(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 100.0], [[0.0, 0.0], [10.0, 20.0]])
        TraceReplayer(engine, cluster, trace, period_s=25.0)
        engine.run(50.0)
        assert cluster.state("node1").cpu_load == pytest.approx(5.0)
        assert cluster.state("node2").cpu_load == pytest.approx(10.0)

    def test_zero_order_hold(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 100.0], [[2.0, 2.0], [8.0, 8.0]])
        TraceReplayer(engine, cluster, trace, period_s=25.0, interpolate=False)
        engine.run(50.0)
        assert cluster.state("node1").cpu_load == pytest.approx(2.0)
        engine.run(50.0)
        assert cluster.state("node1").cpu_load == pytest.approx(8.0)

    def test_final_sample_holds(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 10.0], [[1.0, 1.0], [4.0, 4.0]])
        TraceReplayer(engine, cluster, trace, period_s=5.0)
        engine.run(500.0)
        assert cluster.state("node1").cpu_load == pytest.approx(4.0)

    def test_loop_wraps(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 100.0], [[0.0, 0.0], [10.0, 10.0]])
        TraceReplayer(engine, cluster, trace, period_s=10.0, loop=True)
        engine.run(150.0)  # 150 % 100 = 50 -> interpolated 5.0
        assert cluster.state("node1").cpu_load == pytest.approx(5.0)

    def test_empty_trace_rejected(self, env):
        engine, cluster = env
        empty = ClusterTrace(
            nodes=list(cluster.names),
            times=np.array([]),
            data=np.empty((0, 2, len(FIELDS))),
        )
        with pytest.raises(ValueError, match="empty"):
            TraceReplayer(engine, cluster, empty)

    def test_missing_nodes_rejected(self, env):
        engine, cluster = env
        trace = make_trace(["node1"], [0.0], [[1.0]])
        with pytest.raises(ValueError, match="lacks nodes"):
            TraceReplayer(engine, cluster, trace)

    def test_stop_freezes_state(self, env):
        engine, cluster = env
        trace = make_trace(cluster.names, [0.0, 100.0], [[0.0, 0.0], [10.0, 10.0]])
        rep = TraceReplayer(engine, cluster, trace, period_s=10.0)
        engine.run(20.0)
        frozen = cluster.state("node1").cpu_load
        rep.stop()
        engine.run(80.0)
        assert cluster.state("node1").cpu_load == frozen

    def test_record_then_replay_roundtrip(self):
        """A trace recorded from a live workload replays to matching state."""
        from repro.net.model import NetworkModel
        from repro.workload.generator import BackgroundWorkload
        from repro.workload.traces import TraceRecorder

        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        live = Cluster(specs, topo)
        eng1 = Engine()
        BackgroundWorkload(eng1, live, NetworkModel(topo), seed=0)
        rec = TraceRecorder(eng1, live, period_s=60.0)
        eng1.run(600.0)
        trace = rec.finish()

        replayed = Cluster(specs, topo)
        eng2 = Engine()
        TraceReplayer(eng2, replayed, trace, period_s=60.0)
        eng2.run(300.0)
        # replay time is anchored at the trace's first sample (t=60), so
        # after 300 s of replay we are at recorded time 360
        idx = list(trace.times).index(360.0)
        for j, n in enumerate(trace.nodes):
            assert replayed.state(n).cpu_load == pytest.approx(
                trace.data[idx, j, FIELDS.index("cpu_load")]
            )
