"""Tests for interactive session arrivals/departures."""

import numpy as np
import pytest

from repro.des.engine import Engine
from repro.workload.sessions import SessionConfig, SessionProcess


def make_proc(engine, config=None, seed=0, changes=None, peer="other"):
    changes = changes if changes is not None else []
    return SessionProcess(
        engine,
        "n1",
        config or SessionConfig(),
        np.random.default_rng(seed),
        on_change=lambda n: changes.append(n),
        pick_peer=lambda node, rng: peer,
    )


class TestSessionConfig:
    def test_defaults(self):
        cfg = SessionConfig()
        assert cfg.arrival_rate_per_hour > 0

    @pytest.mark.parametrize(
        "kw",
        [
            {"arrival_rate_per_hour": 0.0},
            {"mean_duration_s": -1.0},
            {"mem_min_gb": -0.1},
            {"mem_min_gb": 2.0, "mem_max_gb": 1.0},
            {"streaming_prob": 1.5},
            {"stream_min_mbs": 5.0, "stream_max_mbs": 1.0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            SessionConfig(**kw)


class TestSessionProcess:
    def test_sessions_arrive_over_time(self):
        eng = Engine()
        proc = make_proc(eng, SessionConfig(arrival_rate_per_hour=60.0))
        eng.run(4 * 3600.0)
        # ~4 arrivals/hour-equivalent after departures; just check activity
        assert proc.user_count >= 0
        assert proc.cpu_load >= 0.0

    def test_on_change_fires(self):
        eng = Engine()
        changes: list[str] = []
        make_proc(
            eng, SessionConfig(arrival_rate_per_hour=120.0), changes=changes
        )
        eng.run(3600.0)
        assert changes and all(c == "n1" for c in changes)

    def test_departures_reduce_count(self):
        eng = Engine()
        cfg = SessionConfig(arrival_rate_per_hour=120.0, mean_duration_s=60.0)
        proc = make_proc(eng, cfg)
        eng.run(3600.0)
        peak = proc.user_count
        proc.stop()
        eng.run(24 * 3600.0)
        assert proc.user_count <= peak
        assert proc.user_count == 0  # all drained, no new arrivals

    def test_aggregates_sum_active_sessions(self):
        eng = Engine()
        proc = make_proc(
            eng,
            SessionConfig(arrival_rate_per_hour=240.0, mean_duration_s=1e9),
        )
        eng.run(3600.0)
        assert proc.user_count == len(proc.active)
        assert proc.cpu_load == pytest.approx(
            sum(s.cpu_load for s in proc.active.values())
        )
        assert proc.memory_gb == pytest.approx(
            sum(s.memory_gb for s in proc.active.values())
        )

    def test_streams_reference_active_sessions(self):
        eng = Engine()
        cfg = SessionConfig(
            arrival_rate_per_hour=240.0, streaming_prob=1.0, mean_duration_s=1e9
        )
        proc = make_proc(eng, cfg)
        eng.run(3600.0)
        streams = proc.streams()
        assert streams
        for sid, peer, mbs in streams:
            assert sid in proc.active
            assert peer == "other"
            assert cfg.stream_min_mbs <= mbs <= cfg.stream_max_mbs

    def test_no_peer_means_no_stream(self):
        eng = Engine()
        proc = SessionProcess(
            eng,
            "n1",
            SessionConfig(arrival_rate_per_hour=240.0, streaming_prob=1.0),
            np.random.default_rng(0),
            on_change=lambda n: None,
            pick_peer=lambda node, rng: None,
        )
        eng.run(3600.0)
        assert proc.streams() == []

    def test_stop_prevents_new_arrivals(self):
        eng = Engine()
        proc = make_proc(eng, SessionConfig(arrival_rate_per_hour=240.0))
        proc.stop()
        eng.run(3600.0)
        assert proc.user_count == 0
