"""Tests for background batch jobs (single-node, heavy, MPI)."""

import numpy as np
import pytest

from repro.des.engine import Engine
from repro.net.flows import Flow
from repro.workload.jobs import BatchJobConfig, BatchJobProcess


def make_proc(engine, nodes=None, config=None, seed=0, flows=None):
    nodes = nodes or [f"n{i}" for i in range(10)]
    flow_log = flows if flows is not None else []
    return BatchJobProcess(
        engine,
        nodes,
        config or BatchJobConfig(),
        np.random.default_rng(seed),
        on_change=lambda n: None,
        add_flow=flow_log.append,
        remove_flow=lambda f: flow_log.remove(f),
    )


class TestBatchJobConfig:
    def test_defaults(self):
        BatchJobConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"arrival_rate_per_hour": 0.0},
            {"heavy_prob": -0.1},
            {"heavy_prob": 0.9, "mpi_prob": 0.2},
            {"heavy_procs_min": 5, "heavy_procs_max": 2},
            {"mpi_nodes_min": 1},
            {"mpi_nodes_min": 5, "mpi_nodes_max": 3},
            {"mpi_procs_per_node_min": 4, "mpi_procs_per_node_max": 2},
            {"mpi_flow_min_mbs": 5.0, "mpi_flow_max_mbs": 1.0},
            {"mem_per_proc_gb": -1.0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            BatchJobConfig(**kw)


class TestBatchJobProcess:
    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            BatchJobProcess(
                Engine(),
                [],
                BatchJobConfig(),
                np.random.default_rng(0),
                on_change=lambda n: None,
            )

    def test_jobs_arrive_and_depart(self):
        eng = Engine()
        cfg = BatchJobConfig(arrival_rate_per_hour=120.0, mean_duration_s=300.0)
        proc = make_proc(eng, config=cfg)
        eng.run(3600.0)
        proc.stop()
        eng.run(48 * 3600.0)
        assert proc.active == {}

    def test_load_accounting(self):
        eng = Engine()
        cfg = BatchJobConfig(arrival_rate_per_hour=240.0, mean_duration_s=1e9)
        proc = make_proc(eng, config=cfg)
        eng.run(3600.0)
        total = sum(proc.load_on(f"n{i}") for i in range(10))
        expected = sum(sum(j.procs.values()) for j in proc.active.values())
        assert total == pytest.approx(expected)

    def test_mpi_jobs_use_consecutive_nodes(self):
        eng = Engine()
        nodes = [f"n{i:02d}" for i in range(10)]
        cfg = BatchJobConfig(
            arrival_rate_per_hour=240.0, mean_duration_s=1e9, mpi_prob=1.0,
            heavy_prob=0.0,
        )
        proc = make_proc(eng, nodes=nodes, config=cfg)
        eng.run(1800.0)
        mpi_jobs = [j for j in proc.active.values() if j.kind == "mpi"]
        assert mpi_jobs
        for job in mpi_jobs:
            idx = sorted(nodes.index(n) for n in job.nodes)
            gaps = np.diff(idx)
            # consecutive modulo wrap-around: at most one large gap
            assert sum(g != 1 for g in gaps) <= 1

    def test_mpi_jobs_create_flows(self):
        eng = Engine()
        flows: list[Flow] = []
        cfg = BatchJobConfig(
            arrival_rate_per_hour=240.0, mean_duration_s=1e9, mpi_prob=1.0,
            heavy_prob=0.0,
        )
        make_proc(eng, config=cfg, flows=flows)
        eng.run(1800.0)
        assert flows
        assert all(f.tag == "background_mpi" for f in flows)

    def test_flows_removed_on_departure(self):
        eng = Engine()
        flows: list[Flow] = []
        cfg = BatchJobConfig(
            arrival_rate_per_hour=240.0, mean_duration_s=60.0, mpi_prob=1.0,
            heavy_prob=0.0,
        )
        proc = make_proc(eng, config=cfg, flows=flows)
        eng.run(1800.0)
        proc.stop()
        eng.run(48 * 3600.0)
        assert flows == []

    def test_heavy_jobs_exceed_normal_procs(self):
        eng = Engine()
        cfg = BatchJobConfig(
            arrival_rate_per_hour=480.0, mean_duration_s=1e9,
            heavy_prob=1.0, mpi_prob=0.0,
        )
        proc = make_proc(eng, config=cfg)
        eng.run(1800.0)
        heavies = [j for j in proc.active.values() if j.kind == "heavy"]
        assert heavies
        for job in heavies:
            procs = next(iter(job.procs.values()))
            assert cfg.heavy_procs_min <= procs <= cfg.heavy_procs_max

    def test_memory_accounting(self):
        eng = Engine()
        cfg = BatchJobConfig(arrival_rate_per_hour=240.0, mean_duration_s=1e9)
        proc = make_proc(eng, config=cfg)
        eng.run(3600.0)
        for i in range(10):
            assert proc.memory_on(f"n{i}") >= 0.0
