"""Determinism sweep: every layer replays bit-identically from its seed.

These tests take the strongest reproducibility stance the repo makes —
rebuilding each subsystem twice from the same seed and demanding exact
equality — at several layers of the stack.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel
from repro.workload.generator import BackgroundWorkload


def build(seed, hours=2.0):
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    engine = Engine()
    net = NetworkModel(topo)
    BackgroundWorkload(engine, cluster, net, seed=seed)
    engine.run(hours * 3600.0)
    return cluster, net, engine


class TestGroundTruthDeterminism:
    def test_states_bit_identical(self):
        c1, _, _ = build(7)
        c2, _, _ = build(7)
        for n in c1.names:
            a, b = c1.state(n), c2.state(n)
            assert (a.cpu_load, a.cpu_util, a.memory_used_gb,
                    a.flow_rate_mbs, a.users) == (
                b.cpu_load, b.cpu_util, b.memory_used_gb,
                b.flow_rate_mbs, b.users,
            )

    def test_network_flows_identical(self):
        _, n1, _ = build(7)
        _, n2, _ = build(7)
        f1 = sorted((f.src, f.dst, f.demand_mbs, f.tag) for f in n1.flows)
        f2 = sorted((f.src, f.dst, f.demand_mbs, f.tag) for f in n2.flows)
        assert f1 == f2

    def test_event_counts_identical(self):
        _, _, e1 = build(7)
        _, _, e2 = build(7)
        assert e1.events_processed == e2.events_processed


class TestMeasurementDeterminism:
    def test_bandwidth_measurements_identical(self):
        _, n1, _ = build(9)
        _, n2, _ = build(9)
        pairs = [("node1", "node4"), ("node2", "node6")]
        assert n1.bulk_available_bandwidth(pairs) == pytest.approx(
            n2.bulk_available_bandwidth(pairs)
        )

    def test_latency_identical(self):
        _, n1, _ = build(9)
        _, n2, _ = build(9)
        assert n1.latency_us("node1", "node6") == n2.latency_us(
            "node1", "node6"
        )


class TestSeedSeparation:
    def test_subsystem_streams_are_isolated(self):
        """Adding draws to one named stream must not shift another."""
        from repro.util.rng import RngStream

        s1, s2 = RngStream(5), RngStream(5)
        _ = [s1.child("extra").normal() for _ in range(100)]  # perturb s1
        a = s1.child("workload").integers(0, 1 << 62)
        b = s2.child("workload").integers(0, 1 << 62)
        assert a == b
