"""Tests for the 3-D FFT (alltoall) proxy application."""

import pytest

from repro.apps.fft import FFT3D, FFTConfig


class TestFFT3D:
    def test_invalid(self):
        with pytest.raises(ValueError):
            FFT3D(0)
        with pytest.raises(ValueError):
            FFTConfig(steps=0)

    def test_points(self):
        assert FFT3D(64).points == 64**3

    def test_schedule_structure(self):
        app = FFT3D(128, FFTConfig(transforms_per_step=2, steps=100))
        blocks = app.schedule(32)
        assert len(blocks) == 1
        assert blocks[0].count == 100
        d = blocks[0].demand
        assert len(d.alltoall_mb) == 4  # 2 transposes x 2 transforms
        assert d.phases == ()  # no halo exchanges

    def test_per_pair_volume_scales_inverse_square_ranks(self):
        v8 = FFT3D(128).schedule(8)[0].demand.alltoall_mb[0]
        v16 = FFT3D(128).schedule(16)[0].demand.alltoall_mb[0]
        assert v8 == pytest.approx(4 * v16)

    def test_compute_grows_superlinearly_with_n(self):
        c64 = FFT3D(64).schedule(8)[0].demand.compute_gcycles
        c128 = FFT3D(128).schedule(8)[0].demand.compute_gcycles
        assert c128 > 8 * c64  # n^3 log n

    def test_network_heavy_tradeoff(self):
        t = FFT3D(128).recommended_tradeoff()
        assert t.beta >= 0.7

    def test_most_network_sensitive_app(self):
        """FFT's comm share exceeds miniMD's on the same footprint."""
        from repro.apps.minimd import MiniMD
        from repro.core.profiling import profile_app

        fft = profile_app(FFT3D(128), n_ranks=32)
        md = profile_app(MiniMD(16), n_ranks=32)
        assert fft.comm_fraction > md.comm_fraction


class TestAlltoallCost:
    def test_alltoall_monotone_in_ranks(self):
        from repro.cluster.topology import uniform_cluster
        from repro.net.model import NetworkModel
        from repro.simmpi import Placement, alltoall_time_s

        _, topo = uniform_cluster(8, nodes_per_switch=4)
        net = NetworkModel(topo)
        p4 = Placement.block(topo.nodes[:4], 1, 4)
        p8 = Placement.block(topo.nodes, 1, 8)
        assert alltoall_time_s(net, p8, 0.01) > alltoall_time_s(net, p4, 0.01)

    def test_single_rank_free(self):
        from repro.cluster.topology import uniform_cluster
        from repro.net.model import NetworkModel
        from repro.simmpi import Placement, alltoall_time_s

        _, topo = uniform_cluster(2, nodes_per_switch=2)
        net = NetworkModel(topo)
        assert alltoall_time_s(net, Placement(("node1",)), 1.0) == 0.0

    def test_negative_volume_rejected(self):
        from repro.cluster.topology import uniform_cluster
        from repro.net.model import NetworkModel
        from repro.simmpi import Placement, alltoall_time_s

        _, topo = uniform_cluster(2, nodes_per_switch=2)
        net = NetworkModel(topo)
        with pytest.raises(ValueError):
            alltoall_time_s(net, Placement(("node1", "node2")), -1.0)
