"""Tests for the generic 3-D stencil application."""

import pytest

from repro.apps.stencil import Stencil3D, StencilConfig


class TestStencil:
    def test_invalid(self):
        with pytest.raises(ValueError):
            Stencil3D(0)
        with pytest.raises(ValueError):
            StencilConfig(iterations=0)

    def test_total_steps(self):
        app = Stencil3D(64, StencilConfig(iterations=500, reduce_every=10))
        assert app.total_steps(8) == 500

    def test_leftover_iterations(self):
        app = Stencil3D(64, StencilConfig(iterations=23, reduce_every=10))
        assert app.total_steps(8) == 23

    def test_reduce_cadence(self):
        app = Stencil3D(64, StencilConfig(iterations=20, reduce_every=5))
        blocks = app.schedule(8)
        reduced = sum(
            b.count for b in blocks if b.demand.allreduce_mb
        )
        assert reduced == 4  # one per 5 iterations

    def test_tradeoff_between_the_two_mantevo_apps(self):
        t = Stencil3D(64).recommended_tradeoff()
        assert 0.3 <= t.alpha <= 0.4

    def test_compute_configurable(self):
        cheap = Stencil3D(64, StencilConfig(cycles_per_cell=1.0))
        costly = Stencil3D(64, StencilConfig(cycles_per_cell=100.0))
        assert (
            costly.schedule(8)[0].demand.compute_gcycles
            > cheap.schedule(8)[0].demand.compute_gcycles
        )
