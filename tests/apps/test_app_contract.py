"""Contract tests every application model must satisfy."""

import pytest

from repro.apps import FFT3D, MiniFE, MiniMD, Stencil3D

ALL_APPS = [
    ("miniMD", lambda: MiniMD(16)),
    ("miniFE", lambda: MiniFE(96)),
    ("stencil3d", lambda: Stencil3D(64)),
    ("fft3d", lambda: FFT3D(64)),
]


@pytest.mark.parametrize("name,factory", ALL_APPS)
class TestAppContract:
    def test_name_matches(self, name, factory):
        assert factory().name == name

    def test_tradeoff_valid(self, name, factory):
        t = factory().recommended_tradeoff()
        assert t.alpha + t.beta == pytest.approx(1.0)

    def test_schedule_positive_counts(self, name, factory):
        for block in factory().schedule(8):
            assert block.count > 0
            assert block.demand.compute_gcycles >= 0

    def test_total_steps_stable(self, name, factory):
        app = factory()
        assert app.total_steps(8) == app.total_steps(8)

    def test_messages_reference_valid_ranks(self, name, factory):
        n_ranks = 16
        for block in factory().schedule(n_ranks):
            for phase in block.demand.phases:
                for m in phase.messages:
                    assert 0 <= m.src_rank < n_ranks
                    assert 0 <= m.dst_rank < n_ranks
                    assert m.src_rank != m.dst_rank

    def test_invalid_rank_count_rejected(self, name, factory):
        with pytest.raises(ValueError):
            factory().schedule(0)

    def test_more_ranks_less_compute_each(self, name, factory):
        app = factory()
        c8 = app.schedule(8)[0].demand.compute_gcycles
        c32 = app.schedule(32)[0].demand.compute_gcycles
        assert c32 < c8

    def test_runs_on_simjob(self, name, factory):
        from repro.cluster.cluster import Cluster
        from repro.cluster.topology import uniform_cluster
        from repro.net.model import NetworkModel
        from repro.simmpi.job import SimJob
        from repro.simmpi.placement import Placement

        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        cluster, net = Cluster(specs, topo), NetworkModel(topo)
        placement = Placement.block(cluster.names, 2, 8)
        report = SimJob(factory(), placement, cluster, net).run()
        assert report.total_time_s > 0
        assert 0.0 <= report.comm_fraction <= 1.0
