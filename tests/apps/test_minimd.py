"""Tests for the miniMD application model."""

import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.weights import MINIMD_TRADEOFF


class TestConfiguration:
    def test_atom_count_is_4_s_cubed(self):
        assert MiniMD(8).atoms == 4 * 8**3  # 2K atoms (paper lower end)
        assert MiniMD(48).atoms == 4 * 48**3  # ~442K atoms (upper end)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MiniMD(0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MiniMDConfig(cycles_per_pair=0.0)
        with pytest.raises(ValueError):
            MiniMDConfig(timesteps=0)

    def test_recommended_tradeoff_is_papers(self):
        assert MiniMD(16).recommended_tradeoff() == MINIMD_TRADEOFF


class TestSchedule:
    def test_total_steps_match_config(self):
        app = MiniMD(16, MiniMDConfig(timesteps=1000))
        assert app.total_steps(32) == 1000

    def test_leftover_steps(self):
        app = MiniMD(16, MiniMDConfig(timesteps=105, reneighbor_every=20))
        assert app.total_steps(8) == 105

    def test_compute_scales_inverse_with_ranks(self):
        app = MiniMD(16)
        d8 = app.schedule(8)[0].demand
        d64 = app.schedule(64)[0].demand
        assert d8.compute_gcycles == pytest.approx(8 * d64.compute_gcycles)

    def test_compute_scales_with_problem_size(self):
        small = MiniMD(8).schedule(8)[0].demand
        big = MiniMD(16).schedule(8)[0].demand
        assert big.compute_gcycles == pytest.approx(
            8 * small.compute_gcycles
        )  # atoms ~ s^3

    def test_two_exchanges_per_plain_step(self):
        app = MiniMD(16)
        plain = app.schedule(32)[0].demand
        assert len(plain.phases) == 2  # forward + reverse

    def test_reneighbor_steps_heavier(self):
        app = MiniMD(16)
        blocks = app.schedule(32)
        reneigh = [
            b.demand for b in blocks if len(b.demand.phases) == 3
        ]
        plain = blocks[0].demand
        assert reneigh
        assert reneigh[0].compute_gcycles > plain.compute_gcycles

    def test_halo_volume_shrinks_with_more_ranks(self):
        v8 = max(
            m.volume_mb
            for m in MiniMD(32).schedule(8)[0].demand.phases[0].messages
        )
        v64 = max(
            m.volume_mb
            for m in MiniMD(32).schedule(64)[0].demand.phases[0].messages
        )
        assert v64 < v8

    def test_single_rank_has_no_messages(self):
        app = MiniMD(16)
        for block in app.schedule(1):
            for phase in block.demand.phases:
                assert phase.messages == ()
