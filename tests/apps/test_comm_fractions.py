"""Calibration checks: idle-cluster communication fractions per app.

§5 profiling bands on the paper's loaded cluster: miniMD 40-80 %,
miniFE 25-60 %. On an *idle* reference cluster fractions sit below their
loaded values; these tests pin the calibrated idle baselines and the
cross-app ordering, so model-constant drift is caught immediately.
"""

import pytest

from repro.apps import FFT3D, MiniFE, MiniMD, Stencil3D
from repro.core.profiling import profile_app


@pytest.fixture(scope="module")
def fractions():
    return {
        "minimd": profile_app(MiniMD(16), n_ranks=32).comm_fraction,
        "minife": profile_app(MiniFE(96), n_ranks=32).comm_fraction,
        "stencil": profile_app(Stencil3D(64), n_ranks=32).comm_fraction,
        "fft": profile_app(FFT3D(128), n_ranks=32).comm_fraction,
    }


class TestCommFractionCalibration:
    def test_minimd_band(self, fractions):
        assert 0.30 <= fractions["minimd"] <= 0.85

    def test_minife_band(self, fractions):
        assert 0.15 <= fractions["minife"] <= 0.65

    def test_ordering(self, fractions):
        """fft (alltoall) > miniMD (chatty halo) > miniFE (CG)."""
        assert fractions["fft"] > fractions["minimd"] > fractions["minife"]

    def test_all_fractions_proper(self, fractions):
        for name, f in fractions.items():
            assert 0.0 < f < 1.0, name

    def test_fraction_grows_with_scale(self):
        """Strong scaling: more ranks, less compute each, same latency —
        communication share rises (the paper's 64-process saturation)."""
        f8 = profile_app(MiniMD(16), n_ranks=8).comm_fraction
        f64 = profile_app(MiniMD(16), n_ranks=64, ppn=4).comm_fraction
        assert f64 > f8
