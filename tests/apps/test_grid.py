"""Tests for process-grid decomposition and halo messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.grid import (
    coord_of,
    halo_messages,
    neighbors,
    proc_grid,
    rank_of,
)


class TestProcGrid:
    def test_perfect_cubes(self):
        assert proc_grid(8) == (2, 2, 2)
        assert proc_grid(27) == (3, 3, 3)
        assert proc_grid(64) == (4, 4, 4)

    def test_common_counts(self):
        assert proc_grid(1) == (1, 1, 1)
        assert proc_grid(2) == (1, 1, 2)
        assert proc_grid(16) == (2, 2, 4)
        assert proc_grid(32) == (2, 4, 4)
        assert proc_grid(48) == (3, 4, 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            proc_grid(0)

    @given(st.integers(min_value=1, max_value=256))
    def test_product_equals_n(self, n):
        px, py, pz = proc_grid(n)
        assert px * py * pz == n
        assert px <= py <= pz


class TestCoords:
    def test_roundtrip(self):
        dims = (2, 3, 4)
        for r in range(24):
            assert rank_of(coord_of(r, dims), dims) == r

    def test_bounds(self):
        with pytest.raises(ValueError):
            coord_of(24, (2, 3, 4))
        with pytest.raises(ValueError):
            rank_of((2, 0, 0), (2, 3, 4))


class TestNeighbors:
    def test_full_grid_six_neighbors(self):
        n = neighbors(13, (3, 3, 3))  # centre of a 3x3x3 grid
        assert len(n) == 6

    def test_thin_dimension_deduplicated(self):
        # extent 1 in two dims: only the z-axis neighbours remain
        n = neighbors(0, (1, 1, 4))
        assert set(n) == {1, 3}

    def test_extent_two_single_neighbor(self):
        n = neighbors(0, (2, 1, 1))
        assert n == [1]

    def test_no_self_neighbors(self):
        for dims in [(1, 1, 1), (2, 2, 2), (1, 2, 3)]:
            total = dims[0] * dims[1] * dims[2]
            for r in range(total):
                assert r not in neighbors(r, dims)


class TestHaloMessages:
    def test_symmetric_exchange(self):
        msgs = halo_messages((2, 2, 2), (1.0, 1.0, 1.0))
        pairs = {(m.src_rank, m.dst_rank) for m in msgs}
        assert all((b, a) in pairs for a, b in pairs)

    def test_volumes_by_axis(self):
        msgs = halo_messages((2, 1, 1), (0.5, 9.0, 9.0))
        assert all(m.volume_mb == 0.5 for m in msgs)
        assert len(msgs) == 2  # one each way

    def test_extent_two_no_duplicate_messages(self):
        msgs = halo_messages((2, 2, 2), (1.0, 1.0, 1.0))
        # each rank has 3 distinct neighbours -> 8 * 3 = 24 directed sends
        assert len(msgs) == 24
        assert len({(m.src_rank, m.dst_rank) for m in msgs}) == 24

    def test_larger_grid_message_count(self):
        msgs = halo_messages((4, 4, 4), (1.0, 1.0, 1.0))
        # 64 ranks x 6 neighbours, all distinct in a 4-extent torus
        assert len(msgs) == 64 * 6

    def test_single_rank_no_messages(self):
        assert halo_messages((1, 1, 1), (1.0, 1.0, 1.0)) == []
