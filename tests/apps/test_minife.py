"""Tests for the miniFE application model."""

import pytest

from repro.apps.minife import MiniFE, MiniFEConfig
from repro.core.weights import MINIFE_TRADEOFF


class TestConfiguration:
    def test_row_count(self):
        app = MiniFE(96)
        assert app.rows == 97**3

    def test_anisotropic_brick(self):
        app = MiniFE(10, 20, 30)
        assert app.rows == 11 * 21 * 31

    def test_invalid(self):
        with pytest.raises(ValueError):
            MiniFE(0)
        with pytest.raises(ValueError):
            MiniFEConfig(cg_iterations=0)

    def test_recommended_tradeoff_is_papers(self):
        assert MiniFE(96).recommended_tradeoff() == MINIFE_TRADEOFF


class TestSchedule:
    def test_one_block_of_cg_iterations(self):
        app = MiniFE(96, config=MiniFEConfig(cg_iterations=200))
        blocks = app.schedule(32)
        assert len(blocks) == 1
        assert blocks[0].count == 200

    def test_two_dot_product_allreduces_per_iteration(self):
        d = MiniFE(96).schedule(32)[0].demand
        assert len(d.allreduce_mb) == 2
        assert all(mb == pytest.approx(8e-6) for mb in d.allreduce_mb)

    def test_one_spmv_halo_per_iteration(self):
        d = MiniFE(96).schedule(32)[0].demand
        assert len(d.phases) == 1
        assert d.phases[0].messages  # non-trivial on 32 ranks

    def test_compute_scales_inverse_with_ranks(self):
        d8 = MiniFE(96).schedule(8)[0].demand
        d64 = MiniFE(96).schedule(64)[0].demand
        assert d8.compute_gcycles == pytest.approx(8 * d64.compute_gcycles)

    def test_compute_grows_with_nx(self):
        small = MiniFE(48).schedule(8)[0].demand
        big = MiniFE(384).schedule(8)[0].demand
        assert big.compute_gcycles > 100 * small.compute_gcycles

    def test_halo_volume_smaller_than_minimd_relatively(self):
        """miniFE halo carries one double per value (vs 3 for miniMD)."""
        d = MiniFE(96).schedule(32)[0].demand
        assert max(m.volume_mb for m in d.phases[0].messages) < 1.0
