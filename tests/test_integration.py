"""Cross-subsystem integration tests.

These exercise the full pipeline — workload → monitor → snapshot →
allocation → execution — and the global properties that only hold when
every piece cooperates: determinism, information boundaries, and the §4
resilience promises that span multiple components.
"""

import numpy as np
import pytest

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import AllocationRequest, PAPER_POLICIES
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.runner import compare_policies
from repro.experiments.scenario import paper_scenario, small_scenario
from repro.monitor.failures import FailureInjector
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement


class TestDeterminism:
    def run_pipeline(self, seed):
        sc = small_scenario(n_nodes=8, seed=seed, warmup_s=900.0)
        request = AllocationRequest(
            n_processes=8, ppn=4, tradeoff=MINIMD_TRADEOFF
        )
        comparison = compare_policies(
            sc,
            MiniMD(8, MiniMDConfig(timesteps=50)),
            request,
            rng=sc.streams.child("det"),
        )
        return {
            p: (r.allocation.nodes, round(r.time_s, 9))
            for p, r in comparison.runs.items()
        }

    def test_same_seed_same_everything(self):
        assert self.run_pipeline(5) == self.run_pipeline(5)

    def test_different_seed_differs(self):
        a, b = self.run_pipeline(5), self.run_pipeline(6)
        assert a != b


class TestInformationBoundary:
    def test_allocator_only_sees_monitor_data(self):
        """Nodes the monitor never reported must never be allocated,
        even though they exist and are idle in ground truth."""
        sc = small_scenario(n_nodes=8, seed=1, warmup_s=0.0)
        mon = sc.monitoring
        silenced = {"node7", "node8"}
        # Crash their state daemons before any sample lands: the nodes
        # are up and idle, but the allocator never learns about them.
        for name in silenced:
            mon.nodestate[name].crash()
        mon.central.master.crash()  # keep the supervisor from reviving them
        mon.central.slave.crash()
        sc.advance(900.0)
        request = AllocationRequest(n_processes=24, ppn=4)
        for name, cls in PAPER_POLICIES.items():
            alloc = cls().allocate(
                sc.snapshot(), request, rng=sc.streams.child(name)
            )
            assert silenced & set(alloc.nodes) == set(), name

    def test_snapshot_lags_ground_truth(self):
        """A crashed NodeStateD freezes the allocator's view of its node
        while ground truth keeps evolving — the view is the *store*, not
        the cluster."""
        sc = small_scenario(n_nodes=4, seed=2, warmup_s=600.0)
        mon = sc.monitoring
        node = sc.cluster.names[0]
        mon.central.master.crash()  # nobody revives the daemon below
        mon.central.slave.crash()
        frozen = sc.snapshot().nodes[node].cpu_load["now"]
        mon.nodestate[node].crash()
        sc.advance(1800.0)
        later = sc.snapshot().nodes[node].cpu_load["now"]
        assert later == frozen  # stale record served unchanged
        assert mon.store.age(f"nodestate/{node}", sc.engine.now) >= 1800.0
        # ...while the other nodes' views kept refreshing.
        other = sc.cluster.names[1]
        assert mon.store.age(f"nodestate/{other}", sc.engine.now) < 60.0


class TestResilienceEndToEnd:
    def test_monitorless_daemons_keep_working(self):
        """§4: if both Central Monitor instances die, daemons continue
        (but crashed daemons stay down)."""
        sc = small_scenario(n_nodes=6, seed=3, warmup_s=600.0)
        mon = sc.monitoring
        mon.central.master.crash()
        mon.central.slave.crash()
        t0 = sc.engine.now
        sc.advance(600.0)
        snap = sc.snapshot()
        assert len(snap.nodes) == 6  # data still flowing
        assert mon.store.age("livehosts", sc.engine.now) < 120.0
        # but supervision is gone: a crashed daemon stays dead
        victim = mon.nodestate["node2"]
        victim.crash()
        sc.advance(600.0)
        assert not victim.alive

    def test_allocation_during_partial_outage(self):
        sc = paper_scenario(seed=8, warmup_s=1800.0)
        injector = FailureInjector(sc.engine, sc.cluster)
        for i, node in enumerate(["csews2", "csews17", "csews33"]):
            injector.node_down(node, at=sc.engine.now + 10.0 + i)
        sc.advance(120.0)
        request = AllocationRequest(
            n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF
        )
        result = sc.broker().request(request, rng=sc.streams.child("x"))
        downed = {"csews2", "csews17", "csews33"}
        assert downed & set(result.allocation.nodes) == set()
        # the job runs fine on the surviving allocation
        report = SimJob(
            MiniMD(8, MiniMDConfig(timesteps=50)),
            Placement.from_allocation(result.allocation),
            sc.cluster,
            sc.network,
        ).run()
        assert report.total_time_s > 0


class TestExecutionSanity:
    def test_comm_fractions_in_paper_bands(self):
        """§5 profiling: miniMD 40-80 % comm, miniFE 25-60 % at scale.

        Under background load our model runs slightly hotter; assert a
        tolerant band and the miniMD > miniFE ordering.
        """
        from repro.apps.minife import MiniFE

        sc = paper_scenario(seed=10, warmup_s=1800.0)
        request = AllocationRequest(
            n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF
        )
        alloc = sc.broker().request(request).allocation
        placement = Placement.from_allocation(alloc)
        md = SimJob(MiniMD(16), placement, sc.cluster, sc.network).run()
        fe = SimJob(MiniFE(96), placement, sc.cluster, sc.network).run()
        assert 0.35 <= md.comm_fraction <= 0.9
        assert 0.15 <= fe.comm_fraction <= 0.75
        assert md.comm_fraction > fe.comm_fraction

    def test_better_connected_allocation_runs_faster(self):
        """Directly validates the execution model's core mechanism: a
        same-switch group beats a maximally scattered group of equally
        idle nodes."""
        sc = paper_scenario(seed=13, warmup_s=0.0)  # idle cluster
        same_switch = ["csews1", "csews2", "csews3", "csews4"]
        scattered = ["csews1", "csews16", "csews31", "csews46"]
        app = MiniMD(16)
        t_same = SimJob(
            app, Placement.block(same_switch, 4, 16), sc.cluster, sc.network
        ).run().total_time_s
        t_scattered = SimJob(
            app, Placement.block(scattered, 4, 16), sc.cluster, sc.network
        ).run().total_time_s
        assert t_same < t_scattered

    def test_loaded_allocation_runs_slower(self):
        sc = paper_scenario(seed=14, warmup_s=0.0)
        nodes = ["csews1", "csews2", "csews3", "csews4"]
        app = MiniMD(16)
        idle = SimJob(
            app, Placement.block(nodes, 4, 16), sc.cluster, sc.network
        ).run().total_time_s
        for n in nodes:
            sc.cluster.state(n).cpu_load = 10.0
        loaded = SimJob(
            app, Placement.block(nodes, 4, 16), sc.cluster, sc.network
        ).run().total_time_s
        assert loaded > idle
