"""Shared fixtures for the elastic reallocation engine tests."""

from __future__ import annotations

import pytest

from repro.core.policies import AllocationRequest
from repro.core.weights import TradeOff
from repro.elastic.plan import ReconfigPlan, plan_kind


class FakeClock:
    """A manually advanced clock: call it for 'now', advance() to move."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        assert dt >= 0
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_plan(
    *,
    lease_id: str = "L00000001",
    old_nodes=("a", "b"),
    new_nodes=("a", "c"),
    old_procs=None,
    procs=None,
    predicted_gain: float = 0.3,
    n: int = 8,
    ppn: int = 4,
) -> ReconfigPlan:
    """A hand-built plan (planner output shape) for gate/executor tests."""
    old_procs = old_procs or {node: ppn for node in old_nodes}
    procs = procs or {node: ppn for node in new_nodes}
    current_total = 1.0
    return ReconfigPlan(
        lease_id=lease_id,
        kind=plan_kind(old_nodes, new_nodes),
        old_nodes=tuple(old_nodes),
        new_nodes=tuple(new_nodes),
        old_procs=dict(old_procs),
        procs=dict(procs),
        current_total=current_total,
        proposed_total=current_total * (1.0 - predicted_gain),
        predicted_gain=predicted_gain,
        request=AllocationRequest(
            n_processes=n, ppn=ppn, tradeoff=TradeOff.from_alpha(0.3)
        ),
        snapshot_time=0.0,
    )


class FlatCoster:
    """A MigrationCoster with a constant bill (gate arithmetic tests)."""

    def __init__(self, cost_s: float = 10.0) -> None:
        self.cost_s = cost_s
        self.priced = 0

    def migration_cost_s(self, plan) -> float:
        self.priced += 1
        return self.cost_s
