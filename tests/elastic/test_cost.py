"""Migration pricing — transfer decomposition and both estimators."""

from __future__ import annotations

import pytest

from repro.elastic.cost import (
    MigrationCostConfig,
    SnapshotMigrationCost,
    plan_transfers,
)

from tests.core.conftest import make_snapshot, make_view
from tests.elastic.conftest import make_plan


class TestPlanTransfers:
    def test_pure_migrate_moves_everything(self):
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("c", "d"),
            old_procs={"a": 4, "b": 4}, procs={"c": 4, "d": 4},
        )
        transfers = plan_transfers(plan)
        assert sorted(transfers) == [("a", "c", 4), ("b", "d", 4)]

    def test_shrink_concentrates_on_survivor(self):
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("a",),
            old_procs={"a": 4, "b": 4}, procs={"a": 8},
        )
        assert plan_transfers(plan) == [("b", "a", 4)]

    def test_expand_fans_out_from_source(self):
        plan = make_plan(
            old_nodes=("a",), new_nodes=("a", "b", "c"),
            old_procs={"a": 9}, procs={"a": 3, "b": 3, "c": 3},
        )
        assert sorted(plan_transfers(plan)) == [
            ("a", "b", 3), ("a", "c", 3),
        ]

    def test_round_robin_splits_across_sources(self):
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("c",),
            old_procs={"a": 3, "b": 5}, procs={"c": 8},
        )
        assert plan_transfers(plan) == [("a", "c", 3), ("b", "c", 5)]

    def test_unchanged_node_moves_nothing(self):
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("a", "c"),
            old_procs={"a": 4, "b": 4}, procs={"a": 4, "c": 4},
        )
        assert plan_transfers(plan) == [("b", "c", 4)]

    def test_rebalance_with_no_count_change_is_free(self):
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("a", "b"),
            old_procs={"a": 4, "b": 4}, procs={"a": 4, "b": 4},
        )
        assert plan_transfers(plan) == []


class TestSnapshotMigrationCost:
    def make_cost(self, bandwidth=None, **cfg):
        views = {n: make_view(n) for n in ("a", "b", "c", "d")}
        snapshot = make_snapshot(views, bandwidth=bandwidth)
        return SnapshotMigrationCost(
            snapshot, MigrationCostConfig(**cfg)
        )

    def test_wall_cost_is_slowest_transfer_plus_restart(self):
        cost = self.make_cost(
            bandwidth={("a", "c"): 100.0, ("b", "d"): 10.0},
            image_mb_per_rank=100.0,
            restart_overhead_s=2.0,
        )
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("c", "d"),
            old_procs={"a": 4, "b": 4}, procs={"c": 4, "d": 4},
        )
        # a->c: 400MB @ 100MB/s = 4s; b->d: 400MB @ 10MB/s = 40s
        assert cost.migration_cost_s(plan) == pytest.approx(42.0)

    def test_no_moves_costs_nothing_at_all(self):
        cost = self.make_cost(restart_overhead_s=5.0)
        plan = make_plan(
            old_nodes=("a", "b"), new_nodes=("a", "b"),
            old_procs={"a": 4, "b": 4}, procs={"a": 4, "b": 4},
        )
        assert cost.migration_cost_s(plan) == 0.0

    def test_unmeasured_pair_uses_fallback_bandwidth(self):
        views = {n: make_view(n) for n in ("a", "b")}
        snapshot = make_snapshot(views)
        snapshot = type(snapshot)(
            time=snapshot.time,
            nodes=snapshot.nodes,
            bandwidth_mbs={},  # the monitor never measured a-b
            latency_us=snapshot.latency_us,
            peak_bandwidth_mbs=snapshot.peak_bandwidth_mbs,
            livehosts=snapshot.livehosts,
        )
        cost = SnapshotMigrationCost(
            snapshot,
            MigrationCostConfig(
                image_mb_per_rank=100.0,
                restart_overhead_s=0.0,
                fallback_bandwidth_mbs=50.0,
            ),
        )
        plan = make_plan(
            old_nodes=("a",), new_nodes=("b",),
            old_procs={"a": 2}, procs={"b": 2},
        )
        assert cost.migration_cost_s(plan) == pytest.approx(200.0 / 50.0)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"image_mb_per_rank": 0.0},
        {"image_mb_per_rank": -1.0},
        {"restart_overhead_s": -0.1},
        {"fallback_bandwidth_mbs": 0.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MigrationCostConfig(**kwargs)
