"""ReconfigPlanner — Algorithm 1/2 replanning for running jobs."""

from __future__ import annotations

import pytest

from repro.core.policies import AllocationRequest
from repro.core.weights import TradeOff
from repro.elastic.plan import ReconfigPlanner, plan_kind

from tests.core.conftest import make_snapshot, make_view


def request(n=8, ppn=4, alpha=0.3) -> AllocationRequest:
    return AllocationRequest(
        n_processes=n, ppn=ppn, tradeoff=TradeOff.from_alpha(alpha)
    )


def snapshot_with_loads(loads, time=0.0, bandwidth=None):
    views = {n: make_view(n, load=v) for n, v in loads.items()}
    return make_snapshot(views, time=time, bandwidth=bandwidth)


@pytest.fixture
def planner() -> ReconfigPlanner:
    return ReconfigPlanner()


class TestPropose:
    def test_escapes_hot_nodes(self, planner):
        """A job on saturated nodes gets a plan onto the idle ones."""
        snap = snapshot_with_loads(
            {"a": 11.0, "b": 11.0, "c": 0.2, "d": 0.2, "e": 0.2, "f": 0.2}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
        )
        assert plan is not None
        assert plan.predicted_gain > 0.0
        assert not (set(plan.new_nodes) & {"a", "b"})
        assert sum(plan.procs.values()) == 8
        assert plan.lease_id == "L1"
        assert plan.proposed_total < plan.current_total

    def test_incumbent_best_returns_none(self):
        """A job already on the only idle nodes should stay put.

        Same-shape only: with shape changes allowed the planner may
        legitimately propose shrinking onto one node (zero network
        cost), which is a different claim than this test makes.
        """
        planner = ReconfigPlanner(shape_factors=(1.0,))
        snap = snapshot_with_loads(
            {"a": 0.2, "b": 0.2, "c": 11.0, "d": 11.0, "e": 11.0, "f": 11.0}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
        )
        assert plan is None

    def test_exclude_masks_other_jobs_nodes(self, planner):
        """Nodes held by other leases are never proposed."""
        snap = snapshot_with_loads(
            {"a": 11.0, "b": 11.0, "c": 0.2, "d": 0.2, "e": 0.3, "f": 0.3}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
            exclude={"c", "d"},
        )
        if plan is not None:
            assert not (set(plan.new_nodes) & {"c", "d"})

    def test_own_nodes_usable_despite_exclude(self):
        """The job's own nodes stay in the universe even when the caller
        passes the full busy set (which includes the job itself)."""
        planner = ReconfigPlanner(shape_factors=(1.0,))
        snap = snapshot_with_loads(
            {"a": 0.2, "b": 0.2, "c": 11.0, "d": 11.0}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
            exclude={"a", "b", "c", "d"},  # everything is "busy"
        )
        assert plan is None  # already best; not an error

    def test_plan_allocation_roundtrip(self, planner):
        snap = snapshot_with_loads(
            {"a": 11.0, "b": 11.0, "c": 0.2, "d": 0.2, "e": 0.2, "f": 0.2}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
        )
        alloc = plan.allocation()
        assert alloc.policy == "elastic"
        assert set(alloc.nodes) == set(plan.new_nodes)
        assert sum(alloc.procs.values()) == 8
        assert alloc.hostfile()  # well-formed

    def test_shapes_explored_allow_shrink(self):
        """With shape factor 2.0 available, a single very idle node can
        host everything (fewer nodes, more ranks each)."""
        planner = ReconfigPlanner(shape_factors=(1.0, 2.0))
        snap = snapshot_with_loads(
            {"a": 6.0, "b": 6.0, "c": 0.1, "d": 9.0},
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(n=8, ppn=4),
        )
        assert plan is not None
        assert plan.kind in ("shrink", "migrate")
        assert sum(plan.procs.values()) == 8

    def test_bad_shape_factors_rejected(self):
        with pytest.raises(ValueError):
            ReconfigPlanner(shape_factors=())
        with pytest.raises(ValueError):
            ReconfigPlanner(shape_factors=(1.0, 0.0))


class TestPlanKind:
    @pytest.mark.parametrize("old,new,kind", [
        (("a", "b"), ("a", "b", "c"), "expand"),
        (("a", "b", "c"), ("a",), "shrink"),
        (("a", "b"), ("c", "d"), "migrate"),
        (("a", "b"), ("a", "c"), "migrate"),
        (("a", "b"), ("a", "b"), "rebalance"),
    ])
    def test_classification(self, old, new, kind):
        assert plan_kind(old, new) == kind


class TestPlanProperties:
    def test_add_drop_and_moved_ranks(self, planner):
        snap = snapshot_with_loads(
            {"a": 11.0, "b": 11.0, "c": 0.2, "d": 0.2, "e": 0.2, "f": 0.2}
        )
        plan = planner.propose(
            snap,
            lease_id="L1",
            nodes=["a", "b"],
            procs={"a": 4, "b": 4},
            request=request(),
        )
        assert set(plan.add_nodes) == set(plan.new_nodes) - {"a", "b"}
        assert set(plan.drop_nodes) == {"a", "b"} - set(plan.new_nodes)
        assert plan.moved_ranks > 0
