"""LoadDriftMonitor — sustained drift triggers, spikes and idling don't."""

from __future__ import annotations

import pytest

from repro.elastic.drift import DriftPolicy, LoadDriftMonitor

from tests.core.conftest import make_snapshot, make_view


def feed(monitor, loads_by_time, cores=12):
    """Feed one snapshot per (time, {node: load}) entry."""
    for t, loads in loads_by_time:
        views = {
            name: make_view(name, cores=cores, load=load)
            for name, load in loads.items()
        }
        monitor.observe_snapshot(make_snapshot(views, time=t))


def steady_then_step(node_loads_before, node_loads_after, *,
                     t_step=900.0, t_end=1020.0, period=30.0):
    """A load trajectory: steady history, then a step that persists."""
    out = []
    t = 0.0
    while t < t_step:
        out.append((t, dict(node_loads_before)))
        t += period
    while t <= t_end:
        out.append((t, dict(node_loads_after)))
        t += period
    return out


class TestTrigger:
    def test_sustained_rise_triggers(self):
        monitor = LoadDriftMonitor(DriftPolicy(rel_threshold=0.25))
        feed(monitor, steady_then_step(
            {"a": 1.0, "b": 1.0}, {"a": 10.0, "b": 1.0},
        ))
        verdict = monitor.verdict(["a", "b"], now=1020.0)
        assert verdict.triggered
        assert verdict.drifting == ("a",)
        assert verdict.readings["a"].relative > 0.25
        assert abs(verdict.readings["b"].relative) < 0.25

    def test_steady_load_does_not_trigger(self):
        monitor = LoadDriftMonitor(DriftPolicy(rel_threshold=0.25))
        feed(monitor, steady_then_step(
            {"a": 4.0, "b": 4.0}, {"a": 4.0, "b": 4.0},
        ))
        verdict = monitor.verdict(["a", "b"], now=1020.0)
        assert not verdict.triggered
        assert verdict.drifting == ()

    def test_rising_only_ignores_falling_load(self):
        trajectory = steady_then_step({"a": 10.0}, {"a": 0.5})
        rising = LoadDriftMonitor(DriftPolicy(rising_only=True))
        feed(rising, trajectory)
        assert not rising.verdict(["a"], now=1020.0).triggered

        both = LoadDriftMonitor(DriftPolicy(rising_only=False))
        feed(both, trajectory)
        assert both.verdict(["a"], now=1020.0).triggered

    def test_min_nodes_requires_enough_drifters(self):
        monitor = LoadDriftMonitor(DriftPolicy(min_nodes=2))
        feed(monitor, steady_then_step(
            {"a": 1.0, "b": 1.0}, {"a": 10.0, "b": 1.0},
        ))
        verdict = monitor.verdict(["a", "b"], now=1020.0)
        assert verdict.drifting == ("a",)
        assert not verdict.triggered  # one drifter < min_nodes=2

    def test_load_is_normalized_per_core(self):
        """The same absolute load step is drift on a small node only."""
        monitor = LoadDriftMonitor(DriftPolicy(rel_threshold=0.25))
        # 4-core node: 1 -> 5 load is a 4x per-core jump
        feed(monitor, steady_then_step({"small": 1.0}, {"small": 5.0}),
             cores=4)
        assert monitor.verdict(["small"], now=1020.0).triggered
        # 128-core node: same absolute step is idle chatter per core,
        # but relative drift is scale-free, so guard with the floor:
        big = LoadDriftMonitor(DriftPolicy(rel_threshold=0.25))
        feed(big, steady_then_step({"big": 1.0}, {"big": 1.2}), cores=128)
        reading = big.verdict(["big"], now=1020.0).readings["big"]
        # per-core means sit far below the 0.05 floor: tiny relative
        assert not big.verdict(["big"], now=1020.0).triggered
        assert reading.short_mean < 0.05


class TestHistoryHandling:
    def test_unknown_node_yields_no_reading(self):
        monitor = LoadDriftMonitor()
        verdict = monitor.verdict(["ghost"], now=0.0)
        assert not verdict.triggered and verdict.readings == {}

    def test_single_sample_suppressed(self):
        """min_samples stops a fresh tracker reporting spurious drift."""
        monitor = LoadDriftMonitor()
        feed(monitor, [(0.0, {"a": 10.0})])
        assert monitor.verdict(["a"], now=0.0).readings == {}

    def test_forget_drops_history(self):
        monitor = LoadDriftMonitor()
        feed(monitor, steady_then_step({"a": 1.0}, {"a": 10.0}))
        assert monitor.verdict(["a"], now=1020.0).triggered
        monitor.forget(["a"])
        assert monitor.verdict(["a"], now=1020.0).readings == {}

    def test_observation_counter(self):
        monitor = LoadDriftMonitor()
        feed(monitor, [(0.0, {"a": 1.0}), (30.0, {"a": 1.0})])
        assert monitor.observations == 2


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rel_threshold": 0.0},
        {"rel_threshold": -0.5},
        {"min_nodes": 0},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftPolicy(**kwargs)
