"""DES integration — the elastic engine's headline and failure claims.

Two acceptance criteria from the subsystem issue live here:

* on a drifting-load scenario, the elastic variant beats the static one
  on mean job completion time (same seed, same world, same repricing);
* with migration failures injected, every accepted-then-failed plan
  leaves the lease table consistent and all jobs still complete.

The configs are scaled down (8 nodes, 3 jobs) so the whole module runs
in seconds; the full-size comparison is ``python -m repro elastic`` /
``benchmarks/bench_elastic.py``.
"""

from __future__ import annotations

import pytest

from repro.elastic.experiment import (
    ElasticExperimentConfig,
    run_elastic_comparison,
    run_variant,
)

SMALL = ElasticExperimentConfig(
    n_nodes=8,
    nodes_per_switch=4,
    n_jobs=3,
    n_processes=8,
    ppn=4,
    interarrival_s=600.0,
    warmup_s=1800.0,
)


@pytest.fixture(scope="module")
def comparison():
    return run_elastic_comparison(seed=1, config=SMALL)


class TestElasticBeatsStatic:
    def test_turnaround_improves(self, comparison):
        static = comparison.static.stats.mean_turnaround_s
        elastic = comparison.elastic.stats.mean_turnaround_s
        assert elastic < static, (
            f"elastic {elastic:.0f}s should beat static {static:.0f}s"
        )
        assert comparison.turnaround_improvement_pct > 0

    def test_elastic_actually_reconfigured(self, comparison):
        assert comparison.elastic.reconfigs >= 1
        assert comparison.static.reconfigs == 0
        assert comparison.elastic.failed_migrations == 0

    def test_all_jobs_complete_in_both_variants(self, comparison):
        for variant in (comparison.static, comparison.elastic):
            assert variant.stats.n_jobs == SMALL.n_jobs
            assert variant.stats.makespan_s > 0

    def test_events_record_committed_plans(self, comparison):
        events = comparison.elastic.reconfig_events
        committed = [e for e in events if e["outcome"] == "committed"]
        assert len(committed) == comparison.elastic.reconfigs
        for ev in committed:
            assert ev["predicted_gain"] > 0
            assert set(ev["from"]) != set(ev["to"]) or ev["kind"] == "rebalance"

    def test_to_dict_roundtrip(self, comparison):
        d = comparison.to_dict()
        assert d["seed"] == 1
        assert d["static"]["variant"] == "static"
        assert d["elastic"]["reconfigs"] == comparison.elastic.reconfigs
        assert "turnaround_improvement_pct" in d


class TestDeterminism:
    def test_same_seed_same_outcome(self, comparison):
        again = run_elastic_comparison(seed=1, config=SMALL)
        assert again.elastic.stats.mean_turnaround_s == pytest.approx(
            comparison.elastic.stats.mean_turnaround_s
        )
        assert again.elastic.reconfigs == comparison.elastic.reconfigs
        assert tuple(again.elastic.reconfig_events) == tuple(
            comparison.elastic.reconfig_events
        )


class TestInjectedMigrationFailures:
    def test_failures_leave_jobs_and_leases_consistent(self):
        """Every accepted migration dies mid-flight; nothing corrupts."""
        import dataclasses

        cfg = dataclasses.replace(SMALL, migration_failure_rate=1.0)
        result = run_variant(reconfigure=True, seed=1, config=cfg)
        # plans were accepted and every one of them failed...
        assert result.failed_migrations >= 1
        assert result.reconfigs == 0
        failed = [
            e for e in result.reconfig_events if e["outcome"] == "failed"
        ]
        assert len(failed) == result.failed_migrations
        assert all(e["error"] == "RECONFIG_FAILED" for e in failed)
        # ...yet every job still completed on its original placement
        assert result.stats.n_jobs == SMALL.n_jobs
        assert result.stats.makespan_s > 0

    def test_partial_failure_rate_still_completes(self):
        import dataclasses

        cfg = dataclasses.replace(SMALL, migration_failure_rate=0.5)
        result = run_variant(reconfigure=True, seed=1, config=cfg)
        assert result.stats.n_jobs == SMALL.n_jobs
        assert result.reconfigs + result.failed_migrations >= 1
