"""TwoPhaseExecutor — reserve/switch/release with fault injection.

The acceptance criterion this file locks in: an injected mid-flight
migration failure leaves the lease table consistent — the job keeps its
original nodes, the reservation is rolled back, and nothing is stranded.
"""

from __future__ import annotations

import pytest

from repro.elastic.executor import (
    MigrationFailure,
    ReconfigError,
    TwoPhaseExecutor,
)
from repro.scheduler.leases import LeaseTable

from tests.elastic.conftest import make_plan


@pytest.fixture
def table(clock) -> LeaseTable:
    return LeaseTable(clock=clock, default_ttl_s=3600.0, max_ttl_s=7200.0)


@pytest.fixture
def executor(table) -> TwoPhaseExecutor:
    return TwoPhaseExecutor(table, reserve_ttl_s=60.0)


def grant_job(table, nodes=("a", "b"), ppn=4):
    return table.grant(list(nodes), {n: ppn for n in nodes})


def _failing_migrate(plan):
    raise MigrationFailure("injected mid-flight failure")


class TestCommit:
    def test_migrate_plan_commits(self, table, executor):
        lease = grant_job(table)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"),
            new_nodes=("a", "c"),
        )
        migrated = []
        swapped = executor.apply(plan, migrate=lambda p: migrated.append(p))
        assert migrated == [plan]
        assert set(swapped.nodes) == {"a", "c"}
        assert table.held_nodes() == {"a", "c"}
        assert swapped.reconfigs == 1
        assert (executor.commits, executor.rollbacks) == (1, 0)

    def test_commit_leaves_no_reserve_lease_behind(self, table, executor):
        lease = grant_job(table)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"),
            new_nodes=("c", "d"),
        )
        executor.apply(plan)
        active = table.active()
        assert len(active) == 1  # the job's own lease only
        assert active[0].lease_id == lease.lease_id
        assert table.held_nodes() == {"c", "d"}

    def test_pure_expand_and_shrink(self, table, executor):
        lease = grant_job(table, nodes=("a",), ppn=8)
        grown = executor.apply(make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a",), new_nodes=("a", "b"),
            old_procs={"a": 8}, procs={"a": 4, "b": 4},
        ))
        assert set(grown.nodes) == {"a", "b"}
        shrunk = executor.apply(make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"), new_nodes=("b",),
            old_procs={"a": 4, "b": 4}, procs={"b": 8},
        ))
        assert shrunk.nodes == ("b",)
        assert shrunk.procs == {"b": 8}
        assert table.held_nodes() == {"b"}


class TestRollback:
    def test_migration_failure_rolls_back_everything(self, table, executor):
        """The headline fault-injection invariant."""
        lease = grant_job(table)
        before = (lease.nodes, dict(lease.procs), lease.expires_at)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"),
            new_nodes=("a", "c"),
        )

        def failing_migrate(p):
            raise RuntimeError("checkpoint transfer died")

        with pytest.raises(ReconfigError) as err:
            executor.apply(plan, migrate=failing_migrate)
        assert err.value.code == "RECONFIG_FAILED"
        # the job's lease is untouched...
        after = table.get(lease.lease_id)
        assert (after.nodes, dict(after.procs), after.expires_at) == before
        assert after.reconfigs == 0
        # ...and the reservation on "c" was rolled back, not stranded
        assert table.held_nodes() == {"a", "b"}
        assert len(table.active()) == 1
        assert (executor.commits, executor.rollbacks) == (0, 1)

    def test_failed_target_is_regrantable_immediately(self, table, executor):
        lease = grant_job(table)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"), new_nodes=("a", "c"),
        )
        def die(p):
            raise MigrationFailure("transfer died mid-flight")

        with pytest.raises(ReconfigError):
            executor.apply(plan, migrate=die)
        # no TTL shadow: another job can take "c" right now
        other = table.grant(["c"], {"c": 4})
        assert "c" in table.held_nodes()
        assert other.lease_id != lease.lease_id

    def test_programming_error_propagates_raw_but_rolls_back(
        self, table, executor
    ):
        """A bug in the callback isn't a migration death: it escapes as
        itself (never typed RECONFIG_FAILED) — yet the reservation must
        still be rolled back, so nothing is stranded."""
        lease = grant_job(table)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"), new_nodes=("a", "c"),
        )
        with pytest.raises(ZeroDivisionError):
            executor.apply(plan, migrate=lambda p: 1 / 0)
        assert table.held_nodes() == {"a", "b"}
        assert len(table.active()) == 1
        assert executor.rollbacks == 1


class TestRejection:
    def test_unknown_lease(self, table, executor):
        plan = make_plan(lease_id="L99999999")
        with pytest.raises(ReconfigError) as err:
            executor.apply(plan)
        assert err.value.code == "UNKNOWN_LEASE"
        assert executor.rejects == 1

    def test_stale_plan_rejected(self, table, executor):
        """A plan computed against an outdated node set must not apply."""
        lease = grant_job(table)
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "z"),  # lease actually holds (a, b)
            new_nodes=("a", "c"),
        )
        with pytest.raises(ReconfigError) as err:
            executor.apply(plan)
        assert err.value.code == "STALE_PLAN"
        assert table.held_nodes() == {"a", "b"}

    def test_add_node_conflict_is_all_or_nothing(self, table, executor):
        lease = grant_job(table)
        table.grant(["c"], {"c": 4})  # someone else holds c
        plan = make_plan(
            lease_id=lease.lease_id,
            old_nodes=("a", "b"),
            new_nodes=("a", "c", "d"),  # c conflicts, d is free
            procs={"a": 4, "c": 2, "d": 2},
        )
        with pytest.raises(ReconfigError) as err:
            executor.apply(plan)
        assert err.value.code == "NODE_CONFLICT"
        # victim unchanged and the free node "d" was not leaked
        assert table.get(lease.lease_id).nodes == ("a", "b")
        assert table.held_nodes() == {"a", "b", "c"}

    def test_expired_lease_rejected(self, table, executor, clock):
        lease = grant_job(table)
        clock.advance(7200.0)
        plan = make_plan(lease_id=lease.lease_id)
        with pytest.raises(ReconfigError) as err:
            executor.apply(plan)
        assert err.value.code == "EXPIRED_LEASE"


class TestCounters:
    def test_attempts_partition_into_outcomes(self, table, executor):
        lease = grant_job(table)
        executor.apply(make_plan(lease_id=lease.lease_id))  # commit
        with pytest.raises(ReconfigError):
            executor.apply(make_plan(lease_id="L404"))  # reject
        fresh = table.get(lease.lease_id)
        with pytest.raises(ReconfigError):
            executor.apply(
                make_plan(
                    lease_id=lease.lease_id,
                    old_nodes=fresh.nodes,
                    new_nodes=("b",) if "b" not in fresh.nodes else ("a",),
                    procs=None,
                ),
                migrate=_failing_migrate,
            )  # rollback
        assert executor.attempts == 3
        assert executor.commits == 1
        assert executor.rejects == 1
        assert executor.rollbacks == 1
