"""PlanGate — the cost/benefit damper that prevents thrashing."""

from __future__ import annotations

import pytest

from repro.elastic.gate import GateConfig, PlanGate

from tests.elastic.conftest import FlatCoster, make_plan


@pytest.fixture
def gate() -> PlanGate:
    return PlanGate(
        FlatCoster(cost_s=10.0),
        GateConfig(
            min_gain=0.05,
            benefit_margin=1.5,
            min_remaining_s=60.0,
            cooldown_s=300.0,
        ),
    )


class TestAcceptance:
    def test_profitable_plan_accepted(self, gate):
        plan = make_plan(predicted_gain=0.3)
        decision = gate.evaluate(plan, remaining_s=600.0, now=0.0)
        assert decision.accepted and bool(decision)
        assert decision.reason == "accepted"
        # default benefit proxy: gain x remaining
        assert decision.benefit_s == pytest.approx(180.0)
        assert decision.cost_s == pytest.approx(10.0)

    def test_benefit_override_replaces_proxy(self, gate):
        plan = make_plan(predicted_gain=0.3)
        decision = gate.evaluate(
            plan, remaining_s=600.0, now=0.0, benefit_s=12.0
        )
        # 12 < 1.5 * 10: the exact benefit kills a proxy-profitable plan
        assert not decision.accepted
        assert decision.reason == "cost_exceeds_benefit"


class TestRejectionReasons:
    def test_job_nearly_done(self, gate):
        plan = make_plan(predicted_gain=0.9)
        decision = gate.evaluate(plan, remaining_s=59.0, now=0.0)
        assert decision.reason == "job_nearly_done"

    def test_gain_below_floor(self, gate):
        plan = make_plan(predicted_gain=0.01)
        decision = gate.evaluate(plan, remaining_s=3600.0, now=0.0)
        assert decision.reason == "gain_below_floor"

    def test_cost_exceeds_benefit_includes_margin(self, gate):
        # benefit 12s vs cost 10s: profitable absolutely, not at 1.5x
        plan = make_plan(predicted_gain=0.12)
        decision = gate.evaluate(plan, remaining_s=100.0, now=0.0)
        assert decision.reason == "cost_exceeds_benefit"
        assert decision.benefit_s == pytest.approx(12.0)

    def test_rejection_does_not_start_cooldown(self, gate):
        bad = make_plan(predicted_gain=0.01)
        gate.evaluate(bad, remaining_s=3600.0, now=0.0)
        good = make_plan(predicted_gain=0.5)
        assert gate.evaluate(good, remaining_s=3600.0, now=1.0).accepted


class TestCooldown:
    def test_accept_starts_cooldown(self, gate):
        plan = make_plan(predicted_gain=0.5)
        assert gate.evaluate(plan, remaining_s=3600.0, now=1000.0).accepted
        again = gate.evaluate(plan, remaining_s=3600.0, now=1200.0)
        assert again.reason == "in_cooldown"
        # cooldown_s after the acceptance, the job may move again
        later = gate.evaluate(plan, remaining_s=3600.0, now=1300.0)
        assert later.accepted

    def test_cooldown_is_per_lease(self, gate):
        first = make_plan(lease_id="L1", predicted_gain=0.5)
        other = make_plan(lease_id="L2", predicted_gain=0.5)
        assert gate.evaluate(first, remaining_s=3600.0, now=0.0).accepted
        assert gate.evaluate(other, remaining_s=3600.0, now=1.0).accepted

    def test_forget_clears_cooldown(self, gate):
        plan = make_plan(predicted_gain=0.5)
        assert gate.evaluate(plan, remaining_s=3600.0, now=0.0).accepted
        gate.forget(plan.lease_id)
        assert gate.evaluate(plan, remaining_s=3600.0, now=1.0).accepted


class TestObservability:
    def test_counts_by_reason(self, gate):
        gate.evaluate(make_plan(predicted_gain=0.5), remaining_s=3600.0)
        gate.evaluate(make_plan(predicted_gain=0.01), remaining_s=3600.0)
        gate.evaluate(make_plan(predicted_gain=0.5), remaining_s=10.0)
        assert gate.counts == {
            "accepted": 1,
            "gain_below_floor": 1,
            "job_nearly_done": 1,
        }
