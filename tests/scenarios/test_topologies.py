"""The zoo's cluster builders and general-graph routing.

Covers the fat-tree / mesh / hetero-accel builders end to end plus the
``extra_switch_links`` machinery they lean on: validation, BFS routing
determinism, and the guarantee that a pure tree still routes through
the bit-identical LCA fast path.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.cluster.topology import SwitchTopology, uniform_cluster
from repro.net.model import NetworkModel
from repro.scenarios.topologies import (
    ACCEL_COMPUTE_WEIGHTS,
    fat_tree_cluster,
    hetero_accel_cluster,
    mesh_cluster,
)


def _assert_routes_consistent(topo: SwitchTopology) -> None:
    """Every node pair routes, and every hop is a real capacitated link."""
    nodes = topo.nodes
    for u in nodes:
        for v in nodes:
            if u == v:
                assert topo.hops(u, v) == 0
                continue
            path = topo.path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(set(path)) == len(path), f"loop in {path}"
            for a, b in zip(path[:-1], path[1:]):
                assert topo.link_capacity(a, b) > 0


class TestFatTree:
    def test_shape(self):
        specs, topo = fat_tree_cluster()
        assert len(specs) == 24
        assert set(topo.switches) == {
            "core", "agg1", "agg2", "leaf1", "leaf2", "leaf3", "leaf4",
        }
        # every leaf is dual-homed: tree uplink to agg1, extra to agg2
        extras = set(topo.extra_switch_links)
        for leaf in ("leaf1", "leaf2", "leaf3", "leaf4"):
            assert tuple(sorted((leaf, "agg2"))) in extras
        assert ("agg1", "agg2") in extras

    def test_cross_leaf_routes_shortcut_not_core(self):
        _specs, topo = fat_tree_cluster()
        # leaf-to-leaf stays 2 switch hops (via an aggregation switch),
        # never climbing to the core — that's the fat-tree's point
        path = topo.switch_path("leaf1", "leaf3")
        assert len(path) == 3
        assert "core" not in path

    def test_routes_consistent(self):
        _specs, topo = fat_tree_cluster()
        _assert_routes_consistent(topo)

    def test_network_model_accepts_it(self):
        _specs, topo = fat_tree_cluster()
        net = NetworkModel(topo)
        u, v = topo.nodes[0], topo.nodes[-1]
        assert net.peak_bandwidth(u, v) > 0


class TestMesh:
    def test_leaf_pairs_are_direct(self):
        _specs, topo = mesh_cluster()
        leaves = [s for s in topo.switches if s.startswith("switch")]
        for i, a in enumerate(leaves):
            for b in leaves[i + 1:]:
                assert topo.switch_path(a, b) == (a, b)

    def test_standby_switch_carries_no_nodes(self):
        specs, topo = mesh_cluster(with_standby=True)
        assert "standby" in topo.switches
        assert topo.nodes_on_switch("standby") == []
        assert all(s.switch != "standby" for s in specs)

    def test_without_standby(self):
        _specs, topo = mesh_cluster(with_standby=False)
        assert "standby" not in topo.switches

    def test_routes_consistent(self):
        _specs, topo = mesh_cluster()
        _assert_routes_consistent(topo)


class TestHeteroAccel:
    def test_three_tiers(self):
        specs, topo = hetero_accel_cluster()
        assert len(specs) == 30
        by_tier = {"fast": [], "slow": [], "accel": []}
        for s in specs:
            for tier in by_tier:
                if s.name.startswith(tier):
                    by_tier[tier].append(s)
        assert [len(v) for v in by_tier.values()] == [12, 10, 8]
        fast, slow, accel = (by_tier[t][0] for t in ("fast", "slow", "accel"))
        assert (fast.cores, fast.frequency_ghz) == (12, 4.6)
        assert (slow.cores, slow.frequency_ghz) == (8, 2.8)
        assert (accel.cores, accel.memory_gb) == (32, 64.0)

    def test_every_switch_carries_a_mix(self):
        specs, topo = hetero_accel_cluster()
        leaves = {s.switch for s in specs}
        for leaf in leaves:
            tiers = {
                n.rstrip("0123456789") for n in topo.nodes_on_switch(leaf)
            }
            assert len(tiers) >= 2, f"{leaf} carries only {tiers}"

    def test_accel_weights_are_valid_saw_profile(self):
        total = sum(ACCEL_COMPUTE_WEIGHTS.weights.values())
        assert total == pytest.approx(1.0)
        # capability terms outweigh the stock profile's
        w = ACCEL_COMPUTE_WEIGHTS.weights
        assert w["core_count"] + w["cpu_frequency"] + w["total_memory"] > 0.3


class TestExtraLinkMachinery:
    def test_pure_tree_has_no_extras_and_uses_lca(self):
        _specs, topo = uniform_cluster(8, nodes_per_switch=4)
        assert topo.extra_switch_links == ()
        assert topo.switch_path("switch1", "switch2") == (
            "switch1", "root", "switch2",
        )

    def test_extra_link_shortens_path_deterministically(self):
        parents = {"root": None, "a": "root", "b": "root"}
        nodes = {"n1": "a", "n2": "b"}
        tree = SwitchTopology(parents, nodes)
        ring = SwitchTopology(
            parents, nodes, extra_switch_links=[("a", "b")]
        )
        assert tree.switch_path("a", "b") == ("a", "root", "b")
        assert ring.switch_path("a", "b") == ("a", "b")
        # both directions, same links
        assert ring.switch_path("b", "a") == ("b", "a")

    def test_extra_link_capacity_triple(self):
        parents = {"root": None, "a": "root", "b": "root"}
        topo = SwitchTopology(
            parents, {"n1": "a"}, extra_switch_links=[("a", "b", 250.0)]
        )
        assert topo.link_capacity("a", "b") == 250.0

    def test_extra_link_validation(self):
        parents = {"root": None, "a": "root"}
        nodes = {"n1": "a"}
        with pytest.raises(ValueError, match="not a switch"):
            SwitchTopology(
                parents, nodes, extra_switch_links=[("a", "ghost")]
            )
        with pytest.raises(ValueError, match="self-loop"):
            SwitchTopology(parents, nodes, extra_switch_links=[("a", "a")])
        with pytest.raises(ValueError, match="must be"):
            SwitchTopology(parents, nodes, extra_switch_links=[("a",)])

    def test_duplicate_of_tree_edge_is_ignored(self):
        parents = {"root": None, "a": "root"}
        topo = SwitchTopology(
            parents, {"n1": "a"}, extra_switch_links=[("a", "root")]
        )
        assert topo.extra_switch_links == ()

    def test_parent_cycle_still_rejected_with_extras(self):
        parents = {"root": None, "a": "b", "b": "a"}
        with pytest.raises(ValueError, match="tree"):
            SwitchTopology(parents, {}, extra_switch_links=[("a", "root")])

    def test_switch_graphs_are_connected(self):
        for builder in (fat_tree_cluster, mesh_cluster):
            _specs, topo = builder()
            sub = topo.graph.subgraph(topo.switches)
            assert nx.is_connected(sub)
