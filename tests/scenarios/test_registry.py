"""The scenario registry contract: lookup, validation, spec behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import uniform_cluster
from repro.core.weights import ComputeWeights
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    iter_specs,
    list_scenarios,
)
from repro.scenarios.registry import (
    _REGISTRY,
    PAPER_JOB_MIX,
    JobClass,
    register_scenario,
)

#: the cells ISSUE/ROADMAP require to exist, by exact name
REQUIRED_SCENARIOS = (
    "paper-tree",
    "fat-tree",
    "mesh",
    "diurnal",
    "bursty",
    "spike",
    "hetero-accel",
    "net-heavy",
    "compute-heavy",
)


def test_registry_has_required_matrix():
    names = list_scenarios()
    assert len(names) >= 6
    for required in REQUIRED_SCENARIOS:
        assert required in names, f"missing scenario {required!r}"


def test_paper_tree_registered_first_and_flagged():
    names = list_scenarios()
    assert names[0] == "paper-tree"
    spec = get_scenario("paper-tree")
    assert spec.paper and spec.smoke
    # exactly one cell may claim to be the paper's own environment
    assert sum(s.paper for s in iter_specs()) == 1


def test_smoke_subset_is_proper():
    smoke = list_scenarios(smoke_only=True)
    assert smoke
    assert set(smoke) < set(list_scenarios())
    assert all(get_scenario(n).smoke for n in smoke)


def test_unknown_scenario_lists_known_names():
    with pytest.raises(KeyError, match="paper-tree"):
        get_scenario("no-such-scenario")


def test_duplicate_registration_rejected():
    def dup() -> ScenarioSpec:
        return ScenarioSpec(
            name="paper-tree",
            description="imposter",
            build_cluster=lambda: uniform_cluster(4, nodes_per_switch=2),
        )

    before = dict(_REGISTRY)
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(dup)
    assert _REGISTRY == before  # failed registration must not mutate


def test_job_class_validation():
    with pytest.raises(ValueError, match="alpha"):
        JobClass(app="minimd", alpha=1.5)
    with pytest.raises(ValueError, match="weight"):
        JobClass(app="minimd", alpha=0.5, weight=0.0)


def test_spec_validation():
    build = lambda: uniform_cluster(4, nodes_per_switch=2)  # noqa: E731
    with pytest.raises(ValueError, match="name"):
        ScenarioSpec(name="", description="d", build_cluster=build)
    with pytest.raises(ValueError, match="job_mix"):
        ScenarioSpec(
            name="x", description="d", build_cluster=build, job_mix=()
        )
    with pytest.raises(ValueError, match="warmup_s"):
        ScenarioSpec(
            name="x", description="d", build_cluster=build, warmup_s=-1.0
        )


def test_request_carries_scenario_weights():
    weights = ComputeWeights(
        weights={
            "cpu_load": 0.25, "cpu_util": 0.15, "flow_rate": 0.15,
            "available_memory": 0.10, "core_count": 0.20,
            "cpu_frequency": 0.05, "total_memory": 0.10,
        }
    )
    spec = ScenarioSpec(
        name="x",
        description="d",
        build_cluster=lambda: uniform_cluster(4, nodes_per_switch=2),
        compute_weights=weights,
        default_alpha=0.7,
    )
    req = spec.request(8, ppn=4)
    assert req.compute_weights is weights
    assert req.tradeoff.alpha == pytest.approx(0.7)
    # per-job alpha overrides the scenario default
    assert spec.request(8, alpha=0.2).tradeoff.alpha == pytest.approx(0.2)


def test_sample_job_deterministic_and_weighted():
    spec = get_scenario("net-heavy")
    draws_a = [
        spec.sample_job(np.random.default_rng(7)).app for _ in range(1)
    ]
    draws_b = [
        spec.sample_job(np.random.default_rng(7)).app for _ in range(1)
    ]
    assert draws_a == draws_b
    rng = np.random.default_rng(3)
    apps = {spec.sample_job(rng).app for _ in range(200)}
    assert apps == {j.app for j in spec.job_mix}  # every class reachable


def test_arrival_offsets_validates_count_and_sign():
    build = lambda: uniform_cluster(4, nodes_per_switch=2)  # noqa: E731
    short = ScenarioSpec(
        name="short", description="d", build_cluster=build,
        arrivals=lambda n, rng: (0.0,),
    )
    with pytest.raises(ValueError, match="offsets"):
        short.arrival_offsets(3, np.random.default_rng(0))
    negative = ScenarioSpec(
        name="neg", description="d", build_cluster=build,
        arrivals=lambda n, rng: tuple(-1.0 for _ in range(n)),
    )
    with pytest.raises(ValueError, match="negative"):
        negative.arrival_offsets(2, np.random.default_rng(0))


def test_default_job_mix_is_papers():
    assert tuple(j.app for j in PAPER_JOB_MIX) == ("minimd", "minife")
    assert get_scenario("paper-tree").job_mix == PAPER_JOB_MIX
