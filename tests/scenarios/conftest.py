"""Scenario-matrix test fixtures.

Tier-1 runs the matrix over the *smoke* scenarios only (the fast cells
CI exercises on every push); setting ``REPRO_NIGHTLY=1`` widens every
parametrized suite to the full registry — the nightly matrix sweep.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.experiments.runner import ScenarioComparison, run_comparison
from repro.scenarios import list_scenarios


def matrix_names() -> list[str]:
    """Scenario names under test: smoke cells, or all under nightly."""
    if os.environ.get("REPRO_NIGHTLY"):
        return list_scenarios()
    return list_scenarios(smoke_only=True)


@lru_cache(maxsize=None)
def cached_comparison(name: str, seed: int = 0) -> ScenarioComparison:
    """One §5 policy comparison per scenario, shared across the module's
    tests (building + warming a scenario dominates the cost)."""
    return run_comparison(name, seed=seed, n_jobs=3, warmup_s=300.0)
