"""Federation sharding on non-tree topologies (latent-assumption sweep).

``subtree_partition`` was written against the paper's star-of-leaves
shape; these regressions pin that it keeps its contract — whole leaf
subtrees, deterministic balance — on the zoo's fat-tree, mesh, and
hetero worlds, including the node-less standby switch the mesh adds.
"""

from __future__ import annotations

import pytest

from repro.federation.sharding import subtree_partition
from repro.scenarios.topologies import (
    fat_tree_cluster,
    hetero_accel_cluster,
    mesh_cluster,
)

BUILDERS = {
    "fat-tree": fat_tree_cluster,
    "mesh": mesh_cluster,
    "hetero-accel": hetero_accel_cluster,
}


def _node_switches(builder):
    specs, _topo = builder()
    return {s.name: s.switch for s in specs}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_partition_keeps_subtrees_whole(name):
    node_switches = _node_switches(BUILDERS[name])
    shards = subtree_partition(node_switches, 2)
    owner = {
        node: shard for shard, nodes in shards.items() for node in nodes
    }
    assert set(owner) == set(node_switches)  # every node placed once
    for shard, nodes in shards.items():
        for node in nodes:
            peers_on_switch = [
                n for n, sw in node_switches.items()
                if sw == node_switches[node]
            ]
            assert all(owner[p] == shard for p in peers_on_switch), (
                f"subtree {node_switches[node]} split across shards"
            )


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_partition_deterministic_and_balanced(name):
    node_switches = _node_switches(BUILDERS[name])
    a = subtree_partition(node_switches, 3)
    b = subtree_partition(dict(reversed(node_switches.items())), 3)
    # membership must not depend on input insertion order (node order
    # within a shard follows the input and may differ)
    assert {s: set(v) for s, v in a.items()} == {
        s: set(v) for s, v in b.items()
    }
    assert a == subtree_partition(node_switches, 3)  # same input, same output
    sizes = sorted(len(v) for v in a.values())
    # LPT balancing: no shard exceeds the lightest by more than the
    # largest single subtree
    largest_subtree = max(
        sum(1 for sw in node_switches.values() if sw == s)
        for s in set(node_switches.values())
    )
    assert sizes[-1] - sizes[0] <= largest_subtree


def test_standby_switch_without_nodes_is_invisible():
    # the mesh's standby switch carries no nodes, so it must simply not
    # appear in any shard rather than producing an empty one
    node_switches = _node_switches(mesh_cluster)
    assert "standby" not in node_switches.values()
    shards = subtree_partition(node_switches, 2)
    assert all(shards.values())


def test_more_shards_than_subtrees_collapses():
    node_switches = _node_switches(fat_tree_cluster)
    n_subtrees = len(set(node_switches.values()))
    shards = subtree_partition(node_switches, n_subtrees + 5)
    assert len(shards) == n_subtrees
