"""Differential proof: the ``paper-tree`` scenario IS the legacy world.

The registry refactor routed every driver through ScenarioSpec.build;
these tests pin the refactor's central promise — building the
``paper-tree`` cell is bit-for-bit identical to the legacy
``paper_scenario()`` path, in cluster shape, warmed monitor state,
evolved workload state, and experiment results.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.apps import MiniMD
from repro.cluster.topology import paper_cluster
from repro.experiments.runner import compare_policies
from repro.experiments.scenario import paper_scenario
from repro.scenarios import get_scenario

SEED = 5
WARMUP_S = 300.0


@pytest.fixture(scope="module")
def legacy():
    return paper_scenario(seed=SEED, warmup_s=WARMUP_S)


@pytest.fixture(scope="module")
def scenario():
    return get_scenario("paper-tree").build(SEED, warmup_s=WARMUP_S)


def test_cluster_identical():
    spec = get_scenario("paper-tree")
    specs_a, topo_a = spec.build_cluster()
    specs_b, topo_b = paper_cluster()
    assert specs_a == specs_b
    assert topo_a.switches == topo_b.switches
    assert topo_a.nodes == topo_b.nodes
    assert topo_a.extra_switch_links == () == topo_b.extra_switch_links
    for u in topo_a.nodes[:10]:
        for v in topo_a.nodes[-10:]:
            assert topo_a.path(u, v) == topo_b.path(u, v)


def test_warmed_snapshot_bit_identical(legacy, scenario):
    snap_a = legacy.snapshot()
    snap_b = scenario.snapshot()
    assert snap_a.time == snap_b.time
    assert dataclasses.asdict(snap_a) == dataclasses.asdict(snap_b)


def test_evolved_state_bit_identical(legacy, scenario):
    legacy.advance(600.0)
    scenario.advance(600.0)
    loads_a = {n: legacy.cluster.state(n).cpu_load for n in legacy.cluster.names}
    loads_b = {
        n: scenario.cluster.state(n).cpu_load for n in scenario.cluster.names
    }
    assert loads_a == loads_b
    assert dataclasses.asdict(legacy.snapshot()) == dataclasses.asdict(
        scenario.snapshot()
    )


def test_experiment_results_bit_identical(legacy, scenario):
    spec = get_scenario("paper-tree")
    results = []
    for sc in (legacy, scenario):
        rng = np.random.default_rng(99)
        cmp = compare_policies(
            sc, MiniMD(16), spec.request(16, ppn=4), rng=rng
        )
        results.append(
            {
                p: (r.allocation.nodes, r.time_s, r.mean_load_per_core)
                for p, r in cmp.runs.items()
            }
        )
    assert results[0] == results[1]


def test_workload_config_default_adds_no_regimes():
    spec = get_scenario("paper-tree")
    cfg = spec.workload_config
    assert cfg.diurnal is None and cfg.spikes is None
