"""The cross-scenario acceptance matrix.

Each registered scenario must uphold three properties:

* **quality** — the network-load-aware allocator's placements score no
  worse under Equation 4 than the random and sequential baselines
  picking from the same snapshot;
* **safety** — every policy's allocation is well-formed (no node
  granted twice, ppn respected, all nodes real);
* **determinism** — the same scenario at the same seed reproduces the
  comparison byte-for-byte.

Tier-1 sweeps the smoke cells; ``REPRO_NIGHTLY=1`` widens every test to
the full registry (see conftest).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import POLICY_ORDER, run_comparison
from repro.scenarios import get_scenario
from repro.scenarios.quality import policy_quality
from tests.scenarios.conftest import cached_comparison, matrix_names

MATRIX = matrix_names()


@pytest.mark.parametrize("name", MATRIX)
def test_eq4_quality_beats_baselines(name):
    q = policy_quality(name, seed=0, rounds=3, warmup_s=300.0)
    nla = q["network_load_aware"]
    assert nla <= q["random"], (
        f"{name}: network_load_aware scored {nla:.4f} vs "
        f"random {q['random']:.4f}"
    )
    assert nla <= q["sequential"], (
        f"{name}: network_load_aware scored {nla:.4f} vs "
        f"sequential {q['sequential']:.4f}"
    )


@pytest.mark.parametrize("name", MATRIX)
def test_allocations_well_formed(name):
    cmp = cached_comparison(name)
    cluster_nodes = set(get_scenario(name).build_cluster()[1].nodes)
    assert len(cmp.jobs) == 3
    for job in cmp.jobs:
        assert set(job.comparison.runs) == set(POLICY_ORDER)
        for run in job.comparison.runs.values():
            nodes = run.allocation.nodes
            # no node granted twice within one allocation
            assert len(set(nodes)) == len(nodes)
            assert set(nodes) <= cluster_nodes
            # ppn respected: ranks spread over ceil(n/ppn) nodes
            assert len(nodes) * 4 >= 16
            assert run.time_s > 0


@pytest.mark.parametrize("name", MATRIX)
def test_comparison_deterministic_under_seed(name):
    a = run_comparison(name, seed=1, n_jobs=2, warmup_s=300.0)
    b = run_comparison(name, seed=1, n_jobs=2, warmup_s=300.0)
    assert a.to_dict() == b.to_dict()


@pytest.mark.parametrize("name", MATRIX)
def test_scenario_metadata_round_trips(name):
    cmp = cached_comparison(name)
    spec = get_scenario(name)
    assert cmp.scenario == spec.name
    mix_apps = {j.app for j in spec.job_mix}
    for job in cmp.jobs:
        assert job.app in mix_apps
        assert 0.0 <= job.alpha <= 1.0
    d = cmp.to_dict()
    assert d["scenario"] == name and d["n_jobs"] == 3
    assert set(d["mean_times_s"]) == set(POLICY_ORDER)


def test_improvement_metric_consistent():
    cmp = cached_comparison("paper-tree")
    means = cmp.mean_times()
    expected = (
        (means["random"] - means["network_load_aware"])
        / means["random"] * 100.0
    )
    assert cmp.improvement_pct("random") == pytest.approx(expected)
