"""Every experiment driver accepts a scenario name (wiring coverage).

The elastic and fleet drivers compose a scenario's topology, background
processes and arrivals with their own drifting ambient load; these
tests pin the composition rules and that a scenario world threads all
the way through each driver without disturbing the legacy (None) path.
"""

from __future__ import annotations

import pytest

from repro.elastic.experiment import drifting_world, submit_offsets
from repro.scenarios import get_scenario
from repro.util.rng import RngStream
from repro.workload.generator import WorkloadConfig


def test_legacy_world_unchanged():
    specs, topo, cfg, spec = drifting_world(
        None, drift_intensity=1.0, n_nodes=12, nodes_per_switch=4
    )
    assert spec is None
    assert len(specs) == 12
    assert topo.extra_switch_links == ()
    # the drifting ambient OU is what distinguishes this config
    assert cfg != WorkloadConfig()


def test_scenario_world_takes_topology_keeps_drift():
    specs, topo, cfg, spec = drifting_world(
        "fat-tree", drift_intensity=1.0, n_nodes=12, nodes_per_switch=4
    )
    assert spec is get_scenario("fat-tree")
    assert len(specs) == 24
    assert topo.extra_switch_links  # the scenario's redundant links
    legacy_cfg = drifting_world(
        None, drift_intensity=1.0, n_nodes=12, nodes_per_switch=4
    )[2]
    # ambient drift comes from the experiment, not the scenario...
    for f in ("ambient_load_mu", "ambient_load_theta", "ambient_load_sigma"):
        assert getattr(cfg, f) == getattr(legacy_cfg, f)
    # ...while job/flow background comes from the scenario
    base = spec.workload_config
    assert cfg.jobs == base.jobs and cfg.netflows == base.netflows


def test_scenario_world_carries_regimes():
    _specs, _topo, cfg, spec = drifting_world(
        "spike", drift_intensity=1.0, n_nodes=12, nodes_per_switch=4
    )
    assert cfg.spikes == spec.workload_config.spikes
    assert cfg.spikes is not None


def test_submit_offsets_fixed_vs_scenario():
    assert submit_offsets(None, 3, 600.0, RngStream(0)) == (0.0, 600.0, 1200.0)
    spec = get_scenario("bursty")
    offsets = submit_offsets(spec, 8, 600.0, RngStream(0))
    assert len(offsets) == 8
    assert offsets == tuple(sorted(offsets))
    assert all(t >= 0 for t in offsets)
    # deterministic in the stream seed
    assert offsets == submit_offsets(spec, 8, 600.0, RngStream(0))
    assert offsets != submit_offsets(spec, 8, 600.0, RngStream(1))


def test_unknown_scenario_raises():
    with pytest.raises(KeyError, match="registered"):
        drifting_world(
            "nope", drift_intensity=1.0, n_nodes=12, nodes_per_switch=4
        )
