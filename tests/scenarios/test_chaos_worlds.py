"""Chaos harness × scenario zoo: faults injected into non-paper worlds.

The harness's invariants (typed errors only, lease safety, liveness,
bounded quality) must hold when the world under fault is a registered
scenario instead of the legacy uniform tree — here the fat-tree and
bursty cells, the redundant-topology and storm-arrival shapes most
likely to break hidden assumptions.
"""

from __future__ import annotations

import pytest

from repro.chaos.runner import run_scenarios
from repro.chaos.scenarios import SMOKE_SCENARIOS, build_world
from repro.scenarios import get_scenario

#: the tier-1 trio: cheapest smoke faults, enough to cover grant,
#: degradation, and recovery paths on a foreign world
TRIO = tuple(SMOKE_SCENARIOS[:3])


@pytest.mark.parametrize("world", ["fat-tree", "bursty"])
def test_smoke_trio_holds_on_scenario_world(world):
    reports = run_scenarios(TRIO, seed=0, world=world)
    for report in reports:
        assert report.ok, (
            f"{report.name} on world {world!r} violated: "
            f"{[str(v) for v in report.checker.violations]}"
        )
    assert sum(r.stats.get("grants", 0) for r in reports) > 0


def test_build_world_uses_scenario_cluster():
    legacy = build_world(0)
    fat = build_world(0, scenario="fat-tree")
    assert set(fat.scenario.cluster.names) != set(legacy.scenario.cluster.names)
    assert len(fat.scenario.cluster.names) == 24


def test_build_world_carries_quality_bound():
    spec = get_scenario("bursty")
    world = build_world(0, scenario="bursty")
    assert world.quality_bound == spec.chaos_quality_bound
    assert build_world(0).quality_bound == 3.0  # legacy calibration


def test_unknown_world_rejected():
    with pytest.raises(KeyError, match="registered"):
        build_world(0, scenario="no-such-world")
