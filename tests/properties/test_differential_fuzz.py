"""Differential fuzz: 500 random snapshots, array fast path vs dict oracle.

The acceptance bar for the vectorized allocator is *bitwise agreement on
the decision*: for every randomized snapshot and request shape, the
NumPy fast path (``use_arrays=True``) must pick the identical node
group, process layout, and metadata (within 1e-9) as the pure-dict
reference implementation (``use_arrays=False``).  This sweep is the
volume complement to tests/core/test_array_equivalence.py: same
helpers, ~500 seeded trials spanning missing pairs, degenerate loads,
dead hosts, exclude masks, and tie-heavy uniform clusters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import TradeOff

from tests.core.test_array_equivalence import (
    assert_allocations_equal,
    random_snapshot,
)

N_TRIALS = 500
_CHUNK = 50

_DEGENERACY_MENU = (
    {},
    {"missing_fraction": 0.3},
    {"missing_fraction": 0.9},
    {"zero_load_fraction": 0.6},
    {"zero_load_fraction": 1.0},  # all-zero: every compute load ties
    {"full_load_fraction": 0.6},
    {"missing_fraction": 0.4, "dead_fraction": 0.3},
    {"missing_fraction": 0.2, "zero_load_fraction": 0.3,
     "full_load_fraction": 0.3},
)


def _one_trial(trial: int) -> int:
    """Run one randomized snapshot through both paths; returns checks made."""
    rng = np.random.default_rng(90_000 + trial)
    config = _DEGENERACY_MENU[trial % len(_DEGENERACY_MENU)]
    n_nodes = int(rng.integers(2, 10))
    snap = random_snapshot(rng, n_nodes, **config)
    fast = NetworkLoadAwarePolicy(use_arrays=True)
    oracle = NetworkLoadAwarePolicy(use_arrays=False)

    capacity = sum(
        snap.nodes[n].cores for n in snap.livehosts if n in snap.nodes
    )
    n = int(rng.integers(1, max(2, capacity + 4)))  # includes oversubscribed
    ppn = [None, 1, 2, 4][int(rng.integers(0, 4))]
    alpha = float(rng.choice([0.0, 0.3, 0.5, 0.7, 1.0]))
    request = AllocationRequest(
        n_processes=n, ppn=ppn, tradeoff=TradeOff.from_alpha(alpha)
    )
    exclude = frozenset()
    if n_nodes > 2 and rng.uniform() < 0.3:
        k = int(rng.integers(1, n_nodes - 1))
        exclude = frozenset(
            str(x) for x in rng.choice(list(snap.nodes), size=k, replace=False)
        )

    try:
        a = fast.allocate(snap, request, exclude=exclude)
    except Exception as exc_fast:
        # Both paths must fail identically — same type, and never an
        # arithmetic error.
        assert not isinstance(exc_fast, (ZeroDivisionError, FloatingPointError))
        with pytest.raises(type(exc_fast)):
            oracle.allocate(snap, request, exclude=exclude)
        return 1
    b = oracle.allocate(snap, request, exclude=exclude)
    assert_allocations_equal(a, b)
    assert sum(a.procs.values()) == n
    assert not set(a.nodes) & exclude
    return 1


@pytest.mark.parametrize("chunk", range(N_TRIALS // _CHUNK))
def test_fast_path_matches_oracle_500_snapshots(chunk):
    agreed = sum(
        _one_trial(trial)
        for trial in range(chunk * _CHUNK, (chunk + 1) * _CHUNK)
    )
    assert agreed == _CHUNK  # 500/500 across the full parametrization
