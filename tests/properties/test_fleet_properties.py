"""Property tests for the fleet utility curves and global optimizer.

The optimizer's greedy-by-marginal-utility pass is only correct if the
curve families deliver what they promise, so Hypothesis checks the
contract directly:

* every family is monotone non-decreasing in ranks;
* marginal utility never increases with size (concavity) — the property
  that makes greedy expansion order-optimal;
* exact closed forms at ``k = 1`` per family (Amdahl / log / linear);
* the optimizer invariant: the fleet objective after a pass is never
  below the objective before it, on arbitrary job/queue/capacity mixes.

Runs under the pinned "repro" profile registered in tests/conftest.py
(derandomized, capped examples, no deadline).
"""

from __future__ import annotations

import math

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.fleet.optimizer import (  # noqa: E402
    FleetJobState,
    FleetOptimizer,
    FleetWeights,
    PendingJobState,
    fleet_objective,
)
from repro.fleet.utility import FAMILIES, SpeedupCurve, curve_for_class  # noqa: E402

TOL = 1e-9

curves = st.one_of(
    st.builds(
        lambda f: SpeedupCurve("amdahl", serial_fraction=f),
        st.floats(0.0, 1.0),
    ),
    st.builds(
        lambda c: SpeedupCurve("log", log_scale=c),
        st.floats(0.0, 3.0),
    ),
    st.builds(
        lambda e: SpeedupCurve("linear", efficiency=e),
        st.floats(0.01, 1.0),
    ),
)


class TestCurveShape:
    @given(curve=curves, ranks=st.integers(1, 256))
    def test_speedup_monotone_non_decreasing(self, curve, ranks):
        assert curve.speedup(ranks + 1) >= curve.speedup(ranks) - TOL

    @given(curve=curves, ranks=st.integers(1, 256))
    def test_speedup_at_one_rank_is_one(self, curve, ranks):
        assert curve.speedup(1) == pytest.approx(1.0)
        assert curve.speedup(ranks) >= 1.0 - TOL

    @given(curve=curves, ranks=st.integers(1, 128), k=st.integers(1, 16))
    def test_marginal_utility_diminishes(self, curve, ranks, k):
        # concavity: the k-rank gain from a larger base never beats the
        # same gain from a smaller base
        early = curve.marginal_utility(ranks, k)
        late = curve.marginal_utility(ranks + 1, k)
        assert late <= early + TOL

    @given(curve=curves, ranks=st.integers(2, 256))
    def test_shrink_marginal_is_non_positive(self, curve, ranks):
        assert curve.marginal_utility(ranks, -1) <= TOL


class TestClosedForms:
    @given(f=st.floats(0.0, 1.0), n=st.integers(1, 256))
    def test_amdahl_exact(self, f, n):
        curve = SpeedupCurve("amdahl", serial_fraction=f)
        expected = 1.0 / (f + (1.0 - f) / n)
        assert curve.speedup(n) == pytest.approx(expected)
        assert curve.marginal_utility(n, 1) == pytest.approx(
            1.0 / (f + (1.0 - f) / (n + 1)) - expected
        )

    @given(c=st.floats(0.0, 3.0), n=st.integers(1, 256))
    def test_log_exact(self, c, n):
        curve = SpeedupCurve("log", log_scale=c)
        assert curve.speedup(n) == pytest.approx(1.0 + c * math.log(n))
        assert curve.marginal_utility(n, 1) == pytest.approx(
            c * math.log((n + 1) / n)
        )

    @given(e=st.floats(0.01, 1.0), n=st.integers(1, 256))
    def test_linear_exact(self, e, n):
        curve = SpeedupCurve("linear", efficiency=e)
        assert curve.speedup(n) == pytest.approx(1.0 + e * (n - 1))
        # every +1 rank is worth exactly the efficiency
        assert curve.marginal_utility(n, 1) == pytest.approx(e)

    @given(
        job_class=st.text(min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    def test_class_curves_are_deterministic(self, job_class, seed):
        a = curve_for_class(job_class, seed=seed)
        b = curve_for_class(job_class, seed=seed)
        assert a == b
        assert a.family in FAMILIES


# -- optimizer invariant ------------------------------------------------

job_states = st.builds(
    lambda i, ranks, cls, max_extra, weight: FleetJobState(
        job_id=f"j{i}",
        ranks=ranks,
        curve=curve_for_class(f"class-{cls}"),
        min_ranks=1,
        max_ranks=None if max_extra is None else ranks + max_extra,
        weight=weight,
    ),
    i=st.integers(0, 10_000),
    ranks=st.integers(1, 16),
    cls=st.integers(0, 7),
    max_extra=st.one_of(st.none(), st.integers(0, 16)),
    weight=st.sampled_from([0.5, 1.0, 2.0]),
)

pending_states = st.builds(
    lambda i, ranks, cls, wait: PendingJobState(
        job_id=f"p{i}",
        ranks=ranks,
        curve=curve_for_class(f"class-{cls}"),
        wait_s=wait,
    ),
    i=st.integers(0, 10_000),
    ranks=st.integers(1, 16),
    cls=st.integers(0, 7),
    wait=st.floats(0.0, 3600.0),
)


def _dedupe(states):
    seen = set()
    out = []
    for s in states:
        if s.job_id not in seen:
            seen.add(s.job_id)
            out.append(s)
    return out


class TestOptimizerInvariant:
    @given(
        jobs=st.lists(job_states, max_size=8).map(_dedupe),
        pending=st.lists(pending_states, max_size=4).map(_dedupe),
        capacity=st.integers(4, 256),
        w_util=st.floats(0.0, 4.0),
        w_fair=st.floats(0.0, 2.0),
    )
    def test_pass_never_degrades_objective(
        self, jobs, pending, capacity, w_util, w_fair
    ):
        weights = FleetWeights(utilization=w_util, fairness=w_fair)
        optimizer = FleetOptimizer(weights=weights)
        result = optimizer.optimize(jobs, pending, capacity)
        assert result.objective_after >= result.objective_before - TOL
        assert result.objective_gain >= -TOL

    @given(
        jobs=st.lists(job_states, max_size=8).map(_dedupe),
        capacity=st.integers(4, 256),
    )
    def test_reported_before_matches_fleet_objective(self, jobs, capacity):
        optimizer = FleetOptimizer()
        result = optimizer.optimize(jobs, [], capacity)
        assert result.objective_before == pytest.approx(
            fleet_objective(jobs, capacity, optimizer.weights)
        )
