"""Property tests for the scenario zoo's generators.

Three families, all seed-deterministic by contract:

* topology builders always yield connected switch graphs whose routed
  paths traverse only real, capacitated links;
* arrival generators always produce sorted, non-negative offset tuples
  that are byte-identical under the same seed;
* the diurnal/spike regime configs keep their mathematical envelopes.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

import networkx as nx  # noqa: E402

from repro.scenarios.topologies import (  # noqa: E402
    fat_tree_cluster,
    hetero_accel_cluster,
    mesh_cluster,
)
from repro.workload.arrivals import (  # noqa: E402
    bursty_arrivals,
    diurnal_arrivals,
    fixed_arrivals,
    poisson_arrivals,
)
from repro.workload.regimes import DiurnalConfig  # noqa: E402


def _check_topology(specs, topo):
    switch_graph = topo.graph.subgraph(topo.switches)
    assert nx.is_connected(switch_graph)
    assert set(topo.nodes) == {s.name for s in specs}
    for s in specs:
        assert s.switch in topo.switches
    sample = topo.nodes[:: max(1, len(topo.nodes) // 6)]
    for u in sample:
        for v in sample:
            if u == v:
                assert topo.hops(u, v) == 0
                continue
            path = topo.path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(set(path)) == len(path)
            for a, b in zip(path[:-1], path[1:]):
                assert topo.link_capacity(a, b) > 0
            # routing is symmetric: same links both directions
            assert topo.links_on_path(u, v) == tuple(
                reversed(topo.links_on_path(v, u))
            )


@given(
    n_nodes=st.integers(min_value=1, max_value=40),
    nodes_per_switch=st.integers(min_value=1, max_value=12),
)
def test_fat_tree_always_consistent(n_nodes, nodes_per_switch):
    specs, topo = fat_tree_cluster(
        n_nodes, nodes_per_switch=nodes_per_switch
    )
    assert len(specs) == n_nodes
    _check_topology(specs, topo)


@given(
    n_nodes=st.integers(min_value=1, max_value=30),
    nodes_per_switch=st.integers(min_value=1, max_value=10),
    with_standby=st.booleans(),
)
def test_mesh_always_consistent(n_nodes, nodes_per_switch, with_standby):
    specs, topo = mesh_cluster(
        n_nodes, nodes_per_switch=nodes_per_switch, with_standby=with_standby
    )
    assert len(specs) == n_nodes
    _check_topology(specs, topo)


@given(
    n_fast=st.integers(min_value=0, max_value=12),
    n_slow=st.integers(min_value=0, max_value=12),
    n_accel=st.integers(min_value=1, max_value=12),
    nodes_per_switch=st.integers(min_value=1, max_value=10),
)
def test_hetero_always_consistent(n_fast, n_slow, n_accel, nodes_per_switch):
    specs, topo = hetero_accel_cluster(
        n_fast=n_fast, n_slow=n_slow, n_accel=n_accel,
        nodes_per_switch=nodes_per_switch,
    )
    assert len(specs) == n_fast + n_slow + n_accel
    _check_topology(specs, topo)


# ----------------------------------------------------------------------
arrival_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _check_offsets(offsets, n):
    assert isinstance(offsets, tuple) and len(offsets) == n
    assert all(isinstance(t, float) and t >= 0.0 for t in offsets)
    assert list(offsets) == sorted(offsets)
    assert offsets[0] == 0.0


@given(n=st.integers(min_value=1, max_value=50), seed=arrival_seeds)
def test_poisson_arrivals_sorted_and_seed_identical(n, seed):
    a = poisson_arrivals(n, 300.0, np.random.default_rng(seed))
    b = poisson_arrivals(n, 300.0, np.random.default_rng(seed))
    _check_offsets(a, n)
    assert a == b


@given(
    n=st.integers(min_value=1, max_value=50),
    burst_size=st.integers(min_value=1, max_value=10),
    seed=arrival_seeds,
)
def test_bursty_arrivals_sorted_and_seed_identical(n, burst_size, seed):
    kwargs = dict(
        burst_size=burst_size, within_burst_s=20.0, between_bursts_s=900.0
    )
    a = bursty_arrivals(n, rng=np.random.default_rng(seed), **kwargs)
    b = bursty_arrivals(n, rng=np.random.default_rng(seed), **kwargs)
    _check_offsets(a, n)
    assert a == b


@given(
    n=st.integers(min_value=1, max_value=50),
    amplitude=st.floats(min_value=0.0, max_value=0.95),
    seed=arrival_seeds,
)
def test_diurnal_arrivals_sorted_and_seed_identical(n, amplitude, seed):
    kwargs = dict(
        mean_interarrival_s=400.0, period_s=7200.0, amplitude=amplitude
    )
    a = diurnal_arrivals(n, rng=np.random.default_rng(seed), **kwargs)
    b = diurnal_arrivals(n, rng=np.random.default_rng(seed), **kwargs)
    _check_offsets(a, n)
    assert a == b


@given(n=st.integers(min_value=1, max_value=50))
def test_fixed_arrivals_exact(n):
    offsets = fixed_arrivals(n, 600.0)
    _check_offsets(offsets, n)
    assert all(
        b - a == 600.0 for a, b in zip(offsets[:-1], offsets[1:])
    )


# ----------------------------------------------------------------------
@given(
    t=st.floats(min_value=0.0, max_value=1e7),
    amplitude=st.floats(min_value=0.0, max_value=0.95),
    period=st.floats(min_value=60.0, max_value=1e6),
)
def test_diurnal_factor_envelope_and_periodicity(t, amplitude, period):
    cfg = DiurnalConfig(period_s=period, amplitude=amplitude)
    f = cfg.factor(t)
    assert 1.0 - amplitude <= f <= 1.0 + amplitude
    assert f > 0.0  # a mean multiplier must never go non-positive
    assert cfg.factor(t + period) == pytest.approx(f, abs=1e-6)
