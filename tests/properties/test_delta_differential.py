"""Differential fuzz: incremental delta application ≡ full rebuild.

The incremental hot path (``compute_delta`` → ``apply_snapshot_delta``
→ ``LoadState.apply_delta``) must be *bit-identical* to throwing the old
snapshot away and rebuilding every derived array from the new one.  The
sweep drives randomized delta sequences — node-load drift, link drift,
both, neither — over random clusters and compares the migrated state
against a from-scratch rebuild after every step: CL/NL/PC arrays with
exact equality, and the resulting allocation decision for a spread of
request shapes.

Edges covered explicitly: the empty delta (state object reused, not
copied), the everything-changed delta (every node and every measured
link moves), and structural changes (which must refuse to produce a
delta at all).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.arrays import load_state
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import TradeOff
from repro.monitor.delta import (
    SnapshotDelta,
    apply_snapshot_delta,
    compute_delta,
    snapshot_lineage,
)
from repro.monitor.snapshot import ClusterSnapshot, NodeView

from tests.core.test_array_equivalence import random_snapshot


def _drift_stats(rng: np.random.Generator, stats: dict) -> dict:
    factor = float(rng.uniform(0.5, 1.5))
    return {k: float(v) * factor for k, v in stats.items()}


def perturb(
    rng: np.random.Generator,
    snap: ClusterSnapshot,
    *,
    node_fraction: float,
    link_fraction: float,
    drift_users: bool = True,
) -> ClusterSnapshot:
    """A topologically identical snapshot with drifted dynamic values."""
    views: dict[str, NodeView] = {}
    for name, view in snap.nodes.items():
        if rng.uniform() < node_fraction:
            views[name] = dataclasses.replace(
                view,
                cpu_load=_drift_stats(rng, view.cpu_load),
                flow_rate_mbs=_drift_stats(rng, view.flow_rate_mbs),
                users=int(rng.integers(0, 5)) if drift_users else view.users,
            )
        else:
            views[name] = view
    bandwidth = dict(snap.bandwidth_mbs)
    latency = dict(snap.latency_us)
    for key in snap.bandwidth_mbs:
        if rng.uniform() < link_fraction:
            bandwidth[key] = float(
                min(snap.peak_bandwidth_mbs[key], bandwidth[key] * rng.uniform(0.5, 1.2))
            )
            latency[key] = float(latency[key] * rng.uniform(0.5, 1.5))
    return ClusterSnapshot(
        time=snap.time + 1.0,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=snap.peak_bandwidth_mbs,
        livehosts=snap.livehosts,
    )


def _fresh_copy(snap: ClusterSnapshot) -> ClusterSnapshot:
    """The same cluster facts in a brand-new object (no derived cache)."""
    return ClusterSnapshot(
        time=snap.time,
        nodes=dict(snap.nodes),
        bandwidth_mbs=dict(snap.bandwidth_mbs),
        latency_us=dict(snap.latency_us),
        peak_bandwidth_mbs=dict(snap.peak_bandwidth_mbs),
        livehosts=snap.livehosts,
    )


def _state_kwargs(snap: ClusterSnapshot) -> dict:
    return {"nodes": list(snap.nodes), "ppn": 4}


def assert_states_identical(incremental, rebuilt) -> None:
    assert incremental.nodes == rebuilt.nodes
    assert incremental.cl == rebuilt.cl
    assert incremental.nl == rebuilt.nl
    assert incremental.pc == rebuilt.pc
    assert np.array_equal(incremental.cl_vec, rebuilt.cl_vec)
    assert np.array_equal(incremental.nl_mat, rebuilt.nl_mat)
    assert np.array_equal(incremental.pc_vec, rebuilt.pc_vec)
    assert incremental.missing_penalty == rebuilt.missing_penalty


DRIFT_MIXES = [
    (0.3, 0.0),  # node loads only
    (0.0, 0.3),  # links only
    (0.4, 0.4),  # both
    (1.0, 1.0),  # everything moves at once
]


class TestDeltaEqualsRebuild:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mix", DRIFT_MIXES, ids=lambda m: f"n{m[0]}l{m[1]}")
    def test_randomized_delta_sequences(self, seed, mix):
        node_fraction, link_fraction = mix
        rng = np.random.default_rng(41_000 + seed)
        snap = random_snapshot(rng, int(rng.integers(6, 14)), missing_fraction=0.2)
        state = load_state(snap, **_state_kwargs(snap))
        policy = NetworkLoadAwarePolicy()
        for _ in range(4):
            target = perturb(
                rng, snap,
                node_fraction=node_fraction,
                link_fraction=link_fraction,
            )
            delta = compute_delta(snap, target)
            assert delta is not None, "non-structural drift must delta"
            patched = apply_snapshot_delta(snap, delta)
            migrated = load_state(patched, **_state_kwargs(patched))
            rebuilt = load_state(_fresh_copy(patched), **_state_kwargs(patched))
            assert_states_identical(migrated, rebuilt)
            request = AllocationRequest(
                n_processes=int(rng.integers(2, 9)),
                ppn=4,
                tradeoff=TradeOff.from_alpha(0.3),
            )
            a = policy.allocate(patched, request)
            b = policy.allocate(_fresh_copy(patched), request)
            assert a.nodes == b.nodes and dict(a.procs) == dict(b.procs)
            snap, state = patched, migrated

    def test_empty_delta_reuses_state_object(self):
        rng = np.random.default_rng(7)
        snap = random_snapshot(rng, 8)
        state = load_state(snap, **_state_kwargs(snap))
        twin = _fresh_copy(snap)
        delta = compute_delta(snap, twin)
        assert delta is not None and delta.is_empty
        assert state.apply_delta(snap, delta) is state
        assert state.generation == 0

    def test_every_node_changed_delta(self):
        rng = np.random.default_rng(8)
        snap = random_snapshot(rng, 10, missing_fraction=0.1)
        state = load_state(snap, **_state_kwargs(snap))
        target = perturb(rng, snap, node_fraction=1.0, link_fraction=1.0)
        delta = compute_delta(snap, target)
        assert delta is not None
        assert delta.affected_nodes() == frozenset(snap.nodes)
        patched = apply_snapshot_delta(snap, delta)
        migrated = load_state(patched, **_state_kwargs(patched))
        assert migrated.generation == state.generation + 1
        rebuilt = load_state(_fresh_copy(patched), **_state_kwargs(patched))
        assert_states_identical(migrated, rebuilt)

    def test_generation_counts_applied_deltas(self):
        rng = np.random.default_rng(9)
        snap = random_snapshot(rng, 8)
        load_state(snap, **_state_kwargs(snap))
        for expected_gen in (1, 2, 3):
            target = perturb(rng, snap, node_fraction=0.5, link_fraction=0.5)
            delta = compute_delta(snap, target)
            snap = apply_snapshot_delta(snap, delta)
            state = load_state(snap, **_state_kwargs(snap))
            assert state.generation == expected_gen
            serial, gen, affected = snapshot_lineage(snap)
            assert gen == expected_gen and affected == delta.affected_nodes()


class TestStructuralChangesRefuse:
    def test_node_set_change_is_structural(self):
        rng = np.random.default_rng(10)
        snap = random_snapshot(rng, 6)
        nodes = dict(snap.nodes)
        nodes.pop(next(iter(nodes)))
        shrunk = dataclasses.replace(snap, nodes=nodes)
        assert compute_delta(snap, shrunk) is None

    def test_livehosts_change_is_structural(self):
        rng = np.random.default_rng(11)
        snap = random_snapshot(rng, 6)
        drained = dataclasses.replace(snap, livehosts=snap.livehosts[:-1])
        assert compute_delta(snap, drained) is None

    def test_pair_set_change_is_structural(self):
        rng = np.random.default_rng(12)
        snap = random_snapshot(rng, 6)
        bandwidth = dict(snap.bandwidth_mbs)
        bandwidth.pop(next(iter(bandwidth)))
        lost = dataclasses.replace(snap, bandwidth_mbs=bandwidth)
        assert compute_delta(snap, lost) is None

    def test_static_spec_change_is_structural(self):
        rng = np.random.default_rng(13)
        snap = random_snapshot(rng, 6)
        name, view = next(iter(snap.nodes.items()))
        nodes = dict(snap.nodes)
        nodes[name] = dataclasses.replace(view, cores=view.cores + 2)
        upgraded = dataclasses.replace(snap, nodes=nodes)
        assert compute_delta(snap, upgraded) is None


class TestThresholds:
    def test_subthreshold_drift_is_dropped(self):
        rng = np.random.default_rng(14)
        snap = random_snapshot(rng, 6)
        target = perturb(
            rng, snap, node_fraction=1.0, link_fraction=1.0, drift_users=False
        )
        # users is an exact compare (no threshold), so hold it fixed here
        delta = compute_delta(
            snap, target, node_threshold=10.0, link_threshold=10.0
        )
        assert delta is not None and delta.is_empty

    def test_canonical_pair_order_enforced(self):
        with pytest.raises(ValueError, match="canonically ordered"):
            SnapshotDelta(time=0.0, latency_us={("b", "a"): 1.0})
