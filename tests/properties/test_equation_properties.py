"""Property tests for the paper's Equations 1–4 and Algorithm 2.

Hypothesis drives the *structure* of each example (node count, seed,
degeneracy fractions); numpy expands the seed into attribute values.
This keeps examples diverse and shrinkable while making accidental
ties measure-zero — the invariants under test are:

* Eq. 1/2: sum-normalized loads land in [0, 1]; mean-normalized loads
  are finite and non-negative regardless of input degeneracy.
* Eq. 3: ``pc_v`` always lands in [1, coreCount_v].
* Algorithm 2 / Eq. 4: the selected score (and score multiset) is
  invariant under node relabeling — only measurements matter, never
  what a node happens to be called.
* Degenerate inputs (all-zero loads, single node, no measured pairs)
  never divide by zero.

Runs under the pinned "repro" profile registered in tests/conftest.py
(derandomized, capped examples, no deadline).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.core.candidate import generate_all_candidates  # noqa: E402
from repro.core.compute_load import compute_loads  # noqa: E402
from repro.core.effective_procs import (  # noqa: E402
    effective_proc_count,
    effective_proc_counts,
)
from repro.core.network_load import network_loads  # noqa: E402
from repro.core.policies import (  # noqa: E402
    AllocationRequest,
    NetworkLoadAwarePolicy,
)
from repro.core.selection import score_candidates, select_best  # noqa: E402
from repro.core.weights import TradeOff  # noqa: E402

from tests.core.test_array_equivalence import random_snapshot  # noqa: E402

TOL = 1e-9

snapshots = st.builds(
    lambda seed, n, missing, zero, full: random_snapshot(
        np.random.default_rng(seed),
        n,
        missing_fraction=missing,
        zero_load_fraction=zero,
        full_load_fraction=full,
    ),
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 12),
    missing=st.sampled_from([0.0, 0.3, 1.0]),
    zero=st.sampled_from([0.0, 0.5, 1.0]),
    full=st.sampled_from([0.0, 0.5]),
)


class TestNormalizedLoadRanges:
    @given(snap=snapshots)
    def test_compute_loads_sum_normalized_in_unit_interval(self, snap):
        loads = compute_loads(snap, method="sum")
        assert set(loads) == set(snap.nodes)
        for node, value in loads.items():
            assert math.isfinite(value), node
            assert -TOL <= value <= 1.0 + TOL, (node, value)

    @given(snap=snapshots)
    def test_compute_loads_mean_normalized_finite_nonnegative(self, snap):
        loads = compute_loads(snap, method="mean")
        for node, value in loads.items():
            assert math.isfinite(value), node
            assert value >= -TOL, (node, value)

    @given(snap=snapshots)
    def test_network_loads_sum_normalized_in_unit_interval(self, snap):
        nl = network_loads(snap, method="sum")
        for pair, value in nl.items():
            assert math.isfinite(value), pair
            assert -TOL <= value <= 1.0 + TOL, (pair, value)

    @given(snap=snapshots)
    def test_network_loads_mean_normalized_finite_nonnegative(self, snap):
        nl = network_loads(snap, method="mean")
        for pair, value in nl.items():
            assert math.isfinite(value), pair
            assert value >= -TOL, (pair, value)


class TestEffectiveProcCountRange:
    @given(
        cores=st.integers(1, 256),
        load=st.floats(
            0.0, 1e6, allow_nan=False, allow_infinity=False
        ),
    )
    def test_scalar_in_one_to_cores(self, cores, load):
        pc = effective_proc_count(cores, load)
        assert 1 <= pc <= cores, (cores, load, pc)

    @given(snap=snapshots)
    def test_vector_respects_each_nodes_core_count(self, snap):
        pcs = effective_proc_counts(snap)
        assert set(pcs) == set(snap.nodes)
        for node, pc in pcs.items():
            assert 1 <= pc <= snap.nodes[node].cores, (node, pc)

    @given(snap=snapshots, ppn=st.integers(1, 16))
    def test_explicit_ppn_overrides_formula(self, snap, ppn):
        pcs = effective_proc_counts(snap, ppn=ppn)
        assert all(pc == ppn for pc in pcs.values())


def _relabel(mapping, cl, nl, pc, names):
    """Apply a node-name bijection to every Algorithm-2 input."""
    cl2 = {mapping[n]: v for n, v in cl.items()}
    pc2 = {mapping[n]: v for n, v in pc.items()}
    nl2 = {}
    for (a, b), v in nl.items():
        x, y = mapping[a], mapping[b]
        nl2[(x, y) if x <= y else (y, x)] = v
    return cl2, nl2, pc2, [mapping[n] for n in names]


class TestSelectionRelabelingInvariance:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_nodes=st.integers(2, 10),
        alpha=st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]),
        n_procs=st.integers(1, 24),
    )
    def test_scores_invariant_under_relabeling(
        self, seed, n_nodes, alpha, n_procs
    ):
        rng = np.random.default_rng(seed)
        names = [f"n{i:02d}" for i in range(n_nodes)]
        # Continuous draws: ties between distinct nodes are measure-zero,
        # so candidate growth order is determined by costs, not names.
        cl = {n: float(v) for n, v in zip(names, rng.uniform(0.1, 2.0, n_nodes))}
        pc = {n: int(rng.integers(1, 9)) for n in names}
        nl = {}
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if rng.uniform() < 0.8:  # some pairs unmeasured
                    nl[(a, b)] = float(rng.uniform(0.05, 1.5))
        tradeoff = TradeOff.from_alpha(alpha)

        # An order-scrambling bijection: new names sort differently.
        perm = rng.permutation(n_nodes)
        mapping = {n: f"z{int(k):02d}" for n, k in zip(names, perm)}
        cl2, nl2, pc2, names2 = _relabel(mapping, cl, nl, pc, names)

        cands1 = generate_all_candidates(names, cl, nl, pc, n_procs, tradeoff)
        cands2 = generate_all_candidates(names2, cl2, nl2, pc2, n_procs, tradeoff)
        scored1 = score_candidates(cands1, cl, nl, tradeoff)
        scored2 = score_candidates(cands2, cl2, nl2, tradeoff)

        totals1 = sorted(s.total for s in scored1)
        totals2 = sorted(s.total for s in scored2)
        assert len(totals1) == len(totals2)
        for t1, t2 in zip(totals1, totals2):
            assert abs(t1 - t2) <= TOL

        best1 = select_best(cands1, cl, nl, tradeoff)
        best2 = select_best(cands2, cl2, nl2, tradeoff)
        assert abs(best1.total - best2.total) <= TOL

        # With a uniquely-best score the winning *group* must map exactly
        # (ties fall back to the name-based deterministic tiebreak, which
        # relabeling legitimately permutes).
        runners_up = [t for t in totals1 if t > best1.total + TOL]
        unique = len([t for t in totals1 if abs(t - best1.total) <= TOL]) == 1
        if unique and (not runners_up or runners_up[0] > best1.total + TOL):
            mapped = {mapping[n] for n in best1.candidate.nodes}
            assert mapped == set(best2.candidate.nodes)
            for node, procs in best1.candidate.procs.items():
                assert best2.candidate.procs[mapping[node]] == procs


class TestDegenerateInputs:
    """The paper's formulas all divide by aggregate sums — every one of
    these inputs makes at least one of those sums zero or empty."""

    def test_all_zero_loads_snapshot(self):
        snap = random_snapshot(
            np.random.default_rng(5), 6, zero_load_fraction=1.0
        )
        loads = compute_loads(snap, method="sum")
        assert all(math.isfinite(v) for v in loads.values())
        alloc = NetworkLoadAwarePolicy().allocate(
            snap, AllocationRequest(n_processes=4, ppn=2)
        )
        assert alloc.nodes

    def test_single_node_no_pairs(self):
        snap = random_snapshot(np.random.default_rng(9), 1)
        assert network_loads(snap) == {}
        loads = compute_loads(snap)
        assert len(loads) == 1
        alloc = NetworkLoadAwarePolicy().allocate(
            snap, AllocationRequest(n_processes=2, ppn=2)
        )
        assert len(alloc.nodes) == 1

    def test_no_measured_pairs_at_all(self):
        snap = random_snapshot(
            np.random.default_rng(13), 5, missing_fraction=1.0
        )
        assert network_loads(snap) == {}
        alloc = NetworkLoadAwarePolicy().allocate(
            snap, AllocationRequest(n_processes=6, ppn=2)
        )
        assert len(alloc.nodes) == 3

    @given(snap=snapshots, n=st.integers(1, 40))
    def test_policy_never_raises_arithmetic_errors(self, snap, n):
        policy = NetworkLoadAwarePolicy()
        try:
            alloc = policy.allocate(
                snap, AllocationRequest(n_processes=n, ppn=2)
            )
        except (ZeroDivisionError, FloatingPointError) as exc:
            pytest.fail(f"arithmetic blow-up on degenerate input: {exc!r}")
        except Exception:
            return  # typed domain errors (e.g. no live hosts) are fine
        assert sum(alloc.procs.values()) == n
