"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import paper_cluster, uniform_cluster
from repro.net.model import NetworkModel


# Pin hypothesis to a deterministic, CI-friendly profile: derandomized
# (same examples every run — property regressions bisect cleanly), a
# capped example budget, and no deadline (CI machines are noisy).
# Guarded so environments without hypothesis still run the rest of the
# suite; the property tests themselves skip via pytest.importorskip.
try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "repro",
        derandomize=True,
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")
except ImportError:  # pragma: no cover — hypothesis is a dev extra
    pass


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def paper_topo():
    """(specs, topology) of the §5 evaluation cluster."""
    return paper_cluster()


@pytest.fixture
def paper_cluster_obj(paper_topo) -> Cluster:
    specs, topo = paper_topo
    return Cluster(specs, topo)


@pytest.fixture
def small_topo():
    """A small 8-node, 2-switch homogeneous cluster."""
    return uniform_cluster(8, nodes_per_switch=4)


@pytest.fixture
def small_cluster(small_topo) -> Cluster:
    specs, topo = small_topo
    return Cluster(specs, topo)


@pytest.fixture
def small_network(small_topo) -> NetworkModel:
    _specs, topo = small_topo
    return NetworkModel(topo)
