"""Tests for LatencyD and BandwidthD."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.netdaemons import BandwidthD, LatencyD
from repro.monitor.store import InMemoryStore
from repro.net.flows import Flow
from repro.net.model import NetworkModel


@pytest.fixture
def env():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    return Engine(), InMemoryStore(), cluster, network


class TestLatencyD:
    def test_full_pair_coverage(self, env):
        engine, store, cluster, network = env
        d = LatencyD(engine, store, cluster, network, period_s=60.0)
        d.start()
        engine.run(60.0)
        for n in cluster.names:
            rec = store.value(f"latency/{n}")
            assert set(rec) == set(cluster.names) - {n}

    def test_symmetry(self, env):
        engine, store, cluster, network = env
        d = LatencyD(engine, store, cluster, network, period_s=60.0)
        d.start()
        engine.run(60.0)
        a = store.value("latency/node1")["node2"]["now"]
        b = store.value("latency/node2")["node1"]["now"]
        assert a == b

    def test_rolling_means_present_after_two_sweeps(self, env):
        engine, store, cluster, network = env
        d = LatencyD(engine, store, cluster, network, period_s=60.0)
        d.start()
        engine.run(120.0)
        stats = store.value("latency/node1")["node2"]
        assert stats["m1"] is not None
        assert stats["m5"] is not None

    def test_respects_livehosts(self, env):
        engine, store, cluster, network = env
        store.put("livehosts", ["node1", "node2", "node3"], 0.0)
        d = LatencyD(engine, store, cluster, network, period_s=60.0)
        d.start()
        engine.run(60.0)
        assert store.get("latency/node4") is None
        assert set(store.value("latency/node1")) == {"node2", "node3"}

    def test_cross_switch_slower_than_same_switch(self, env):
        engine, store, cluster, network = env
        d = LatencyD(engine, store, cluster, network, period_s=60.0)
        d.start()
        engine.run(60.0)
        same = store.value("latency/node1")["node2"]["now"]
        cross = store.value("latency/node1")["node4"]["now"]
        assert cross > same


class TestBandwidthD:
    def test_full_pair_coverage(self, env):
        engine, store, cluster, network = env
        d = BandwidthD(engine, store, cluster, network, period_s=300.0)
        d.start()
        engine.run(300.0)
        for n in cluster.names:
            rec = store.value(f"bandwidth/{n}")
            assert set(rec) == set(cluster.names) - {n}

    def test_idle_network_shows_peak(self, env):
        engine, store, cluster, network = env
        d = BandwidthD(engine, store, cluster, network, period_s=300.0)
        d.start()
        engine.run(300.0)
        assert store.value("bandwidth/node1")["node2"] == pytest.approx(125.0)

    def test_background_flow_reduces_measurement(self, env):
        engine, store, cluster, network = env
        network.add_flow(Flow("node1", "node3", 100.0))
        d = BandwidthD(engine, store, cluster, network, period_s=300.0)
        d.start()
        engine.run(300.0)
        assert store.value("bandwidth/node1")["node2"] < 125.0

    def test_respects_livehosts(self, env):
        engine, store, cluster, network = env
        store.put("livehosts", ["node1", "node2"], 0.0)
        d = BandwidthD(engine, store, cluster, network, period_s=300.0)
        d.start()
        engine.run(300.0)
        assert store.get("bandwidth/node5") is None
