"""Additional rolling-window scenarios: gaps, bursts, long horizons."""

import numpy as np
import pytest

from repro.monitor.rolling import RollingWindows


class TestGapsAndBursts:
    def test_long_gap_empties_short_window(self):
        rw = RollingWindows((60.0, 900.0))
        rw.add(0.0, 10.0)
        rw.add(500.0, 20.0)
        # 1-minute window at t=500 only covers the new sample
        assert rw.mean(60.0) == 20.0
        # 15-minute window still averages both
        assert rw.mean(900.0) == 15.0

    def test_burst_of_samples_same_second(self):
        rw = RollingWindows((60.0,))
        for v in (1.0, 2.0, 3.0, 4.0):
            rw.add(100.0, v)
        assert rw.mean(60.0) == pytest.approx(2.5)

    def test_spike_decays_through_windows(self):
        """A single spike weighs more in short windows than in long ones
        — the property that lets the allocator discount bursts."""
        rw = RollingWindows((60.0, 300.0, 900.0))
        t = 0.0
        for _ in range(170):  # 850 s of calm
            rw.add(t, 1.0)
            t += 5.0
        rw.add(t, 100.0)  # spike
        means = rw.means()
        assert means[60.0] > means[300.0] > means[900.0]

    def test_long_horizon_memory_bounded(self):
        rw = RollingWindows((60.0,))
        for i in range(100_000):
            rw.add(float(i), 1.0)
        # eviction keeps only ~window worth of samples
        assert len(rw) <= 62

    def test_mean_with_future_now_is_empty(self):
        rw = RollingWindows((60.0,))
        rw.add(0.0, 5.0)
        assert rw.mean(60.0, now=1e6) is None
