"""Last-writer-wins semantics when several daemons share one key."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.daemons import LivehostsD
from repro.monitor.store import FileStore, InMemoryStore, MemoryStore


@pytest.fixture(params=["memory", "serialized", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryStore()
    if request.param == "serialized":
        return MemoryStore()
    return FileStore(tmp_path / "nfs")


class TestSharedKeyWriters:
    def test_freshest_livehosts_wins(self, store):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        cluster = Cluster(specs, topo)
        engine = Engine()
        fast = LivehostsD(engine, store, cluster, instance="fast", period_s=7.0)
        slow = LivehostsD(engine, store, cluster, instance="slow", period_s=31.0)
        fast.start()
        slow.start()
        engine.run(300.0)
        t, _ = store.get("livehosts")
        # the fast instance wrote last (period 7 divides in more often)
        assert 300.0 - t < 7.0 + 1e-9

    def test_redundancy_covers_one_crash(self, store):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        cluster = Cluster(specs, topo)
        engine = Engine()
        a = LivehostsD(engine, store, cluster, instance="a", period_s=10.0)
        b = LivehostsD(engine, store, cluster, instance="b", period_s=25.0)
        a.start()
        b.start()
        engine.run(100.0)
        a.crash()
        engine.run(300.0)
        # data keeps flowing via the surviving instance
        assert store.age("livehosts", engine.now) <= 25.0
