"""CachedSnapshotSource staleness edges (satellite: broker freshness).

Edge behaviour the broker daemon depends on:

* the TTL boundary is *inclusive* — a snapshot exactly ``max_age_s``
  old is still served from cache; one tick past it rebuilds;
* concurrent readers racing a slow refresh all receive a valid
  snapshot (never ``None``, never a torn state);
* the ``refreshes``/``hits`` health counters account for every call
  exactly once, including around ``invalidate()``.

The clock is injected everywhere — no real-time sleeps except the
barrier-controlled stall inside the concurrency test's fake source.
"""

from __future__ import annotations

import threading

import pytest

from repro.monitor.snapshot import CachedSnapshotSource


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class CountingSource:
    """A snapshot source returning a fresh sentinel per build."""

    def __init__(self) -> None:
        self.builds = 0

    def __call__(self) -> object:
        self.builds += 1
        return ("snapshot", self.builds)


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def source() -> CountingSource:
    return CountingSource()


class TestTTLBoundary:
    def test_age_exactly_max_age_is_still_fresh(self, clock, source):
        """The freshness window is inclusive: age == max_age_s serves cache."""
        cached = CachedSnapshotSource(source, max_age_s=5.0, clock=clock)
        s1 = cached()
        clock.advance(5.0)  # exactly at the boundary
        assert cached() is s1
        assert source.builds == 1
        assert cached.age_s() == 5.0

    def test_one_tick_past_boundary_rebuilds(self, clock, source):
        cached = CachedSnapshotSource(source, max_age_s=5.0, clock=clock)
        s1 = cached()
        clock.advance(5.0 + 1e-9)
        s2 = cached()
        assert s2 is not s1
        assert source.builds == 2
        # the rebuild resets the age from the *call* time
        assert cached.age_s() == 0.0

    def test_zero_max_age_rebuilds_only_when_time_moves(self, clock, source):
        """max_age_s=0 still shares a snapshot among same-instant callers.

        The inclusive boundary matters most here: a burst of requests
        decided at one clock reading must share one snapshot object (and
        its derived cache) even with freshness set to zero.
        """
        cached = CachedSnapshotSource(source, max_age_s=0.0, clock=clock)
        s1 = cached()
        assert cached() is s1  # same instant: cache hit
        clock.advance(1e-9)
        assert cached() is not s1
        assert source.builds == 2

    def test_negative_max_age_rejected(self, clock):
        with pytest.raises(ValueError):
            CachedSnapshotSource(CountingSource(), max_age_s=-1.0, clock=clock)

    def test_refresh_hook_fires_per_rebuild_only(self, clock, source):
        hooks = []
        cached = CachedSnapshotSource(
            source, max_age_s=10.0, clock=clock,
            refresh_hook=lambda: hooks.append(clock()),
        )
        cached()
        cached()  # hit — no hook
        clock.advance(11.0)
        cached()
        assert hooks == [0.0, 11.0]


class TestConcurrentReaders:
    def test_readers_racing_a_slow_refresh_get_valid_snapshots(self, clock):
        """Readers arriving while a rebuild is in flight never see None.

        The first caller stalls inside the source; the rest pile in
        behind it.  Every thread must come back with a real snapshot
        (worst case the source is called more than once — correctness
        over economy), and the counters must account for every call.
        """
        n_readers = 8
        release = threading.Event()
        arrived = threading.Barrier(n_readers, timeout=10.0)
        build_lock = threading.Lock()
        builds = []

        def slow_source() -> object:
            release.wait(timeout=10.0)
            with build_lock:
                builds.append(len(builds))
                return ("snapshot", builds[-1])

        cached = CachedSnapshotSource(slow_source, max_age_s=100.0, clock=clock)
        results: list[object] = [None] * n_readers

        def reader(i: int) -> None:
            arrived.wait()
            if i == 0:
                release.set()
            results[i] = cached()

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(n_readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert all(r is not None for r in results)
        assert all(isinstance(r, tuple) and r[0] == "snapshot" for r in results)
        # every call is either a refresh or a hit — none vanish
        assert cached.refreshes + cached.hits == n_readers
        assert cached.refreshes == len(builds)

    def test_steady_state_readers_share_one_object(self, clock):
        """After warm-up, a thundering herd shares the cached snapshot."""
        source = CountingSource()
        cached = CachedSnapshotSource(source, max_age_s=100.0, clock=clock)
        first = cached()  # warm the cache single-threaded
        results: list[object] = []
        results_lock = threading.Lock()

        def reader() -> None:
            got = cached()
            with results_lock:
                results.append(got)

        threads = [threading.Thread(target=reader) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 16
        assert all(r is first for r in results)
        assert source.builds == 1
        assert cached.hits == 16


class TestHealthCounters:
    def test_every_call_is_exactly_one_hit_or_refresh(self, clock, source):
        cached = CachedSnapshotSource(source, max_age_s=5.0, clock=clock)
        calls = 0
        for dt in (0.0, 1.0, 1.0, 4.0, 0.0, 6.0, 2.0):
            clock.advance(dt)
            cached()
            calls += 1
            assert cached.refreshes + cached.hits == calls
        # trajectory: build, hit, hit, rebuild (age 6), hit, rebuild, hit
        assert cached.refreshes == 3
        assert cached.hits == 4
        assert source.builds == cached.refreshes

    def test_invalidate_forces_refresh_and_counts_it(self, clock, source):
        cached = CachedSnapshotSource(source, max_age_s=100.0, clock=clock)
        s1 = cached()
        assert cached.age_s() == 0.0
        cached.invalidate()
        assert cached.age_s() == float("inf")
        s2 = cached()
        assert s2 is not s1
        assert cached.refreshes == 2 and cached.hits == 0

    def test_age_is_inf_before_first_build(self, clock, source):
        cached = CachedSnapshotSource(source, max_age_s=5.0, clock=clock)
        assert cached.age_s() == float("inf")
