"""Tests for snapshot assembly (the allocator's world view)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.snapshot import ClusterSnapshot, build_snapshot, oracle_snapshot
from repro.monitor.system import MonitoringSystem
from repro.net.flows import Flow
from repro.net.model import NetworkModel


@pytest.fixture
def env():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    engine = Engine()
    return engine, cluster, network


class TestOracleSnapshot:
    def test_covers_all_up_nodes_and_pairs(self, env):
        _, cluster, network = env
        snap = oracle_snapshot(cluster, network)
        assert set(snap.nodes) == set(cluster.names)
        n = len(cluster.names)
        assert len(snap.bandwidth_mbs) == n * (n - 1) // 2
        assert len(snap.latency_us) == n * (n - 1) // 2

    def test_down_nodes_excluded(self, env):
        _, cluster, network = env
        cluster.mark_down("node2")
        snap = oracle_snapshot(cluster, network)
        assert "node2" not in snap.nodes
        assert all("node2" not in pair for pair in snap.bandwidth_mbs)

    def test_accessors_symmetric(self, env):
        _, cluster, network = env
        snap = oracle_snapshot(cluster, network)
        assert snap.bandwidth("node1", "node2") == snap.bandwidth("node2", "node1")
        assert snap.latency("node1", "node4") == snap.latency("node4", "node1")

    def test_bandwidth_complement_non_negative(self, env):
        _, cluster, network = env
        network.add_flow(Flow("node1", "node4", 100.0))
        snap = oracle_snapshot(cluster, network)
        for i, a in enumerate(snap.names):
            for b in snap.names[i + 1 :]:
                assert snap.bandwidth_complement(a, b) >= 0.0

    def test_reflects_ground_truth_state(self, env):
        _, cluster, network = env
        cluster.state("node1").cpu_load = 7.5
        snap = oracle_snapshot(cluster, network)
        assert snap.nodes["node1"].cpu_load["now"] == 7.5

    def test_canonical_pair_validation(self):
        with pytest.raises(ValueError, match="canonically"):
            ClusterSnapshot(
                time=0.0,
                nodes={},
                bandwidth_mbs={("b", "a"): 1.0},
                latency_us={},
                peak_bandwidth_mbs={},
            )


class TestBuildSnapshot:
    def test_empty_store_yields_empty_views(self, env):
        engine, cluster, network = env
        from repro.monitor.store import InMemoryStore

        snap = build_snapshot(InMemoryStore(), cluster, network, now=0.0)
        assert snap.nodes == {}
        # without a livehosts record every node is assumed reachable
        assert set(snap.livehosts) == set(cluster.names)

    def test_full_monitoring_pipeline(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network, seed=0)
        mon.start()
        engine.run(600.0)
        snap = mon.snapshot()
        assert set(snap.nodes) == set(cluster.names)
        n = len(cluster.names)
        assert len(snap.bandwidth_mbs) == n * (n - 1) // 2
        assert len(snap.latency_us) == n * (n - 1) // 2
        assert snap.time == 600.0

    def test_latency_prefers_one_minute_mean(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network, seed=0)
        mon.start()
        engine.run(600.0)
        snap = mon.snapshot()
        rec = mon.store.value("latency/node1")["node2"]
        assert snap.latency("node1", "node2") == pytest.approx(rec["m1"])

    def test_crashed_nodestate_daemon_hides_node(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network, seed=0)
        # only start some daemons: node5's never runs
        for name, d in mon.nodestate.items():
            if name != "node5":
                d.start()
        mon.latencyd.start()
        mon.bandwidthd.start()
        for lh in mon.livehosts:
            lh.start()
        engine.run(600.0)
        snap = mon.snapshot()
        assert "node5" not in snap.nodes

    def test_view_backfills_missing_means(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network, seed=0)
        mon.start()
        engine.run(20.0)  # under a minute: m1/m5/m15 partially empty
        snap = mon.snapshot()
        v = snap.nodes["node1"]
        for key in ("now", "m1", "m5", "m15"):
            assert v.cpu_load[key] is not None
