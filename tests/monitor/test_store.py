"""Tests for the shared store (in-memory and NFS-like file store)."""

import pytest

from repro.monitor.store import FileStore, InMemoryStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryStore()
    return FileStore(tmp_path / "nfs")


class TestSharedStoreContract:
    def test_get_missing(self, store):
        assert store.get("nope") is None
        assert store.value("nope", default=42) == 42
        assert store.age("nope", now=10.0) is None

    def test_put_get_roundtrip(self, store):
        store.put("a/b", {"x": 1}, time=3.5)
        t, v = store.get("a/b")
        assert t == 3.5 and v == {"x": 1}

    def test_overwrite_updates_time(self, store):
        store.put("k", 1, time=1.0)
        store.put("k", 2, time=2.0)
        assert store.get("k") == (2.0, 2)

    def test_age(self, store):
        store.put("k", 1, time=5.0)
        assert store.age("k", now=8.0) == pytest.approx(3.0)

    def test_keys_prefix(self, store):
        store.put("nodestate/n1", 1, 0.0)
        store.put("nodestate/n2", 1, 0.0)
        store.put("latency/n1", 1, 0.0)
        assert store.keys("nodestate/") == ["nodestate/n1", "nodestate/n2"]
        assert len(store.keys()) == 3

    def test_delete(self, store):
        store.put("k", 1, 0.0)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_complex_values(self, store):
        rec = {"static": {"cores": 12}, "list": [1.5, None, "x"]}
        store.put("rec", rec, 0.0)
        assert store.value("rec") == rec


class TestFileStore:
    def test_persistence_across_instances(self, tmp_path):
        root = tmp_path / "nfs"
        FileStore(root).put("livehosts", ["a", "b"], 1.0)
        assert FileStore(root).value("livehosts") == ["a", "b"]

    def test_unsafe_key_characters_roundtrip(self, tmp_path):
        fs = FileStore(tmp_path / "nfs")
        fs.put("weird key/with:chars", 1, 0.0)
        assert fs.value("weird key/with:chars") == 1
        assert fs.keys() == ["weird key/with:chars"]

    def test_path_traversal_rejected(self, tmp_path):
        fs = FileStore(tmp_path / "nfs")
        with pytest.raises(ValueError):
            fs.put("../escape", 1, 0.0)
        with pytest.raises(ValueError):
            fs.put("a//b", 1, 0.0)

    def test_nested_keys_make_subdirs(self, tmp_path):
        fs = FileStore(tmp_path / "nfs")
        fs.put("a/b/c", 7, 0.0)
        assert (tmp_path / "nfs" / "a" / "b" / "c.json").exists()


class TestInMemoryStore:
    def test_len(self):
        s = InMemoryStore()
        s.put("a", 1, 0.0)
        s.put("b", 2, 0.0)
        assert len(s) == 2
