"""Integration tests for the assembled MonitoringSystem."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.failures import FailureInjector
from repro.monitor.store import FileStore
from repro.monitor.system import MonitorConfig, MonitoringSystem
from repro.net.model import NetworkModel


@pytest.fixture
def env():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    engine = Engine()
    return engine, cluster, network


class TestMonitorConfig:
    def test_invalid_periods(self):
        with pytest.raises(ValueError):
            MonitorConfig(nodestate_period_s=0.0)
        with pytest.raises(ValueError):
            MonitorConfig(livehosts_periods_s=())


class TestMonitoringSystem:
    def test_one_nodestate_daemon_per_node(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        assert set(mon.nodestate) == set(cluster.names)

    def test_all_daemons_alive_after_start(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        mon.start()
        assert all(d.alive for d in mon.all_daemons())
        assert mon.central.master.alive and mon.central.slave.alive

    def test_prime_populates_store_immediately(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        mon.start()
        mon.prime()
        snap = mon.snapshot()
        assert set(snap.nodes) == set(cluster.names)

    def test_file_store_backend(self, env, tmp_path):
        engine, cluster, network = env
        mon = MonitoringSystem(
            engine, cluster, network, store=FileStore(tmp_path / "nfs")
        )
        mon.start()
        engine.run(400.0)
        snap = mon.snapshot()
        assert set(snap.nodes) == set(cluster.names)
        assert (tmp_path / "nfs").exists()

    def test_node_outage_flows_into_livehosts(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        mon.start()
        inj = FailureInjector(engine, cluster)
        inj.node_down("node4", at=100.0)
        engine.run(400.0)
        snap = mon.snapshot()
        assert "node4" not in snap.livehosts

    def test_recovery_after_transient_outage(self, env):
        engine, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        mon.start()
        inj = FailureInjector(engine, cluster)
        inj.node_down("node4", at=100.0, duration=120.0)
        engine.run(1200.0)
        snap = mon.snapshot()
        assert "node4" in snap.livehosts
        # state data is fresh again (daemon resumed with its host)
        assert mon.store.age("nodestate/node4", engine.now) < 60.0

    def test_monitoring_is_deterministic(self):
        def run(seed):
            specs, topo = uniform_cluster(4, nodes_per_switch=2)
            cluster = Cluster(specs, topo)
            engine = Engine()
            network = NetworkModel(topo)
            mon = MonitoringSystem(engine, cluster, network, seed=seed)
            mon.start()
            engine.run(300.0)
            return sorted(mon.store.keys())

        assert run(5) == run(5)
