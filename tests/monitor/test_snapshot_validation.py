"""Snapshot validation and last-known-good fallback under bad monitor data.

A daemon writing garbage (NaN, negative loads, absurd specs) must cost
the cluster exactly one node's visibility; a fully broken monitor
pipeline must degrade to the last-known-good snapshot, then to a typed
``SnapshotUnavailableError`` — never to arithmetic on poison.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.monitor.snapshot import (
    CachedSnapshotSource,
    SnapshotUnavailableError,
    _validated_view,
    build_snapshot,
)
from repro.monitor.store import InMemoryStore
from repro.net.model import NetworkModel


def _stats(v: float = 0.5) -> dict:
    return {"now": v, "m1": v, "m5": v, "m15": v}


def _record(**overrides) -> dict:
    rec = {
        "static": {"cores": 8, "frequency_ghz": 2.5, "memory_gb": 32.0},
        "users": 1,
        "cpu_load": _stats(),
        "cpu_util": _stats(),
        "flow_rate_mbs": _stats(),
        "available_memory_gb": _stats(),
    }
    rec.update(overrides)
    return rec


class TestValidatedView:
    def test_valid_record_accepted(self):
        view = _validated_view("n0", _record())
        assert view.cores == 8
        assert view.cpu_load["m1"] == 0.5

    @pytest.mark.parametrize(
        "poison",
        [math.nan, -0.5, 1e12, math.inf, -math.inf],
        ids=["nan", "negative", "huge", "inf", "-inf"],
    )
    def test_poisoned_dynamic_attribute_rejected(self, poison):
        with pytest.raises(ValueError, match="cpu_load"):
            _validated_view("n0", _record(cpu_load=_stats(poison)))

    def test_nonpositive_cores_rejected(self):
        rec = _record()
        rec["static"]["cores"] = 0
        with pytest.raises(ValueError, match="cores"):
            _validated_view("n0", rec)

    def test_absurd_static_spec_rejected(self):
        rec = _record()
        rec["static"]["frequency_ghz"] = -3.0
        with pytest.raises(ValueError, match="frequency_ghz"):
            _validated_view("n0", rec)

    def test_negative_users_rejected(self):
        with pytest.raises(ValueError, match="users"):
            _validated_view("n0", _record(users=-1))

    def test_wrong_shape_raises_catchable_types(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            _validated_view("n0", {"static": "not a dict"})


@pytest.fixture
def world():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    store = InMemoryStore()
    for name in cluster.names:
        store.put(f"nodestate/{name}", _record(), 1.0)
    store.put("livehosts", list(cluster.names), 1.0)
    return store, cluster, network


class TestBuildSnapshotDegradation:
    def test_poisoned_node_skipped_and_logged(self, world, caplog):
        store, cluster, network = world
        victim = cluster.names[1]
        store.put(
            f"nodestate/{victim}", _record(cpu_load=_stats(math.nan)), 1.5
        )
        with caplog.at_level("WARNING", logger="repro.monitor.snapshot"):
            snap = build_snapshot(store, cluster, network, now=2.0)
        assert victim not in snap.nodes
        assert len(snap.nodes) == 3
        assert any(victim in r.message for r in caplog.records)

    def test_malformed_livehosts_falls_back_to_all(self, world):
        store, cluster, network = world
        store.put("livehosts", {"oops": True}, 1.5)
        snap = build_snapshot(store, cluster, network, now=2.0)
        assert set(snap.livehosts) == set(cluster.names)

    def test_out_of_range_pair_values_skipped(self, world):
        store, cluster, network = world
        a, b = sorted(cluster.names)[:2]
        store.put(f"bandwidth/{a}", {b: math.nan}, 1.5)
        store.put(f"latency/{a}", {b: {"now": -5.0, "m1": -5.0}}, 1.5)
        snap = build_snapshot(store, cluster, network, now=2.0)
        assert (a, b) not in snap.bandwidth_mbs
        assert (a, b) not in snap.latency_us


class TestLastKnownGoodFallback:
    def _source(self, snapshots):
        """A source that serves scripted results (exceptions raise)."""
        script = list(snapshots)

        def source():
            item = script.pop(0) if len(script) > 1 else script[0]
            if isinstance(item, Exception):
                raise item
            return item

        return source

    def test_failed_rebuild_serves_lkg_within_bound(self, world):
        store, cluster, network = world
        good = build_snapshot(store, cluster, network, now=0.0)
        t = {"now": 0.0}
        src = CachedSnapshotSource(
            self._source([good, RuntimeError("monitor down")]),
            max_age_s=5.0,
            clock=lambda: t["now"],
            lkg_max_age_s=60.0,
        )
        assert src() is good
        t["now"] = 10.0  # stale → rebuild fails → LKG still fresh enough
        assert src() is good
        assert src.fallbacks == 1

    def test_typed_error_past_lkg_bound(self, world):
        store, cluster, network = world
        good = build_snapshot(store, cluster, network, now=0.0)
        t = {"now": 0.0}
        src = CachedSnapshotSource(
            self._source([good, RuntimeError("monitor down")]),
            max_age_s=5.0,
            clock=lambda: t["now"],
            lkg_max_age_s=60.0,
        )
        assert src() is good
        t["now"] = 120.0  # beyond the LKG age bound
        with pytest.raises(SnapshotUnavailableError, match="monitor down"):
            src()

    def test_empty_snapshot_triggers_fallback_too(self, world):
        store, cluster, network = world
        good = build_snapshot(store, cluster, network, now=0.0)
        empty = build_snapshot(
            InMemoryStore(), cluster, network, now=0.0
        )
        t = {"now": 0.0}
        src = CachedSnapshotSource(
            self._source([good, empty]),
            max_age_s=5.0,
            clock=lambda: t["now"],
            lkg_max_age_s=60.0,
        )
        assert src() is good
        t["now"] = 10.0
        assert src() is good  # empty rebuild papered over with LKG
        assert src.fallbacks == 1

    def test_no_lkg_at_all_is_typed(self):
        src = CachedSnapshotSource(
            self._source([RuntimeError("never worked"), RuntimeError("x")]),
            max_age_s=5.0,
            clock=lambda: 0.0,
            lkg_max_age_s=60.0,
        )
        with pytest.raises(SnapshotUnavailableError):
            src()

    def test_bound_must_cover_freshness_window(self):
        with pytest.raises(ValueError, match="lkg_max_age_s"):
            CachedSnapshotSource(
                lambda: None, max_age_s=10.0, lkg_max_age_s=5.0
            )
