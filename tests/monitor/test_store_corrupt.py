"""Corrupt store records: typed errors at the seam, skip-and-log above it."""

from __future__ import annotations

import pytest

from repro.cluster.topology import uniform_cluster
from repro.cluster.cluster import Cluster
from repro.monitor.snapshot import build_snapshot
from repro.monitor.store import (
    FileStore,
    InMemoryStore,
    StoreCorruptError,
    _decode_record,
)
from repro.net.model import NetworkModel


@pytest.fixture
def fstore(tmp_path) -> FileStore:
    return FileStore(tmp_path)


class TestFileStoreCorruption:
    def test_torn_json_raises_typed_error(self, fstore, tmp_path):
        fstore.put("nodestate/n0", {"x": 1}, 5.0)
        path = next(tmp_path.rglob("*.json"))
        path.write_text('{"time": 5.0, "value": {"x"')  # torn mid-write
        with pytest.raises(StoreCorruptError) as err:
            fstore.get("nodestate/n0")
        assert err.value.key == "nodestate/n0"
        assert "not valid JSON" in err.value.reason

    def test_binary_garbage_raises_typed_error(self, fstore, tmp_path):
        fstore.put("k", 1, 0.0)
        path = next(tmp_path.rglob("*.json"))
        path.write_bytes(b"\xff\xfe\x00garbage")
        with pytest.raises(StoreCorruptError):
            fstore.get("k")

    def test_value_convenience_propagates_corruption(self, fstore, tmp_path):
        fstore.put("k", 1, 0.0)
        next(tmp_path.rglob("*.json")).write_text("[[[")
        with pytest.raises(StoreCorruptError):
            fstore.value("k")
        with pytest.raises(StoreCorruptError):
            fstore.age("k", now=1.0)

    def test_intact_records_unaffected(self, fstore):
        fstore.put("a", {"x": 1}, 2.0)
        assert fstore.get("a") == (2.0, {"x": 1})


class TestDecodeRecord:
    def test_non_object_record(self):
        with pytest.raises(StoreCorruptError, match="JSON object"):
            _decode_record("k", [1, 2, 3])

    def test_missing_fields(self):
        with pytest.raises(StoreCorruptError, match="time.*value"):
            _decode_record("k", {"time": 1.0})

    def test_non_numeric_time(self):
        with pytest.raises(StoreCorruptError, match="not a number"):
            _decode_record("k", {"time": "noon", "value": 1})

    def test_valid_record_round_trips(self):
        assert _decode_record("k", {"time": 3, "value": "v"}) == (3.0, "v")


def _valid_nodestate(cores: int = 8) -> dict:
    stats = {"now": 0.5, "m1": 0.5, "m5": 0.5, "m15": 0.5}
    return {
        "static": {"cores": cores, "frequency_ghz": 2.5, "memory_gb": 32.0},
        "users": 1,
        "cpu_load": dict(stats),
        "cpu_util": dict(stats),
        "flow_rate_mbs": dict(stats),
        "available_memory_gb": dict(stats),
    }


class TestSnapshotSkipsCorruptRecords:
    """A corrupt key costs one node's visibility, never the snapshot."""

    @pytest.fixture
    def world(self):
        specs, topo = uniform_cluster(4, nodes_per_switch=2)
        cluster = Cluster(specs, topo)
        network = NetworkModel(topo)
        store = InMemoryStore()
        names = list(cluster.names)
        for i, name in enumerate(names):
            store.put(f"nodestate/{name}", _valid_nodestate(), 1.0)
            peers = names[i + 1 :]
            store.put(
                f"bandwidth/{name}", {p: 100.0 for p in peers}, 1.0
            )
            store.put(
                f"latency/{name}",
                {p: {"now": 80.0, "m1": 80.0} for p in peers},
                1.0,
            )
        store.put("livehosts", names, 1.0)
        return store, cluster, network

    def _corrupt(self, store, key):
        # InMemoryStore never raises on its own; emulate FileStore's torn
        # read by overriding get for one key.
        original = store.get

        def get(k):
            if k == key:
                raise StoreCorruptError(k, "torn write")
            return original(k)

        store.get = get

    def test_corrupt_nodestate_drops_one_node(self, world, caplog):
        store, cluster, network = world
        victim = cluster.names[0]
        self._corrupt(store, f"nodestate/{victim}")
        with caplog.at_level("WARNING", logger="repro.monitor.snapshot"):
            snap = build_snapshot(store, cluster, network, now=2.0)
        assert victim not in snap.nodes
        assert set(snap.nodes) == set(cluster.names) - {victim}
        assert any("corrupt" in r.message for r in caplog.records)

    def test_corrupt_livehosts_falls_back_to_all_nodes(self, world):
        store, cluster, network = world
        self._corrupt(store, "livehosts")
        snap = build_snapshot(store, cluster, network, now=2.0)
        assert set(snap.livehosts) == set(cluster.names)
        assert len(snap.nodes) == 4

    def test_corrupt_pair_records_drop_pairs_not_nodes(self, world):
        store, cluster, network = world
        victim = cluster.names[0]
        self._corrupt(store, f"bandwidth/{victim}")
        snap = build_snapshot(store, cluster, network, now=2.0)
        assert set(snap.nodes) == set(cluster.names)
        # The victim's outgoing bandwidth pairs vanish; everyone else's
        # (and all latency pairs) survive.
        assert snap.bandwidth_mbs
        assert all(victim not in pair for pair in snap.bandwidth_mbs)
        assert any(victim in pair for pair in snap.latency_us)
