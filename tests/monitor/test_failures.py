"""Tests for failure injection."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.daemons import NodeStateD
from repro.monitor.failures import FailureInjector
from repro.monitor.store import InMemoryStore


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    return Engine(), cluster


class TestNodeOutage:
    def test_permanent_outage(self, env):
        engine, cluster = env
        inj = FailureInjector(engine, cluster)
        inj.node_down("node1", at=100.0)
        engine.run(200.0)
        assert not cluster.state("node1").up
        assert inj.log.node_outages[0][1] == "node1"

    def test_transient_outage_recovers(self, env):
        engine, cluster = env
        inj = FailureInjector(engine, cluster)
        inj.node_down("node1", at=100.0, duration=50.0)
        engine.run(120.0)
        assert not cluster.state("node1").up
        engine.run(100.0)
        assert cluster.state("node1").up

    def test_unknown_node(self, env):
        engine, cluster = env
        inj = FailureInjector(engine, cluster)
        with pytest.raises(KeyError):
            inj.node_down("ghost", at=0.0)

    def test_invalid_duration(self, env):
        engine, cluster = env
        inj = FailureInjector(engine, cluster)
        with pytest.raises(ValueError):
            inj.node_down("node1", at=0.0, duration=0.0)


class TestCrash:
    def test_daemon_crashed_at_time(self, env):
        engine, cluster = env
        store = InMemoryStore()
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        inj = FailureInjector(engine, cluster)
        inj.crash(d, at=50.0)
        engine.run(40.0)
        assert d.alive
        engine.run(20.0)
        assert not d.alive
        assert inj.log.crashes[0][1] == "nodestate/node1"
