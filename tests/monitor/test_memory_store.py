"""MemoryStore: FileStore's isolation and corruption semantics, in RAM.

The serialized in-memory backend must honour the same contracts its
sibling backends are tested for — last-writer-wins (see
``test_store_concurrent_writers``, which parametrizes over it), typed
:class:`StoreCorruptError` on undecodable records, and write isolation
(a caller mutating a value it already ``put`` cannot change what
readers see) — plus the :class:`AsyncSharedStore` surface the
federation's coroutine daemons rely on.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.monitor.store import (
    AsyncSharedStore,
    InMemoryStore,
    MemoryStore,
    SharedStore,
    StoreCorruptError,
)


@pytest.fixture
def store() -> MemoryStore:
    return MemoryStore()


class TestBasics:
    def test_round_trip(self, store):
        store.put("k", {"x": 1}, 2.0)
        assert store.get("k") == (2.0, {"x": 1})
        assert store.value("k") == {"x": 1}
        assert store.age("k", now=5.0) == 3.0

    def test_missing_key(self, store):
        assert store.get("absent") is None
        assert store.value("absent", default="d") == "d"
        assert store.age("absent", now=1.0) is None

    def test_keys_prefix_and_delete(self, store):
        store.put("a/1", 1, 0.0)
        store.put("a/2", 2, 0.0)
        store.put("b/1", 3, 0.0)
        assert store.keys("a/") == ["a/1", "a/2"]
        assert store.keys() == ["a/1", "a/2", "b/1"]
        assert store.delete("a/1") is True
        assert store.delete("a/1") is False
        assert len(store) == 2

    def test_implements_both_interfaces(self, store):
        assert isinstance(store, SharedStore)
        assert isinstance(store, AsyncSharedStore)


class TestWriteIsolation:
    """The property InMemoryStore deliberately lacks."""

    def test_put_snapshots_the_value(self, store):
        value = {"load": 1.0}
        store.put("k", value, 0.0)
        value["load"] = 99.0
        assert store.value("k") == {"load": 1.0}

    def test_in_memory_store_shares_by_reference(self):
        # Contrast fixture: documents *why* MemoryStore exists.
        raw = InMemoryStore()
        value = {"load": 1.0}
        raw.put("k", value, 0.0)
        value["load"] = 99.0
        assert raw.value("k") == {"load": 99.0}

    def test_read_mutations_do_not_write_back(self, store):
        store.put("k", {"load": 1.0}, 0.0)
        read = store.value("k")
        read["load"] = 99.0
        assert store.value("k") == {"load": 1.0}


class TestCorruption:
    """Same (key, reason) contract as FileStore's torn files."""

    def test_torn_json_raises_typed_error(self, store):
        store.put("nodestate/n0", {"x": 1}, 5.0)
        store._data["nodestate/n0"] = '{"time": 5.0, "value": {"x'
        with pytest.raises(StoreCorruptError) as err:
            store.get("nodestate/n0")
        assert err.value.key == "nodestate/n0"
        assert "not valid JSON" in err.value.reason

    def test_non_object_record_raises(self, store):
        store._data["k"] = "[1, 2, 3]"
        with pytest.raises(StoreCorruptError, match="JSON object"):
            store.get("k")

    def test_missing_fields_raise(self, store):
        store._data["k"] = '{"time": 1.0}'
        with pytest.raises(StoreCorruptError, match="time.*value"):
            store.get("k")

    def test_value_and_age_propagate_corruption(self, store):
        store._data["k"] = "[[["
        with pytest.raises(StoreCorruptError):
            store.value("k")
        with pytest.raises(StoreCorruptError):
            store.age("k", now=1.0)

    def test_intact_records_unaffected(self, store):
        store.put("good", {"x": 1}, 2.0)
        store._data["bad"] = "garbage"
        assert store.get("good") == (2.0, {"x": 1})
        assert store.keys() == ["bad", "good"]


class TestAsyncSurface:
    def test_async_round_trip(self, store):
        async def run():
            await store.aput("k", {"x": 1}, 2.0)
            assert await store.aget("k") == (2.0, {"x": 1})
            assert await store.avalue("k") == {"x": 1}
            assert await store.aage("k", now=5.0) == 3.0
            assert await store.akeys() == ["k"]
            assert await store.adelete("k") is True
            assert await store.aget("k") is None

        asyncio.run(run())

    def test_sync_and_async_share_data(self, store):
        async def run():
            await store.aput("k", "async-wrote", 1.0)

        asyncio.run(run())
        assert store.value("k") == "async-wrote"

    def test_concurrent_async_writers_never_tear(self, store):
        """N coroutines hammering one key: the record stays decodable."""

        async def writer(i: int) -> None:
            for j in range(20):
                await store.aput("shared", {"writer": i, "seq": j}, float(j))

        async def run():
            await asyncio.gather(*(writer(i) for i in range(8)))

        asyncio.run(run())
        t, value = store.get("shared")  # decodes ⇒ no torn hybrid
        assert t == 19.0
        assert value["seq"] == 19

    def test_async_corruption_propagates(self, store):
        store._data["k"] = "{torn"

        async def run():
            with pytest.raises(StoreCorruptError):
                await store.aget("k")

        asyncio.run(run())
