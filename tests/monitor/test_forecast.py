"""Tests for the NWS-style adaptive forecaster."""

import numpy as np
import pytest

from repro.monitor.forecast import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
)


class TestLastValue:
    def test_cold_start(self):
        assert LastValue().forecast() is None

    def test_tracks_latest(self):
        p = LastValue()
        p.update(1.0)
        p.update(5.0)
        assert p.forecast() == 5.0


class TestRunningMean:
    def test_window(self):
        p = RunningMean(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.update(v)
        assert p.forecast() == pytest.approx(3.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RunningMean(window=0)

    def test_cold_start(self):
        assert RunningMean().forecast() is None


class TestExponentialSmoothing:
    def test_first_value_initialises_state(self):
        p = ExponentialSmoothing(alpha=0.5)
        p.update(10.0)
        assert p.forecast() == 10.0

    def test_smoothing_formula(self):
        p = ExponentialSmoothing(alpha=0.5)
        p.update(10.0)
        p.update(20.0)
        assert p.forecast() == pytest.approx(15.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(alpha=1.5)


class TestAdaptiveForecaster:
    def test_empty_predictor_list_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(predictors=[])

    def test_cold_start_returns_none(self):
        assert AdaptiveForecaster().forecast() is None

    def test_mae_tracking(self):
        f = AdaptiveForecaster(predictors=[LastValue()])
        f.update(1.0)
        f.update(3.0)  # LastValue predicted 1.0 -> abs err 2.0
        assert f.mae("last_value") == pytest.approx(2.0)
        with pytest.raises(KeyError):
            f.mae("bogus")

    def test_constant_series_all_predictors_perfect(self):
        f = AdaptiveForecaster()
        for _ in range(20):
            f.update(7.0)
        assert f.forecast() == pytest.approx(7.0)
        for p in f.predictors:
            assert f.mae(p.name) == pytest.approx(0.0)

    def test_picks_best_for_random_walk(self):
        """On a random walk, last-value has the smallest MAE."""
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.normal(size=500))
        f = AdaptiveForecaster()
        for v in x:
            f.update(float(v))
        assert f.best_predictor().name == "last_value"

    def test_picks_mean_for_noisy_constant(self):
        """On iid noise around a constant, averaging beats last-value."""
        rng = np.random.default_rng(1)
        f = AdaptiveForecaster(
            predictors=[LastValue(), RunningMean(window=50)]
        )
        for _ in range(500):
            f.update(float(10.0 + rng.normal()))
        assert f.best_predictor().name == "running_mean"

    def test_forecast_tracks_signal(self):
        f = AdaptiveForecaster()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            f.update(v)
        fc = f.forecast()
        assert fc is not None and 1.0 <= fc <= 5.0

    def test_observation_count(self):
        f = AdaptiveForecaster()
        for v in range(5):
            f.update(float(v))
        assert f.observations == 5
