"""Conformance checks against the paper's §4 monitoring parameters."""

from repro.monitor.rolling import DEFAULT_WINDOWS
from repro.monitor.system import MonitorConfig


class TestSection4Parameters:
    def test_nodestate_period_in_3_to_10_seconds(self):
        """§4: daemons extract data 'every 3-10 seconds'."""
        cfg = MonitorConfig()
        lo = cfg.nodestate_period_s
        hi = cfg.nodestate_period_s + cfg.nodestate_jitter_s
        assert lo >= 3.0
        assert hi <= 10.0

    def test_latency_interval_one_minute(self):
        """§4: 'regular intervals of 1 minute for latency'."""
        assert MonitorConfig().latency_period_s == 60.0

    def test_bandwidth_interval_five_minutes(self):
        """§4: '5 minutes for bandwidth'."""
        assert MonitorConfig().bandwidth_period_s == 300.0

    def test_rolling_windows_1_5_15_minutes(self):
        """§3.2.1/§4: running means over the last 1, 5 and 15 minutes."""
        assert DEFAULT_WINDOWS == (60.0, 300.0, 900.0)

    def test_multiple_livehosts_frequencies(self):
        """§4: LivehostsD runs 'on a few selected nodes at different
        frequencies'."""
        periods = MonitorConfig().livehosts_periods_s
        assert len(periods) >= 2
        assert len(set(periods)) == len(periods)


class TestSection5Parameters:
    def test_paper_compute_weights(self):
        """§5: 0.3/0.2/0.2/0.1/0.1/0.05/0.05 across the seven attributes."""
        from repro.core.weights import PAPER_COMPUTE_WEIGHTS

        assert sorted(PAPER_COMPUTE_WEIGHTS.values(), reverse=True) == [
            0.30, 0.20, 0.20, 0.10, 0.10, 0.05, 0.05,
        ]

    def test_paper_network_weights(self):
        """§5: w_lt = 0.25 and w_bw = 0.75."""
        from repro.core.weights import NetworkWeights

        nw = NetworkWeights()
        assert (nw.w_lt, nw.w_bw) == (0.25, 0.75)

    def test_paper_grid_definitions(self):
        """§5.1/§5.2 evaluation grids."""
        from repro.experiments.figures import (
            MINIFE_PROCS,
            MINIFE_SIZES,
            MINIMD_PROCS,
            MINIMD_SIZES,
        )

        assert MINIMD_PROCS == (8, 16, 32, 64)
        assert MINIMD_SIZES == (8, 16, 24, 32, 40, 48)
        assert MINIFE_PROCS == (8, 16, 32, 48)
        assert MINIFE_SIZES == (48, 96, 144, 256, 384)

    def test_paper_cluster_inventory(self):
        """§5: 40 x 12-core @4.6 GHz + 20 x 8-core @2.8 GHz, 4 switches."""
        from repro.cluster.topology import paper_cluster

        specs, topo = paper_cluster()
        twelve = [s for s in specs if (s.cores, s.frequency_ghz) == (12, 4.6)]
        eight = [s for s in specs if (s.cores, s.frequency_ghz) == (8, 2.8)]
        assert len(twelve) == 40 and len(eight) == 20
        leaves = [s for s in topo.switches if s != topo.root]
        assert len(leaves) == 4
        for leaf in leaves:
            assert 10 <= len(topo.nodes_on_switch(leaf)) <= 15
