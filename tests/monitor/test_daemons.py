"""Tests for NodeStateD and LivehostsD."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.daemons import LivehostsD, NodeStateD
from repro.monitor.store import InMemoryStore


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    return Engine(), InMemoryStore(), cluster


class TestDaemonLifecycle:
    def test_not_alive_before_start(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1")
        assert not d.alive

    def test_start_and_crash(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        assert d.alive
        engine.run(20.0)
        ticks = d.ticks
        d.crash()
        assert not d.alive
        engine.run(60.0)
        assert d.ticks == ticks

    def test_restart_resumes(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(10.0)
        d.crash()
        d.start()
        engine.run(10.0)
        assert d.ticks >= 3

    def test_start_idempotent(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        d.start()
        engine.run(5.0)
        assert d.ticks == 1

    def test_heartbeat_written(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(5.0)
        assert store.value("heartbeat/nodestate/node1") == 1

    def test_down_host_skips_work_and_heartbeat(self, env):
        engine, store, cluster = env
        cluster.mark_down("node1")
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(30.0)
        assert store.get("heartbeat/nodestate/node1") is None
        assert d.ticks == 0

    def test_start_announces_heartbeat_immediately(self, env):
        engine, store, cluster = env
        engine.run(100.0)
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        # No tick has run yet, but the heartbeat is already fresh, so a
        # supervisor won't restart-loop the daemon before its first tick.
        assert store.age("heartbeat/nodestate/node1", engine.now) == 0.0

    def test_invalid_period(self, env):
        engine, store, cluster = env
        with pytest.raises(ValueError):
            NodeStateD(engine, store, cluster, "node1", period_s=0.0)


class TestNodeStateD:
    def test_record_structure(self, env):
        engine, store, cluster = env
        cluster.state("node1").cpu_load = 3.0
        cluster.state("node1").users = 2
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(5.0)
        rec = store.value("nodestate/node1")
        assert rec["static"]["cores"] == 12
        assert rec["users"] == 2
        assert rec["cpu_load"]["now"] == 3.0
        assert set(rec["cpu_load"]) == {"now", "m1", "m5", "m15"}

    def test_available_memory_derived(self, env):
        engine, store, cluster = env
        cluster.state("node1").memory_used_gb = 6.0
        d = NodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(5.0)
        rec = store.value("nodestate/node1")
        assert rec["available_memory_gb"]["now"] == pytest.approx(10.0)

    def test_rolling_means_track_history(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node1", period_s=10.0)
        d.start()
        cluster.state("node1").cpu_load = 0.0
        engine.run(300.0)
        cluster.state("node1").cpu_load = 12.0
        engine.run(60.0)
        rec = store.value("nodestate/node1")
        # 1-minute mean reacts fast; 15-minute mean lags behind
        assert rec["cpu_load"]["m1"] > rec["cpu_load"]["m15"]


class TestLivehostsD:
    def test_reports_up_nodes(self, env):
        engine, store, cluster = env
        d = LivehostsD(engine, store, cluster, period_s=10.0)
        d.start()
        engine.run(10.0)
        assert store.value("livehosts") == cluster.names

    def test_down_node_excluded(self, env):
        engine, store, cluster = env
        d = LivehostsD(engine, store, cluster, period_s=10.0)
        d.start()
        cluster.mark_down("node2")
        engine.run(10.0)
        assert "node2" not in store.value("livehosts")

    def test_multiple_instances_same_key(self, env):
        engine, store, cluster = env
        d1 = LivehostsD(engine, store, cluster, instance="0", period_s=10.0)
        d2 = LivehostsD(engine, store, cluster, instance="1", period_s=25.0)
        d1.start()
        d2.start()
        engine.run(50.0)
        # freshest write wins; both heartbeat separately
        assert store.get("livehosts")[0] == 50.0
        assert store.value("heartbeat/livehosts/0") == 5
        assert store.value("heartbeat/livehosts/1") == 2

    def test_hosted_instance_dies_with_host(self, env):
        engine, store, cluster = env
        d = LivehostsD(engine, store, cluster, host="node1", period_s=10.0)
        d.start()
        cluster.mark_down("node1")
        engine.run(50.0)
        assert store.get("livehosts") is None
