"""Tests for the forecasting NodeStateD extension."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.forecasting_daemon import ForecastingNodeStateD
from repro.monitor.store import InMemoryStore
from repro.monitor.system import MonitorConfig, MonitoringSystem
from repro.net.model import NetworkModel


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    cluster = Cluster(specs, topo)
    return Engine(), InMemoryStore(), cluster, NetworkModel(topo)


class TestForecastingNodeStateD:
    def test_record_contains_forecast(self, env):
        engine, store, cluster, _ = env
        d = ForecastingNodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(30.0)
        rec = store.value("nodestate/node1")
        for attr in ForecastingNodeStateD.DYNAMIC:
            assert "forecast" in rec[attr]

    def test_constant_signal_forecast_converges(self, env):
        engine, store, cluster, _ = env
        cluster.state("node1").cpu_load = 4.0
        d = ForecastingNodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(300.0)
        rec = store.value("nodestate/node1")
        assert rec["cpu_load"]["forecast"] == pytest.approx(4.0, abs=0.01)

    def test_predictor_in_charge(self, env):
        engine, store, cluster, _ = env
        d = ForecastingNodeStateD(engine, store, cluster, "node1", period_s=5.0)
        d.start()
        engine.run(60.0)
        assert d.predictor_in_charge("cpu_load") in (
            "last_value", "running_mean", "exp_smoothing",
        )


class TestSystemIntegration:
    def test_forecasting_flag_wires_daemon_class(self, env):
        engine, _store, cluster, network = env
        mon = MonitoringSystem(
            engine,
            cluster,
            network,
            config=MonitorConfig(forecasting=True),
        )
        assert all(
            isinstance(d, ForecastingNodeStateD)
            for d in mon.nodestate.values()
        )

    def test_forecast_reaches_snapshot(self, env):
        engine, _store, cluster, network = env
        mon = MonitoringSystem(
            engine, cluster, network, config=MonitorConfig(forecasting=True)
        )
        mon.start()
        engine.run(120.0)
        snap = mon.snapshot()
        view = snap.nodes["node1"]
        assert "forecast" in view.cpu_load

    def test_policy_can_plan_on_forecast(self, env):
        from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy

        engine, _store, cluster, network = env
        mon = MonitoringSystem(
            engine, cluster, network, config=MonitorConfig(forecasting=True)
        )
        mon.start()
        engine.run(120.0)
        policy = NetworkLoadAwarePolicy(load_key="forecast")
        alloc = policy.allocate(mon.snapshot(), AllocationRequest(8))
        assert sum(alloc.procs.values()) == 8

    def test_default_config_has_no_forecast(self, env):
        engine, _store, cluster, network = env
        mon = MonitoringSystem(engine, cluster, network)
        mon.start()
        engine.run(60.0)
        view = mon.snapshot().nodes["node1"]
        assert "forecast" not in view.cpu_load
