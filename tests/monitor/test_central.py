"""Tests for the Central Monitor master/slave supervision and failover."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.central import MASTER_KEY, SLAVE_KEY, CentralMonitor, CentralService
from repro.monitor.daemons import LivehostsD, NodeStateD
from repro.monitor.store import InMemoryStore


@pytest.fixture
def env():
    specs, topo = uniform_cluster(6, nodes_per_switch=3)
    cluster = Cluster(specs, topo)
    return Engine(), InMemoryStore(), cluster


def make_service(engine, store, cluster, daemons=()):
    return CentralService(
        engine,
        store,
        cluster,
        daemons,
        master_host="node1",
        slave_host="node2",
        period_s=15.0,
    )


class TestCentralMonitor:
    def test_role_validation(self, env):
        engine, store, cluster = env
        with pytest.raises(ValueError, match="role"):
            CentralMonitor(
                engine, store, cluster, role="emperor", host="node1"
            )

    def test_stale_factor_validation(self, env):
        engine, store, cluster = env
        with pytest.raises(ValueError, match="stale_factor"):
            CentralMonitor(
                engine, store, cluster, role="master", host="node1",
                stale_factor=0.5,
            )

    def test_heartbeats_written(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        engine.run(30.0)
        assert store.get(MASTER_KEY) is not None
        assert store.get(SLAVE_KEY) is not None


class TestDaemonSupervision:
    def test_crashed_daemon_restarted(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node3", period_s=5.0)
        d.start()
        svc = make_service(engine, store, cluster, daemons=[d])
        svc.start()
        engine.run(60.0)
        d.crash()
        engine.run(300.0)
        assert d.alive
        assert svc.master.restarts_performed >= 1

    def test_healthy_daemon_not_restarted(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node3", period_s=5.0)
        d.start()
        svc = make_service(engine, store, cluster, daemons=[d])
        svc.start()
        engine.run(600.0)
        assert svc.master.restarts_performed == 0

    def test_relocatable_daemon_moves_off_dead_host(self, env):
        engine, store, cluster = env
        live = LivehostsD(engine, store, cluster, host="node3", period_s=10.0)
        live.start()
        svc = make_service(engine, store, cluster, daemons=[live])
        svc.start()
        engine.run(60.0)
        cluster.mark_down("node3")
        engine.run(600.0)
        assert live.host != "node3"
        assert cluster.state(live.host).up
        # daemon resumed on the new host
        assert store.age("livehosts", engine.now) < 60.0

    def test_nodestate_daemon_never_relocated(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node3", period_s=5.0)
        d.start()
        svc = make_service(engine, store, cluster, daemons=[d])
        svc.start()
        cluster.mark_down("node3")
        engine.run(600.0)
        assert d.host == "node3"  # pinned: it samples its own node


class TestFailover:
    def test_slave_promotes_when_master_dies(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        engine.run(60.0)
        original_master = svc.master
        original_master.crash()
        engine.run(600.0)
        assert svc.master is not original_master
        assert svc.master.role == "master"
        assert svc.master.alive

    def test_new_slave_spawned_after_promotion(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        engine.run(60.0)
        svc.master.crash()
        engine.run(600.0)
        assert svc.slave.alive
        assert svc.slave.role == "slave"
        assert svc.slave is not svc.master

    def test_master_replaces_dead_slave(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        engine.run(60.0)
        old_slave = svc.slave
        old_slave.crash()
        engine.run(600.0)
        assert svc.slave is not old_slave
        assert svc.slave.alive

    def test_supervision_survives_failover(self, env):
        engine, store, cluster = env
        d = NodeStateD(engine, store, cluster, "node4", period_s=5.0)
        d.start()
        svc = make_service(engine, store, cluster, daemons=[d])
        svc.start()
        engine.run(60.0)
        svc.master.crash()
        engine.run(300.0)
        d.crash()
        engine.run(300.0)
        assert d.alive  # the promoted master restarted it

    def test_master_host_down_triggers_promotion(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        engine.run(60.0)
        cluster.mark_down("node1")  # master host
        engine.run(600.0)
        assert svc.master.alive
        assert cluster.state(svc.master.host).up

    def test_no_thrashing_when_healthy(self, env):
        engine, store, cluster = env
        svc = make_service(engine, store, cluster)
        svc.start()
        first_master = svc.master
        engine.run(3600.0)
        assert svc.master is first_master
