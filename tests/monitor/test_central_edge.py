"""Edge cases for the Central Monitor's host selection and supervision."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.central import CentralMonitor, CentralService
from repro.monitor.daemons import LivehostsD
from repro.monitor.store import InMemoryStore


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    return Engine(), InMemoryStore(), Cluster(specs, topo)


class TestPickHost:
    def test_prefers_livehosts_record(self, env):
        engine, store, cluster = env
        store.put("livehosts", ["node3", "node4"], 0.0)
        mon = CentralMonitor(
            engine, store, cluster, role="master", host="node1"
        )
        assert mon._pick_host() == "node3"

    def test_falls_back_to_cluster_names(self, env):
        engine, store, cluster = env
        mon = CentralMonitor(
            engine, store, cluster, role="master", host="node1"
        )
        assert mon._pick_host(exclude="node1") == "node2"

    def test_skips_down_nodes(self, env):
        engine, store, cluster = env
        cluster.mark_down("node1")
        cluster.mark_down("node2")
        mon = CentralMonitor(
            engine, store, cluster, role="master", host="node3"
        )
        assert mon._pick_host() == "node3"

    def test_none_when_everything_down(self, env):
        engine, store, cluster = env
        for n in cluster.names:
            cluster.mark_down(n)
        mon = CentralMonitor(
            engine, store, cluster, role="master", host="node1"
        )
        assert mon._pick_host() is None


class TestSupervisionGrace:
    def test_slow_daemon_not_restarted_within_grace(self, env):
        """A daemon slower than the monitor but within its own grace
        window must not be restarted."""
        engine, store, cluster = env
        slow = LivehostsD(engine, store, cluster, period_s=120.0)
        slow.start()
        svc = CentralService(
            engine, store, cluster, [slow],
            master_host="node1", slave_host="node2", period_s=15.0,
        )
        svc.start()
        engine.run(360.0)
        assert svc.master.restarts_performed == 0
        assert slow.ticks >= 2

    def test_never_started_daemon_gets_launched(self, env):
        """Supervision launches daemons that never produced a heartbeat."""
        engine, store, cluster = env
        dead = LivehostsD(engine, store, cluster, period_s=30.0)
        # never started
        svc = CentralService(
            engine, store, cluster, [dead],
            master_host="node1", slave_host="node2", period_s=15.0,
        )
        svc.start()
        engine.run(600.0)
        assert dead.alive
