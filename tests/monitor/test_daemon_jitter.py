"""Tests for daemon tick jitter (fleet desynchronization)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.des.engine import Engine
from repro.monitor.daemons import NodeStateD
from repro.monitor.store import InMemoryStore


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    return Engine(), InMemoryStore(), Cluster(specs, topo)


class TestJitteredDaemons:
    def test_jitter_requires_rng(self, env):
        engine, store, cluster = env
        d = NodeStateD(
            engine, store, cluster, "node1", period_s=5.0, jitter_s=2.0
        )
        with pytest.raises(ValueError, match="jitter_rng"):
            d.start()

    def test_jittered_ticks_within_bounds(self, env):
        engine, store, cluster = env
        rng = np.random.default_rng(0)
        d = NodeStateD(
            engine, store, cluster, "node1",
            period_s=5.0, jitter_s=3.0, jitter_rng=rng,
        )
        d.start()
        engine.run(600.0)
        # ticks happen at least every period, at most period + jitter
        assert 600.0 / 8.0 <= d.ticks <= 600.0 / 5.0 + 1

    def test_fleet_desynchronizes(self, env):
        """With jitter, two same-period daemons drift apart — the paper's
        daemons must not stampede the shared filesystem in lock-step."""
        engine, store, cluster = env
        rng = np.random.default_rng(1)
        tick_times: dict[str, list[float]] = {"node1": [], "node2": []}

        class Spy(NodeStateD):
            def sample(self):
                tick_times[self.node].append(self.engine.now)
                super().sample()

        for n in ("node1", "node2"):
            Spy(
                engine, store, cluster, n,
                period_s=5.0, jitter_s=4.0, jitter_rng=rng,
            ).start()
        engine.run(600.0)
        a, b = tick_times["node1"], tick_times["node2"]
        k = min(len(a), len(b))
        offsets = {round(abs(x - y), 3) for x, y in zip(a[:k], b[:k])}
        assert len(offsets) > 1  # not in lock-step
