"""Tests for rolling-window running means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.rolling import DEFAULT_WINDOWS, RollingWindows


class TestConstruction:
    def test_default_windows_are_paper_windows(self):
        assert DEFAULT_WINDOWS == (60.0, 300.0, 900.0)

    def test_windows_sorted(self):
        rw = RollingWindows((300.0, 60.0))
        assert rw.windows == (60.0, 300.0)

    def test_empty_windows_rejected(self):
        with pytest.raises(ValueError):
            RollingWindows(())

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            RollingWindows((0.0,))


class TestMeans:
    def test_empty_returns_none(self):
        rw = RollingWindows()
        assert rw.mean(60.0) is None
        assert rw.latest is None

    def test_single_sample(self):
        rw = RollingWindows()
        rw.add(0.0, 5.0)
        assert rw.mean(60.0) == 5.0
        assert rw.latest == 5.0

    def test_window_selects_recent_samples(self):
        rw = RollingWindows((60.0, 300.0))
        for t, v in [(0.0, 10.0), (100.0, 20.0), (290.0, 30.0), (300.0, 40.0)]:
            rw.add(t, v)
        # 60-s window at t=300: samples at 290, 300
        assert rw.mean(60.0) == pytest.approx(35.0)
        # 300-s window: samples at 100, 290, 300 (0.0 < 300-300 cutoff edge)
        assert rw.mean(300.0) == pytest.approx((10 + 20 + 30 + 40) / 4)

    def test_eviction_beyond_largest_window(self):
        rw = RollingWindows((60.0,))
        rw.add(0.0, 1.0)
        rw.add(1000.0, 2.0)
        assert len(rw) == 1

    def test_out_of_order_rejected(self):
        rw = RollingWindows()
        rw.add(10.0, 1.0)
        with pytest.raises(ValueError, match="time order"):
            rw.add(5.0, 2.0)

    def test_equal_timestamps_allowed(self):
        rw = RollingWindows()
        rw.add(1.0, 1.0)
        rw.add(1.0, 3.0)
        assert rw.mean(60.0) == 2.0

    def test_explicit_now(self):
        rw = RollingWindows((60.0,))
        rw.add(0.0, 10.0)
        assert rw.mean(60.0, now=100.0) is None  # sample now stale

    def test_means_bulk(self):
        rw = RollingWindows((60.0, 300.0))
        rw.add(0.0, 2.0)
        assert rw.means() == {60.0: 2.0, 300.0: 2.0}

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
        )
    )
    def test_mean_matches_numpy_within_window(self, values):
        """Property: windowed mean equals numpy mean of in-window samples."""
        rw = RollingWindows((1e9,))  # effectively unbounded window
        for i, v in enumerate(values):
            rw.add(float(i), v)
        assert rw.mean(1e9) == pytest.approx(float(np.mean(values)))
