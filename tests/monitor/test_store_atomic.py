"""Regression: FileStore.put must never publish a torn/partial JSON file.

The original implementation wrote every put for a key through one shared
``<key>.tmp`` path; two concurrent writers could interleave
create/truncate/rename and atomically publish a *partially written*
file.  ``put`` now stages through a uniquely named ``mkstemp`` file and
``os.replace``s it, so a concurrent reader (e.g. the broker's snapshot
refresh loop) always sees a complete record.
"""

import json
import threading

import pytest

from repro.monitor.store import FileStore


@pytest.fixture
def store(tmp_path):
    return FileStore(tmp_path / "nfs")


class TestAtomicPut:
    def test_no_temp_files_left_behind(self, store, tmp_path):
        for i in range(50):
            store.put("nodestate/node-01", {"load": i}, time=float(i))
        leftovers = list((tmp_path / "nfs").rglob("*.tmp"))
        assert leftovers == []
        assert store.value("nodestate/node-01") == {"load": 49}

    def test_failed_put_cleans_up_and_keeps_old_value(self, store, tmp_path):
        store.put("k", {"ok": True}, time=1.0)

        class Unserializable:
            pass

        with pytest.raises(TypeError):
            store.put("k", {"bad": Unserializable()}, time=2.0)
        assert store.get("k") == (1.0, {"ok": True})
        assert list((tmp_path / "nfs").rglob("*.tmp")) == []

    def test_concurrent_writers_never_publish_torn_json(self, store, tmp_path):
        """Hammer one key from two writers while a reader parses the file.

        With the old shared-temp-name scheme the reader would eventually
        hit a JSONDecodeError (truncated file made visible by the other
        writer's rename).  The payload is large enough that a torn write
        cannot masquerade as valid JSON.
        """
        key = "livehosts"
        payload = {"hosts": [f"node-{i:03d}" for i in range(200)]}
        n_puts = 150
        errors: list[Exception] = []
        stop = threading.Event()
        path = tmp_path / "nfs" / "livehosts.json"

        def writer(offset: float) -> None:
            try:
                for i in range(n_puts):
                    store.put(key, payload, time=offset + i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader() -> None:
            while not stop.is_set():
                if not path.exists():
                    continue
                try:
                    rec = json.loads(path.read_text())
                except json.JSONDecodeError as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                if rec["value"] != payload:  # pragma: no cover
                    errors.append(AssertionError(f"partial record: {rec}"))
                    return

        threads = [
            threading.Thread(target=writer, args=(0.0,)),
            threading.Thread(target=writer, args=(1e6,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert errors == []
        assert store.value(key) == payload
        assert list((tmp_path / "nfs").rglob("*.tmp")) == []


class TestKeySuffixes:
    def test_dotted_keys_do_not_collide(self, store):
        """Keys differing only after a dot must map to distinct files."""
        store.put("rate.m1", 1.0, time=0.0)
        store.put("rate.m5", 5.0, time=0.0)
        assert store.value("rate.m1") == 1.0
        assert store.value("rate.m5") == 5.0
        assert store.keys() == ["rate.m1", "rate.m5"]

    def test_dotted_keys_roundtrip_through_keys(self, store):
        store.put("a/b.c/d.e", "x", time=0.0)
        assert store.keys() == ["a/b.c/d.e"]
        assert store.delete("a/b.c/d.e") is True
        assert store.keys() == []
