"""Tests for the Slurm select-plugin adapter."""

import numpy as np
import pytest

from repro.core.policies import AllocationError, LoadAwarePolicy
from repro.integrations.slurm import (
    SlurmJobSpec,
    SlurmSelectAdapter,
    compress_hostlist,
)
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snapshot():
    views = {}
    for i in range(1, 9):
        views[f"csews{i}"] = make_view(
            f"csews{i}",
            cores=12 if i <= 6 else 8,
            freq=4.6 if i <= 6 else 2.8,
            load=6.0 if i in (1, 2) else 0.3,
        )
    return make_snapshot(dict(sorted(views.items())))


class TestSlurmJobSpec:
    def test_parse_options(self):
        spec = SlurmJobSpec.from_options(
            "--ntasks=32 --ntasks-per-node=4 "
            "--exclude=csews3,csews4 --constraint=cores>=12 --alpha=0.4"
        )
        assert spec.ntasks == 32
        assert spec.ntasks_per_node == 4
        assert spec.exclude == ("csews3", "csews4")
        assert spec.constraints == ("cores>=12",)
        assert spec.alpha == 0.4

    def test_short_ntasks_flag(self):
        assert SlurmJobSpec.from_options("-n=8").ntasks == 8

    def test_ntasks_required(self):
        with pytest.raises(ValueError, match="ntasks"):
            SlurmJobSpec.from_options("--ntasks-per-node=4")

    def test_unknown_option(self):
        with pytest.raises(ValueError, match="unsupported"):
            SlurmJobSpec.from_options("--ntasks=4 --gpu=1")

    def test_malformed_option(self):
        with pytest.raises(ValueError, match="malformed"):
            SlurmJobSpec.from_options("--ntasks")

    def test_validation(self):
        with pytest.raises(ValueError):
            SlurmJobSpec(ntasks=0)
        with pytest.raises(ValueError):
            SlurmJobSpec(ntasks=4, ntasks_per_node=0)


class TestHostlistCompression:
    def test_consecutive_range(self):
        assert compress_hostlist(["csews1", "csews2", "csews3"]) == "csews[1-3]"

    def test_gaps(self):
        out = compress_hostlist(["csews1", "csews2", "csews7"])
        assert out == "csews[1-2,7]"

    def test_mixed_prefixes(self):
        out = compress_hostlist(["a1", "b2", "b3"])
        assert out == "a[1],b[2-3]"

    def test_non_numeric_names(self):
        assert compress_hostlist(["gateway"]) == "gateway"


class TestSelect:
    def test_basic_selection(self, snapshot):
        adapter = SlurmSelectAdapter(lambda: snapshot)
        sel = adapter.select(SlurmJobSpec(ntasks=16, ntasks_per_node=4))
        assert sum(sel.tasks_per_node) == 16
        assert sel.allocation.n_nodes == 4
        env = sel.environment()
        assert env["SLURM_NTASKS"] == "16"
        assert env["SLURM_JOB_NUM_NODES"] == "4"
        assert env["SLURM_JOB_NODELIST"] == sel.nodelist

    def test_exclusion_respected(self, snapshot):
        adapter = SlurmSelectAdapter(lambda: snapshot)
        spec = SlurmJobSpec(
            ntasks=16, ntasks_per_node=4, exclude=("csews3", "csews4")
        )
        sel = adapter.select(spec)
        assert {"csews3", "csews4"} & set(sel.allocation.nodes) == set()

    def test_constraint_filters_static_attributes(self, snapshot):
        adapter = SlurmSelectAdapter(lambda: snapshot)
        spec = SlurmJobSpec(
            ntasks=16, ntasks_per_node=4, constraints=("cores>=12",)
        )
        sel = adapter.select(spec)
        assert {"csews7", "csews8"} & set(sel.allocation.nodes) == set()

    def test_unsatisfiable_constraints(self, snapshot):
        adapter = SlurmSelectAdapter(lambda: snapshot)
        spec = SlurmJobSpec(
            ntasks=8, ntasks_per_node=4, constraints=("cores>=64",)
        )
        with pytest.raises(AllocationError):
            adapter.select(spec)

    def test_invalid_constraint_syntax(self, snapshot):
        adapter = SlurmSelectAdapter(lambda: snapshot)
        spec = SlurmJobSpec(
            ntasks=8, ntasks_per_node=4, constraints=("gpus>=1",)
        )
        with pytest.raises(ValueError, match="unsupported constraint"):
            adapter.select(spec)

    def test_custom_policy(self, snapshot):
        adapter = SlurmSelectAdapter(
            lambda: snapshot, policy=LoadAwarePolicy()
        )
        sel = adapter.select(SlurmJobSpec(ntasks=8, ntasks_per_node=4))
        assert sel.allocation.policy == "load_aware"
        # loaded csews1/csews2 are avoided by a load-aware plugin
        assert {"csews1", "csews2"} & set(sel.allocation.nodes) == set()
