"""Property-based tests for Slurm hostlist compression."""

import re

from hypothesis import given
from hypothesis import strategies as st

from repro.integrations.slurm import compress_hostlist


def expand(hostlist: str) -> set[str]:
    """Reference expansion of the compressed form."""
    out: set[str] = set()
    # split on commas that are *outside* brackets
    parts = re.findall(r"[^,\[\]]+\[[^\]]*\]|[^,\[\]]+", hostlist)
    for part in parts:
        m = re.match(r"^(.*)\[(.*)\]$", part)
        if not m:
            out.add(part)
            continue
        prefix, ranges = m.groups()
        for r in ranges.split(","):
            if "-" in r:
                lo, hi = r.split("-")
                for i in range(int(lo), int(hi) + 1):
                    out.add(f"{prefix}{i}")
            else:
                out.add(f"{prefix}{int(r)}")
    return out


node_sets = st.sets(
    st.integers(min_value=1, max_value=99), min_size=1, max_size=30
)


@given(node_sets)
def test_roundtrip_single_prefix(nums):
    nodes = [f"csews{i}" for i in sorted(nums)]
    compressed = compress_hostlist(nodes)
    assert expand(compressed) == set(nodes)


@given(node_sets, node_sets)
def test_roundtrip_two_prefixes(a, b):
    nodes = [f"a{i}" for i in a] + [f"b{i}" for i in b]
    compressed = compress_hostlist(nodes)
    assert expand(compressed) == set(nodes)


@given(node_sets)
def test_compression_is_order_insensitive(nums):
    fwd = [f"n{i}" for i in sorted(nums)]
    rev = list(reversed(fwd))
    assert compress_hostlist(fwd) == compress_hostlist(rev)
