"""Live-scenario integration test for the Slurm adapter."""

import pytest

from repro.experiments.scenario import paper_scenario
from repro.integrations.slurm import SlurmJobSpec, SlurmSelectAdapter


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(seed=19, warmup_s=900.0)


class TestSlurmOnLiveCluster:
    def test_sbatch_like_flow(self, scenario):
        adapter = SlurmSelectAdapter(scenario.snapshot)
        spec = SlurmJobSpec.from_options(
            "--ntasks=32 --ntasks-per-node=4 --constraint=cores>=12 "
            "--alpha=0.3"
        )
        sel = adapter.select(spec, rng=scenario.streams.child("slurm"))
        # constraint: only 12-core machines (cswes 12-core subset)
        for n in sel.allocation.nodes:
            assert scenario.cluster.spec(n).cores >= 12
        assert sel.environment()["SLURM_NTASKS"] == "32"
        # hostlist round-trips the node count
        assert sel.allocation.n_nodes == 8

    def test_down_node_never_selected(self, scenario):
        scenario.cluster.mark_down("csews5")
        scenario.advance(120.0)
        adapter = SlurmSelectAdapter(scenario.snapshot)
        sel = adapter.select(SlurmJobSpec(ntasks=32, ntasks_per_node=4))
        assert "csews5" not in sel.allocation.nodes
        scenario.cluster.mark_up("csews5")
