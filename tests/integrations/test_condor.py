"""Tests for the HTCondor-style rank matchmaker."""

import numpy as np
import pytest

from repro.core.policies import AllocationRequest
from repro.integrations.condor import (
    CLASSAD_ATTRIBUTES,
    CondorLikePolicy,
    RankExpression,
)
from tests.core.conftest import make_snapshot, make_view


@pytest.fixture
def snapshot():
    views = {
        "fast_idle": make_view("fast_idle", freq=4.6, load=0.1),
        "fast_busy": make_view("fast_busy", freq=4.6, load=10.0, util=90.0),
        "slow_idle": make_view("slow_idle", freq=2.8, load=0.1),
        "slow_busy": make_view("slow_busy", freq=2.8, load=10.0, util=90.0),
    }
    return make_snapshot(views)


class TestRankExpression:
    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError):
            RankExpression({"Gpus": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RankExpression({})

    def test_evaluation(self):
        view = make_view("x", freq=4.0, load=2.0)
        rank = RankExpression({"Mips": 1.0, "LoadAvg": -100.0})
        assert rank.evaluate(view) == pytest.approx(4000.0 - 200.0)

    def test_all_classad_attributes_extract(self):
        view = make_view("x")
        for name, fn in CLASSAD_ATTRIBUTES.items():
            assert isinstance(fn(view), float), name


class TestCondorLikePolicy:
    def test_prefers_fast_idle_machines(self, snapshot):
        policy = CondorLikePolicy()
        alloc = policy.allocate(snapshot, AllocationRequest(8, ppn=4))
        assert alloc.nodes == ("fast_idle", "slow_idle")

    def test_custom_rank_changes_selection(self, snapshot):
        # rank purely by clock speed: busy fast node beats idle slow one
        policy = CondorLikePolicy(RankExpression({"Mips": 1.0}))
        alloc = policy.allocate(snapshot, AllocationRequest(8, ppn=4))
        assert set(alloc.nodes) == {"fast_idle", "fast_busy"}

    def test_network_blindness(self):
        """The §2 critique: identical local attributes -> rank cannot
        distinguish a well-connected group from a scattered one."""
        views = {f"n{i}": make_view(f"n{i}") for i in range(1, 5)}
        bandwidth = {("n1", "n2"): 120.0, ("n3", "n4"): 5.0}
        snap = make_snapshot(views, bandwidth=bandwidth)
        policy = CondorLikePolicy()
        alloc = policy.allocate(snap, AllocationRequest(8, ppn=4))
        # ties broken lexically; the policy never consulted bandwidth
        assert alloc.nodes == ("n1", "n2")
        assert "best_rank" in alloc.metadata

    def test_allocation_invariants(self, snapshot):
        alloc = CondorLikePolicy().allocate(
            snapshot, AllocationRequest(10, ppn=4)
        )
        assert sum(alloc.procs.values()) == 10
