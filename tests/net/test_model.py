"""Tests for the NetworkModel façade."""

import math

import numpy as np
import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.flows import Flow
from repro.net.model import NetworkModel


@pytest.fixture
def net():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return NetworkModel(topo)


class TestFlowManagement:
    def test_add_and_remove(self, net):
        f = net.add_flow(Flow("node1", "node2", 10.0))
        assert len(net.flows) == 1
        net.remove_flow(f)
        assert len(net.flows) == 0

    def test_add_flows_bulk(self, net):
        net.add_flows([Flow("node1", "node2", 5.0), Flow("node3", "node4", 5.0)])
        assert len(net.flows) == 2

    def test_replace_tag(self, net):
        net.add_flow(Flow("node1", "node2", 5.0, tag="stream"))
        net.replace_tag("stream", [Flow("node3", "node4", 7.0, tag="stream")])
        flows = list(net.flows)
        assert len(flows) == 1 and flows[0].src == "node3"

    def test_replace_tag_mismatch_rejected(self, net):
        with pytest.raises(ValueError, match="does not match"):
            net.replace_tag("stream", [Flow("node1", "node2", 5.0, tag="other")])

    def test_cache_invalidation(self, net):
        assert net.available_bandwidth("node1", "node2") == pytest.approx(125.0)
        net.add_flow(Flow("node1", "node3", math.inf))
        assert net.available_bandwidth("node1", "node2") < 125.0


class TestSolvedState:
    def test_rates_cached_object(self, net):
        net.add_flow(Flow("node1", "node2", 10.0))
        assert net.rates() is net.rates()

    def test_node_flow_rates(self, net):
        net.add_flow(Flow("node1", "node2", 10.0))
        rates = net.node_flow_rates()
        assert rates["node1"] == pytest.approx(10.0)
        assert rates["node2"] == pytest.approx(10.0)

    def test_link_utilization_bounds(self, net):
        net.add_flow(Flow("node1", "node2", math.inf))
        util = net.link_utilization()
        assert all(0.0 <= u <= 1.0 for u in util.values())


class TestMeasurements:
    def test_peak_bandwidth_min_capacity(self, net):
        assert net.peak_bandwidth("node1", "node2") == pytest.approx(125.0)

    def test_peak_same_node_rejected(self, net):
        with pytest.raises(ValueError):
            net.peak_bandwidth("node1", "node1")

    def test_bandwidth_matrix_symmetric(self, net):
        nodes = ["node1", "node2", "node5"]
        mat = net.bandwidth_matrix(nodes)
        assert mat[0, 1] == mat[1, 0]
        assert math.isinf(mat[0, 0])

    def test_bulk_rejects_self_pairs(self, net):
        with pytest.raises(ValueError):
            net.bulk_available_bandwidth([("node1", "node1")])

    def test_latency_increases_with_congestion(self, net):
        idle = net.latency_us("node1", "node5")
        net.add_flow(Flow("node2", "node6", math.inf))
        assert net.latency_us("node1", "node5") > idle
