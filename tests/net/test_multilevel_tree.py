"""Fair-share and latency behaviour on a three-level switch tree."""

import math

import pytest

from repro.cluster.topology import SwitchTopology
from repro.net.bandwidth import FairShareSolver
from repro.net.flows import Flow
from repro.net.model import NetworkModel


@pytest.fixture
def deep_topo():
    parents = {
        "core": None,
        "agg1": "core",
        "agg2": "core",
        "leaf1": "agg1",
        "leaf2": "agg1",
        "leaf3": "agg2",
    }
    nodes = {
        "a1": "leaf1", "a2": "leaf1",
        "b1": "leaf2", "b2": "leaf2",
        "c1": "leaf3", "c2": "leaf3",
    }
    return SwitchTopology(parents, nodes, uplink_capacity_mbs=200.0)


class TestDeepTreeRouting:
    def test_hop_counts(self, deep_topo):
        assert deep_topo.hops("a1", "a2") == 2  # same leaf
        assert deep_topo.hops("a1", "b1") == 4  # via agg1
        assert deep_topo.hops("a1", "c1") == 6  # via core

    def test_uplink_is_bottleneck_for_core_crossing(self, deep_topo):
        solver = FairShareSolver(deep_topo)
        # two greedy flows crossing the core share agg uplinks of 200:
        flows = [
            Flow("a1", "c1", math.inf),
            Flow("b1", "c2", math.inf),
        ]
        rates = solver.solve(flows)
        for f in flows:
            # both flows share the agg1-core and core-agg2 trunks (200):
            # the equal split (100) binds before the 125 NIC
            assert rates[f.flow_id] == pytest.approx(100.0)

    def test_latency_grows_with_depth(self, deep_topo):
        net = NetworkModel(deep_topo)
        assert (
            net.latency_us("a1", "a2")
            < net.latency_us("a1", "b1")
            < net.latency_us("a1", "c1")
        )

    def test_hop_efficiency_compounds(self, deep_topo):
        net = NetworkModel(deep_topo, hop_bw_efficiency=0.9)
        # 6-hop path: 4 extra hops -> 0.9^4
        assert net.hop_bw_factor("a1", "c1") == pytest.approx(0.9**4)

    def test_same_leaf_unaffected_by_core_traffic(self, deep_topo):
        net = NetworkModel(deep_topo)
        before = net.available_bandwidth("a1", "a2")
        net.add_flow(Flow("b1", "c1", 150.0))
        after = net.available_bandwidth("a1", "a2")
        assert after == pytest.approx(before)
