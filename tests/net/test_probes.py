"""Tests for the round-robin probe schedule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.probes import round_robin_rounds, validate_rounds


class TestRoundRobin:
    def test_two_nodes_single_round(self):
        rounds = round_robin_rounds(["a", "b"])
        assert rounds == [[("a", "b")]]

    def test_even_count_structure(self):
        nodes = [f"n{i}" for i in range(8)]
        rounds = round_robin_rounds(nodes)
        assert len(rounds) == 7
        assert all(len(r) == 4 for r in rounds)

    def test_odd_count_structure(self):
        nodes = [f"n{i}" for i in range(7)]
        rounds = round_robin_rounds(nodes)
        assert len(rounds) == 7
        assert all(len(r) == 3 for r in rounds)

    def test_all_pairs_covered_exactly_once(self):
        nodes = [f"n{i}" for i in range(10)]
        rounds = round_robin_rounds(nodes)
        validate_rounds(nodes, rounds)  # raises on any violation

    def test_empty_and_single(self):
        assert round_robin_rounds([]) == []
        assert round_robin_rounds(["a"]) == []

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            round_robin_rounds(["a", "a"])

    @given(st.integers(min_value=2, max_value=20))
    def test_tournament_property(self, n):
        nodes = [f"n{i:02d}" for i in range(n)]
        rounds = round_robin_rounds(nodes)
        validate_rounds(nodes, rounds)
        # no node appears twice within any round
        for rnd in rounds:
            flat = [x for pair in rnd for x in pair]
            assert len(flat) == len(set(flat))


class TestValidateRounds:
    def test_detects_missing_pair(self):
        nodes = ["a", "b", "c", "d"]
        rounds = round_robin_rounds(nodes)
        rounds[0] = rounds[0][:-1]  # drop a pair
        with pytest.raises(ValueError, match="misses"):
            validate_rounds(nodes, rounds)

    def test_detects_node_reuse(self):
        with pytest.raises(ValueError, match="reused"):
            validate_rounds(
                ["a", "b", "c"], [[("a", "b"), ("a", "c")], [("b", "c")]]
            )

    def test_detects_duplicate_pair(self):
        with pytest.raises(ValueError, match="twice"):
            validate_rounds(
                ["a", "b", "c", "d"],
                [[("a", "b")], [("a", "b")], [("c", "d")]],
            )
