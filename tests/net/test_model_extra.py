"""Extra NetworkModel tests: constructor validation and hop factors."""

import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.model import NetworkModel


@pytest.fixture
def topo():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return topo


class TestConstructorValidation:
    def test_negative_endpoint_factor(self, topo):
        with pytest.raises(ValueError, match="endpoint_bw_load_factor"):
            NetworkModel(topo, endpoint_bw_load_factor=-0.1)

    @pytest.mark.parametrize("eff", [0.0, 1.5, -0.2])
    def test_bad_hop_efficiency(self, topo, eff):
        with pytest.raises(ValueError, match="hop_bw_efficiency"):
            NetworkModel(topo, hop_bw_efficiency=eff)

    def test_efficiency_of_one_disables_hop_penalty(self, topo):
        net = NetworkModel(topo, hop_bw_efficiency=1.0)
        assert net.hop_bw_factor("node1", "node5") == 1.0


class TestHopFactor:
    def test_same_switch_unpenalized(self, topo):
        net = NetworkModel(topo, hop_bw_efficiency=0.9)
        assert net.hop_bw_factor("node1", "node2") == 1.0

    def test_cross_switch_penalized_per_extra_hop(self, topo):
        net = NetworkModel(topo, hop_bw_efficiency=0.9)
        # 4 hops: two beyond the same-switch base -> 0.9^2
        assert net.hop_bw_factor("node1", "node5") == pytest.approx(0.81)

    def test_factor_applied_to_measurements(self, topo):
        strict = NetworkModel(topo, hop_bw_efficiency=0.5)
        assert strict.available_bandwidth("node1", "node5") == pytest.approx(
            125.0 * 0.25
        )
        bulk = strict.bulk_available_bandwidth([("node1", "node5")])
        assert bulk[("node1", "node5")] == pytest.approx(125.0 * 0.25)


class TestEndpointProvider:
    def test_provider_can_be_cleared(self, topo):
        net = NetworkModel(topo)
        net.set_node_load_provider(lambda n: 5.0)
        throttled = net.available_bandwidth("node1", "node2")
        net.set_node_load_provider(None)
        assert net.available_bandwidth("node1", "node2") > throttled

    def test_negative_loads_clamped(self, topo):
        net = NetworkModel(topo)
        net.set_node_load_provider(lambda n: -3.0)
        assert net.endpoint_bw_factor("node1", "node2") == 1.0
