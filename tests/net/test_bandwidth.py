"""Tests for max–min fair-share bandwidth allocation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import uniform_cluster
from repro.net.bandwidth import FairShareSolver, available_bandwidth
from repro.net.flows import Flow
from repro.net.model import NetworkModel


@pytest.fixture
def topo():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return topo


@pytest.fixture
def solver(topo):
    return FairShareSolver(topo)


class TestFairShare:
    def test_empty(self, solver):
        assert solver.solve([]) == {}

    def test_single_flow_gets_bottleneck(self, solver):
        f = Flow("node1", "node2", math.inf)
        rates = solver.solve([f])
        assert rates[f.flow_id] == pytest.approx(125.0)

    def test_demand_cap_respected(self, solver):
        f = Flow("node1", "node2", 10.0)
        assert solver.solve([f])[f.flow_id] == pytest.approx(10.0)

    def test_two_greedy_flows_share_nic(self, solver):
        f1 = Flow("node1", "node2", math.inf)
        f2 = Flow("node1", "node3", math.inf)
        rates = solver.solve([f1, f2])
        # Both exit node1's NIC: equal split.
        assert rates[f1.flow_id] == pytest.approx(62.5)
        assert rates[f2.flow_id] == pytest.approx(62.5)

    def test_small_flow_frees_capacity_for_greedy(self, solver):
        small = Flow("node1", "node2", 25.0)
        greedy = Flow("node1", "node3", math.inf)
        rates = solver.solve([small, greedy])
        assert rates[small.flow_id] == pytest.approx(25.0)
        assert rates[greedy.flow_id] == pytest.approx(100.0)

    def test_disjoint_flows_independent(self, solver):
        f1 = Flow("node1", "node2", math.inf)
        f2 = Flow("node3", "node4", math.inf)
        rates = solver.solve([f1, f2])
        assert rates[f1.flow_id] == pytest.approx(125.0)
        assert rates[f2.flow_id] == pytest.approx(125.0)

    def test_no_link_overloaded(self, solver, topo):
        rng = np.random.default_rng(0)
        nodes = topo.nodes
        flows = []
        for _ in range(30):
            a, b = rng.choice(len(nodes), size=2, replace=False)
            flows.append(
                Flow(nodes[a], nodes[b], float(rng.uniform(5, 500)))
            )
        rates = solver.solve(flows)
        util = solver.link_utilization(flows, rates)
        assert all(u <= 1.0 + 1e-9 for u in util.values())

    def test_rates_never_exceed_demand(self, solver, topo):
        rng = np.random.default_rng(1)
        nodes = topo.nodes
        flows = [
            Flow(nodes[0], nodes[i], float(rng.uniform(1, 50)))
            for i in range(1, 8)
        ]
        rates = solver.solve(flows)
        for f in flows:
            assert rates[f.flow_id] <= f.demand_mbs + 1e-9

    def test_maxmin_fairness_single_bottleneck(self, topo, solver):
        """On one shared bottleneck, greedy flows get exactly equal shares
        and no rate can grow without shrinking an equal-or-smaller one."""
        flows = [Flow("node1", f"node{i}", math.inf) for i in (2, 3, 4)]
        rates = solver.solve(flows)
        vals = [rates[f.flow_id] for f in flows]
        assert all(v == pytest.approx(vals[0]) for v in vals)
        assert sum(vals) == pytest.approx(125.0)

    def test_maxmin_lexicographic_improvement(self, topo, solver):
        """Max–min dominates naive equal-split: a flow limited by a small
        demand releases its unused share to the others."""
        flows = [
            Flow("node1", "node2", 5.0),
            Flow("node1", "node3", math.inf),
            Flow("node1", "node4", math.inf),
        ]
        rates = solver.solve(flows)
        assert rates[flows[0].flow_id] == pytest.approx(5.0)
        assert rates[flows[1].flow_id] == pytest.approx(60.0)
        assert rates[flows[2].flow_id] == pytest.approx(60.0)

    @settings(max_examples=25, deadline=None)
    @given(
        demands=st.lists(
            st.floats(min_value=0.5, max_value=400.0), min_size=1, max_size=12
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_maxmin_properties_hold(self, demands, seed):
        """Property: feasibility + demand caps + non-negativity."""
        _, topo = uniform_cluster(6, nodes_per_switch=3)
        solver = FairShareSolver(topo)
        rng = np.random.default_rng(seed)
        nodes = topo.nodes
        flows = []
        for d in demands:
            a, b = rng.choice(len(nodes), size=2, replace=False)
            flows.append(Flow(nodes[a], nodes[b], d))
        rates = solver.solve(flows)
        assert all(r >= 0 for r in rates.values())
        for f in flows:
            assert rates[f.flow_id] <= f.demand_mbs + 1e-6
        util = solver.link_utilization(flows, rates)
        assert all(u <= 1.0 + 1e-6 for u in util.values())


class TestAvailableBandwidth:
    def test_idle_network_gives_peak(self, topo):
        bw = available_bandwidth(topo, [], "node1", "node2")
        assert bw == pytest.approx(125.0)

    def test_probe_gets_fair_share_on_saturated_link(self, topo):
        bg = [Flow("node1", "node2", math.inf)]
        bw = available_bandwidth(topo, bg, "node1", "node3")
        assert bw == pytest.approx(62.5)

    def test_same_node_rejected(self, topo):
        with pytest.raises(ValueError):
            available_bandwidth(topo, [], "node1", "node1")

    def test_bulk_matches_exact_on_idle_network(self, topo):
        net = NetworkModel(topo)
        pairs = [("node1", "node2"), ("node1", "node5")]
        bulk = net.bulk_available_bandwidth(pairs)
        for u, v in pairs:
            assert bulk[(u, v)] == pytest.approx(net.available_bandwidth(u, v))

    def test_bulk_close_to_exact_under_load(self, topo):
        net = NetworkModel(topo)
        rng = np.random.default_rng(7)
        nodes = topo.nodes
        for _ in range(12):
            a, b = rng.choice(len(nodes), size=2, replace=False)
            net.add_flow(Flow(nodes[a], nodes[b], float(rng.uniform(10, 120))))
        pairs = [
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        ]
        bulk = net.bulk_available_bandwidth(pairs)
        for u, v in pairs:
            exact = net.available_bandwidth(u, v)
            # The documented approximation bound: within 30 % or 5 MB/s.
            assert abs(bulk[(u, v)] - exact) <= max(0.3 * exact, 5.0)
