"""Tests for the latency model."""

import numpy as np
import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.flows import Flow
from repro.net.latency import LatencyConfig, LatencyModel
from repro.net.model import NetworkModel


@pytest.fixture
def topo():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return topo


class TestLatencyConfig:
    def test_defaults_valid(self):
        LatencyConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"base_per_hop_us": 0.0},
            {"queue_factor": -1.0},
            {"endpoint_load_us": -5.0},
            {"jitter_us": -1.0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            LatencyConfig(**kw)


class TestLatencyModel:
    def test_self_latency_zero(self, topo):
        model = LatencyModel(topo)
        assert model.latency_us("node1", "node1", {}) == 0.0

    def test_idle_latency_scales_with_hops(self, topo):
        model = LatencyModel(topo, LatencyConfig(base_per_hop_us=25.0))
        same = model.latency_us("node1", "node2", {})
        cross = model.latency_us("node1", "node5", {})
        assert same == pytest.approx(50.0)  # 2 hops
        assert cross == pytest.approx(100.0)  # 4 hops

    def test_congestion_increases_latency(self, topo):
        model = LatencyModel(topo)
        idle = model.latency_us("node1", "node2", {})
        util = {("node1", "switch1"): 0.8}
        loaded = model.latency_us("node1", "node2", util)
        assert loaded > idle

    def test_utilization_clamped_below_one(self, topo):
        model = LatencyModel(topo)
        util = {("node1", "switch1"): 1.0}
        assert np.isfinite(model.latency_us("node1", "node2", util))

    def test_endpoint_load_term(self, topo):
        model = LatencyModel(topo, LatencyConfig(endpoint_load_us=100.0))
        idle = model.latency_us("node1", "node2", {})
        loaded = model.latency_us(
            "node1", "node2", {}, endpoint_load_per_core=(0.5, 1.0)
        )
        assert loaded == pytest.approx(idle + 150.0)

    def test_jitter_bounded(self, topo):
        cfg = LatencyConfig(jitter_us=10.0)
        model = LatencyModel(topo, cfg)
        rng = np.random.default_rng(0)
        base = model.latency_us("node1", "node2", {})
        vals = [
            model.latency_us("node1", "node2", {}, rng=rng) for _ in range(50)
        ]
        assert all(abs(v - base) <= 10.0 for v in vals)

    def test_latency_from_flows(self, topo):
        model = LatencyModel(topo)
        idle = model.latency_from_flows("node1", "node2", [])
        busy = model.latency_from_flows(
            "node1", "node2", [Flow("node1", "node3", 120.0)]
        )
        assert busy > idle


class TestNetworkModelLatency:
    def test_endpoint_loads_flow_into_latency(self, topo):
        net = NetworkModel(topo)
        base = net.latency_us("node1", "node2")
        loads = {"node1": 12.0, "node2": 0.0}
        net.set_node_load_provider(lambda n: loads.get(n, 0.0) / 12.0)
        assert net.latency_us("node1", "node2") > base

    def test_latency_matrix_symmetric(self, topo):
        net = NetworkModel(topo)
        mat = net.latency_matrix(["node1", "node2", "node5"])
        assert np.allclose(mat, mat.T)
        assert np.all(np.diag(mat) == 0.0)

    def test_endpoint_bw_factor(self, topo):
        net = NetworkModel(topo, endpoint_bw_load_factor=1.0)
        assert net.endpoint_bw_factor("node1", "node2") == 1.0
        net.set_node_load_provider(lambda n: 1.0 if n == "node1" else 0.0)
        assert net.endpoint_bw_factor("node1", "node2") == pytest.approx(0.5)

    def test_endpoint_bw_throttles_available_bandwidth(self, topo):
        net = NetworkModel(topo)
        free = net.available_bandwidth("node1", "node2")
        net.set_node_load_provider(lambda n: 2.0)
        assert net.available_bandwidth("node1", "node2") < free
