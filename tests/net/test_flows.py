"""Tests for traffic flows and the flow set."""

import pytest

from repro.net.flows import Flow, FlowSet


class TestFlow:
    def test_distinct_endpoints_required(self):
        with pytest.raises(ValueError, match="differ"):
            Flow("a", "a", 1.0)

    def test_positive_demand_required(self):
        with pytest.raises(ValueError, match="positive"):
            Flow("a", "b", 0.0)

    def test_infinite_demand_allowed(self):
        f = Flow("a", "b", float("inf"))
        assert f.demand_mbs == float("inf")

    def test_unique_ids(self):
        assert Flow("a", "b", 1.0).flow_id != Flow("a", "b", 1.0).flow_id


class TestFlowSet:
    def test_add_remove(self):
        fs = FlowSet()
        f = fs.add(Flow("a", "b", 1.0))
        assert f in fs and len(fs) == 1
        fs.remove(f)
        assert f not in fs and len(fs) == 0

    def test_duplicate_rejected(self):
        fs = FlowSet()
        f = fs.add(Flow("a", "b", 1.0))
        with pytest.raises(ValueError, match="duplicate"):
            fs.add(f)

    def test_remove_missing(self):
        fs = FlowSet()
        with pytest.raises(KeyError):
            fs.remove(Flow("a", "b", 1.0))

    def test_remove_tag(self):
        fs = FlowSet(
            [Flow("a", "b", 1.0, tag="x"), Flow("a", "b", 1.0, tag="y")]
        )
        assert fs.remove_tag("x") == 1
        assert len(fs) == 1

    def test_with_tag(self):
        fs = FlowSet([Flow("a", "b", 1.0, tag="x")])
        assert len(fs.with_tag("x")) == 1
        assert fs.with_tag("zzz") == []

    def test_clear(self):
        fs = FlowSet([Flow("a", "b", 1.0)])
        fs.clear()
        assert len(fs) == 0

    def test_node_flow_rate_sums_in_and_out(self):
        f1 = Flow("a", "b", 10.0)
        f2 = Flow("b", "c", 10.0)
        fs = FlowSet([f1, f2])
        rates = fs.node_flow_rate({f1.flow_id: 4.0, f2.flow_id: 6.0})
        assert rates["a"] == 4.0
        assert rates["b"] == 10.0  # 4 in + 6 out
        assert rates["c"] == 6.0
