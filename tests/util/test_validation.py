"""Tests for validation helpers."""

import pytest

from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)


class TestRequirePositive:
    def test_passes(self):
        assert require_positive(1.5, "x") == 1.5

    def test_zero_fails(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0, "x")

    def test_negative_fails(self):
        with pytest.raises(ValueError):
            require_positive(-1, "x")


class TestRequireNonNegative:
    def test_zero_passes(self):
        assert require_non_negative(0, "x") == 0

    def test_negative_fails(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_non_negative(-0.1, "x")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_in_range(0.0, 0.0, 1.0, "x", inclusive=False)

    def test_outside_fails(self):
        with pytest.raises(ValueError, match="must be in"):
            require_in_range(2.0, 0.0, 1.0, "x")


class TestRequireType:
    def test_passes(self):
        assert require_type(3, int, "x") == 3

    def test_tuple_of_types(self):
        assert require_type(3.0, (int, float), "x") == 3.0

    def test_fails(self):
        with pytest.raises(TypeError, match="x must be int"):
            require_type("s", int, "x")
