"""Extra RNG stream tests: long names, unicode, repr stability."""

import numpy as np

from repro.util.rng import RngStream


class TestStreamNames:
    def test_long_names_supported(self):
        s = RngStream(1)
        name = "workload:" + "x" * 500
        g = s.child(name)
        assert isinstance(g, np.random.Generator)

    def test_unicode_names_stable(self):
        a = RngStream(2).child("nœud-α").integers(0, 1 << 62)
        b = RngStream(2).child("nœud-α").integers(0, 1 << 62)
        assert a == b

    def test_similar_names_differ(self):
        s = RngStream(3)
        vals = {
            s.child(n).integers(0, 1 << 62)
            for n in ("node1", "node2", "node11", "node1 ", "node1!")
        }
        assert len(vals) == 5

    def test_per_node_streams_independent_of_node_count(self):
        """A node's stream must not depend on how many siblings exist —
        growing the cluster must not reshuffle existing behaviour."""
        small = RngStream(4)
        for i in range(3):
            small.child(f"sessions:node{i}")
        big = RngStream(4)
        for i in range(30):
            big.child(f"sessions:node{i}")
        a = small.child("sessions:node1").integers(0, 1 << 62)
        # fresh stream objects for a fair draw comparison
        b = RngStream(4).child("sessions:node1").integers(0, 1 << 62)
        assert a == b
