"""Tests for deterministic RNG stream management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import RngStream, as_generator, spawn_children


class TestAsGenerator:
    def test_from_int(self):
        g = as_generator(7)
        assert isinstance(g, np.random.Generator)

    def test_same_seed_same_stream(self):
        a, b = as_generator(42), as_generator(42)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_zero(self):
        assert spawn_children(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_children(0, -1)

    def test_children_independent(self):
        a, b = spawn_children(0, 2)
        # Streams should differ (overwhelmingly likely draw mismatch).
        assert a.integers(0, 1 << 62) != b.integers(0, 1 << 62)

    def test_deterministic(self):
        a1, _ = spawn_children(9, 2)
        a2, _ = spawn_children(9, 2)
        assert a1.integers(0, 1 << 62) == a2.integers(0, 1 << 62)


class TestRngStream:
    def test_same_name_same_stream(self):
        s1, s2 = RngStream(3), RngStream(3)
        assert (
            s1.child("workload").integers(0, 1 << 62)
            == s2.child("workload").integers(0, 1 << 62)
        )

    def test_different_names_differ(self):
        s = RngStream(3)
        a = s.child("a").integers(0, 1 << 62)
        b = s.child("b").integers(0, 1 << 62)
        assert a != b

    def test_order_independent(self):
        s1, s2 = RngStream(3), RngStream(3)
        s1.child("x")  # request x first
        v1 = s1.child("y").integers(0, 1 << 62)
        v2 = s2.child("y").integers(0, 1 << 62)  # y first here
        assert v1 == v2

    def test_child_cached(self):
        s = RngStream(0)
        assert s.child("a") is s.child("a")

    def test_children_bulk(self):
        s = RngStream(0)
        d = s.children(["a", "b"])
        assert set(d) == {"a", "b"}

    def test_entropy_exposed(self):
        assert RngStream(17).entropy == 17

    def test_from_seed_sequence(self):
        s = RngStream(np.random.SeedSequence(11))
        assert s.entropy == 11

    def test_from_generator(self):
        s = RngStream(np.random.default_rng(0))
        assert isinstance(s.entropy, int)

    def test_none_seed(self):
        s = RngStream(None)
        assert isinstance(s.child("a"), np.random.Generator)
