"""Tests for unit conversion helpers."""

from repro.util.units import (
    GIGABIT_PER_S_IN_MB_S,
    gbps_to_mbs,
    mbs_to_gbps,
    microseconds,
    to_microseconds,
)


def test_gigabit_constant():
    assert GIGABIT_PER_S_IN_MB_S == 125.0


def test_gbps_roundtrip():
    assert mbs_to_gbps(gbps_to_mbs(2.5)) == 2.5


def test_gbps_to_mbs():
    assert gbps_to_mbs(1.0) == 125.0


def test_microseconds():
    assert microseconds(1e6) == 1.0


def test_to_microseconds():
    assert to_microseconds(1.0) == 1e6
