"""Tests for the dependency-free SVG chart renderer."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import SvgCanvas, bar_chart, heatmap, line_chart


def parse(svg: str) -> ET.Element:
    """Round-trip through an XML parser: output must be well-formed."""
    return ET.fromstring(svg)


class TestSvgCanvas:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)

    def test_render_is_valid_xml(self):
        c = SvgCanvas(100, 80)
        c.line(0, 0, 10, 10)
        c.rect(5, 5, 20, 20)
        c.text(10, 10, "hello <&> world")
        root = parse(c.render())
        assert root.tag.endswith("svg")
        assert root.attrib["width"] == "100"

    def test_text_escaping(self):
        c = SvgCanvas(100, 80)
        c.text(0, 0, "<script>")
        assert "<script>" not in c.render()

    def test_rotated_text(self):
        c = SvgCanvas(100, 80)
        c.text(10, 10, "y", rotate=-90)
        assert "rotate(-90" in c.render()


class TestLineChart:
    def test_basic(self, tmp_path):
        path = tmp_path / "chart.svg"
        svg = line_chart(
            {"a": ([0, 1, 2], [1.0, 3.0, 2.0]), "b": ([0, 1, 2], [2.0, 2.0, 2.0])},
            title="T",
            x_label="x",
            y_label="y",
            path=path,
        )
        root = parse(svg)
        assert path.read_text() == svg
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2
        assert "T" in svg and ">a<" in svg and ">b<" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": ([], [])})
        with pytest.raises(ValueError):
            line_chart({"a": ([1], [1, 2])})

    def test_constant_series(self):
        svg = line_chart({"flat": ([0, 1], [5.0, 5.0])})
        parse(svg)  # degenerate y-range must not divide by zero

    def test_single_point(self):
        parse(line_chart({"dot": ([3], [7.0])}))


class TestHeatmap:
    def test_basic(self, tmp_path):
        path = tmp_path / "hm.svg"
        svg = heatmap(
            [[0.0, 1.0], [1.0, 0.0]], labels=["r1", "r2"], path=path,
            title="H",
        )
        root = parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 5  # background + 4 cells
        assert "r1" in svg

    def test_nan_cells_grey(self):
        svg = heatmap([[float("nan"), 1.0]])
        assert "#eeeeee" in svg

    def test_invert_flips_shades(self):
        plain = heatmap([[0.0, 1.0]])
        flipped = heatmap([[0.0, 1.0]], invert=True)
        assert plain != flipped

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            heatmap([[1.0, 2.0], [1.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap([])


class TestBarChart:
    def test_basic(self, tmp_path):
        path = tmp_path / "bars.svg"
        svg = bar_chart(
            {"random": 0.72, "ours": 0.43}, title="Fig5", y_label="load",
            path=path,
        )
        parse(svg)
        assert "random" in svg and "ours" in svg
        assert "0.72" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_tallest_bar_spans_plot(self):
        svg = bar_chart({"a": 1.0, "b": 0.5})
        root = parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        heights = sorted(float(r.attrib["height"]) for r in rects[1:])
        assert heights[-1] > 1.9 * heights[0]
