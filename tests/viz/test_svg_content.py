"""Content-level assertions on rendered SVG charts."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import bar_chart, heatmap, line_chart


def polyline_points(svg: str) -> list[list[tuple[float, float]]]:
    root = ET.fromstring(svg)
    out = []
    for e in root.iter():
        if e.tag.endswith("polyline"):
            pts = [
                tuple(map(float, p.split(",")))
                for p in e.attrib["points"].split()
            ]
            out.append(pts)
    return out


class TestLineGeometry:
    def test_monotone_series_renders_monotone_pixels(self):
        svg = line_chart({"up": ([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])})
        (pts,) = polyline_points(svg)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        assert xs == sorted(xs)
        # SVG y grows downward: increasing data = decreasing pixel y
        assert ys == sorted(ys, reverse=True)

    def test_series_with_higher_values_sits_above(self):
        svg = line_chart(
            {"low": ([0, 1], [1.0, 1.0]), "high": ([0, 1], [9.0, 9.0])}
        )
        low, high = polyline_points(svg)
        assert high[0][1] < low[0][1]  # smaller pixel y = visually higher


class TestHeatmapGeometry:
    def test_extreme_cells_get_extreme_shades(self):
        svg = heatmap([[0.0, 100.0]])
        shades = [
            int(m.group(1))
            for m in re.finditer(r'fill="rgb\((\d+),\d+,\d+\)"', svg)
        ]
        assert max(shades) - min(shades) > 150

    def test_uniform_matrix_uniform_shade(self):
        svg = heatmap([[5.0, 5.0], [5.0, 5.0]])
        shades = {
            m.group(1)
            for m in re.finditer(r'fill="rgb\((\d+),\d+,\d+\)"', svg)
        }
        assert len(shades) == 1


class TestBarGeometry:
    def test_bar_heights_proportional(self):
        svg = bar_chart({"half": 0.5, "full": 1.0})
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        heights = sorted(float(r.attrib["height"]) for r in rects[1:])
        assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)
