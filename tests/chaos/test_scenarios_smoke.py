"""End-to-end smoke: the CI scenario set must hold every invariant.

The full matrix runs via ``make chaos``; this keeps the fastest,
highest-signal scenarios (healthy baseline, corrupt store, mid-migration
death, mid-fleet-pass death, shard death mid-cross-shard-reserve) inside
the regular pytest tier so a regression in the degradation paths fails
the ordinary test run too.
"""

from __future__ import annotations

import pytest

from repro.chaos.runner import format_report, run_scenarios, select_scenarios
from repro.chaos.scenarios import SCENARIOS, SMOKE_SCENARIOS


class TestSelection:
    def test_smoke_set_is_a_subset_of_the_matrix(self):
        assert set(SMOKE_SCENARIOS) <= set(SCENARIOS)
        assert len(SMOKE_SCENARIOS) == 8
        assert "shard_death_cross_reserve" in SMOKE_SCENARIOS
        assert "fleet_pass_partial_failure" in SMOKE_SCENARIOS
        assert "interleave_pipelined_burst" in SMOKE_SCENARIOS
        assert "interleave_shutdown_drain" in SMOKE_SCENARIOS
        assert "interleave_atomic_sections" in SMOKE_SCENARIOS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            select_scenarios(["baseline_no_faults", "nope"])

    def test_default_selection_is_everything(self):
        assert select_scenarios() == list(SCENARIOS)
        assert select_scenarios(smoke=True) == list(SMOKE_SCENARIOS)


# scenarios that assert shutdown/sanitizer behaviour rather than allocation
_NO_GRANT_SCENARIOS = frozenset(
    {"interleave_shutdown_drain", "interleave_atomic_sections"}
)


@pytest.mark.parametrize("name", SMOKE_SCENARIOS)
def test_smoke_scenario_holds_invariants(name):
    report = run_scenarios([name], seed=0)[0]
    detail = "; ".join(str(v) for v in report.checker.violations)
    assert report.ok, f"{name}: {detail}"
    if name not in _NO_GRANT_SCENARIOS:
        assert report.stats["grants"] >= 1
    rendered = format_report(report)
    assert "OK" in rendered and name in rendered


def test_reports_are_seed_deterministic():
    a = run_scenarios(["baseline_no_faults"], seed=7)[0]
    b = run_scenarios(["baseline_no_faults"], seed=7)[0]
    assert a.summary() == b.summary()
