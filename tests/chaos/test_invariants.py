"""Unit tests for the chaos invariant checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.invariants import (
    DEFAULT_QUALITY_BOUND,
    InvariantChecker,
    Violation,
)
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.monitor.store import StoreCorruptError
from repro.scheduler.leases import LeaseTable

from tests.core.test_array_equivalence import random_snapshot


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def checker() -> InvariantChecker:
    return InvariantChecker("unit")


class TestGuard:
    def test_success_passes_result_through(self, checker):
        assert checker.guard("x", lambda: 42) == 42
        assert checker.ok
        assert checker.stats["ok_calls"] == 1

    def test_typed_error_counts_as_degradation(self, checker):
        def fail():
            raise StoreCorruptError("k", "torn")

        assert checker.guard("x", fail) is None
        assert checker.ok  # degradation, not a violation
        assert checker.stats["typed_errors"] == 1
        assert checker.error_codes["StoreCorruptError"] == 1

    def test_raw_exception_is_a_violation(self, checker):
        def fail():
            raise KeyError("nope")

        assert checker.guard("x", fail) is None
        assert not checker.ok
        assert checker.violations[0].invariant == "no_unhandled_exception"
        assert "KeyError" in checker.violations[0].detail


class TestLeaseSafety:
    def test_clean_table_passes(self, checker):
        leases = LeaseTable(clock=FakeClock())
        leases.grant(("n0", "n1"), {"n0": 2, "n1": 2}, ttl_s=60.0)
        checker.check_no_double_grant(leases)
        checker.check_lease_accounting(leases, expected_active=1)
        assert checker.ok

    def test_accounting_mismatch_is_a_leak(self, checker):
        leases = LeaseTable(clock=FakeClock())
        leases.grant(("n0",), {"n0": 2}, ttl_s=60.0)
        checker.check_lease_accounting(leases, expected_active=0)
        assert not checker.ok
        assert checker.violations[0].invariant == "no_lease_leak"

    def test_double_grant_detected(self, checker):
        clock = FakeClock()
        leases = LeaseTable(clock=clock)
        leases.grant(("n0", "n1"), {"n0": 1, "n1": 1}, ttl_s=60.0)
        # Forge an overlapping lease directly: the public API refuses
        # overlap, which is exactly why the checker must catch a bypass.
        forged = leases.grant(("n2",), {"n2": 1}, ttl_s=60.0)
        object.__setattr__(forged, "nodes", ("n1", "n2"))
        checker.check_no_double_grant(leases)
        assert not checker.ok
        assert checker.violations[0].invariant == "no_double_grant"


class TestQualityBound:
    def _setup(self):
        truth = random_snapshot(np.random.default_rng(11), 8)
        request = AllocationRequest(n_processes=4, ppn=2)
        oracle = NetworkLoadAwarePolicy().allocate(truth, request).nodes
        return truth, request, oracle

    def test_oracle_vs_itself_is_ratio_one(self, checker):
        truth, request, oracle = self._setup()
        ratio = checker.check_quality(
            chosen=oracle, oracle=oracle, truth=truth, request=request
        )
        assert ratio == pytest.approx(1.0)
        assert checker.ok
        assert checker.stats["quality_checks"] == 1

    def test_within_bound_passes(self, checker):
        truth, request, oracle = self._setup()
        others = [n for n in truth.nodes if n not in oracle][:2]
        ratio = checker.check_quality(
            chosen=others, oracle=oracle, truth=truth, request=request,
            bound=float("inf"),
        )
        assert ratio >= 1.0 - 1e-9  # the oracle's pick is optimal on truth
        assert checker.ok

    def test_over_bound_is_a_violation(self, checker):
        truth, request, oracle = self._setup()
        others = [n for n in truth.nodes if n not in oracle][:2]
        checker.check_quality(
            chosen=others, oracle=oracle, truth=truth, request=request,
            bound=1.0 - 1e-6, label="probe",
        )
        # A distinct group cannot beat the optimum, so a bound below 1
        # must trip unless the scores tie exactly.
        assert not checker.ok or checker.stats["quality_checks"] == 1

    def test_unknown_nodes_count_as_stale_not_violations(self, checker):
        truth, request, oracle = self._setup()
        ratio = checker.check_quality(
            chosen=["ghost0", "ghost1"], oracle=oracle, truth=truth,
            request=request,
        )
        assert ratio == 1.0
        assert checker.ok
        assert checker.stats["stale_placements"] == 1


class TestReporting:
    def test_summary_shape(self, checker):
        checker.guard("x", lambda: 1)
        checker.violate("demo", "detail")
        summary = checker.summary()
        assert summary["ok"] is False
        assert summary["violations"] == ["[demo] detail"]
        assert summary["stats"]["ok_calls"] == 1

    def test_violation_str(self):
        assert str(Violation("inv", "why")) == "[inv] why"
        assert DEFAULT_QUALITY_BOUND > 1.0
