"""Scripted transport faults against a real BrokerService, no sockets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.broker.client import BrokerClient, BrokerError
from repro.broker.service import BrokerService
from repro.chaos.transport import (
    CLOSE,
    DIE_AFTER_SEND,
    DIE_BEFORE_SEND,
    GARBAGE,
    OK,
    REFUSE,
    ScriptedSocketFactory,
    dispatch_line,
)

from tests.core.test_array_equivalence import random_snapshot


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def service() -> BrokerService:
    snap = random_snapshot(np.random.default_rng(77), 8)
    return BrokerService(lambda: snap, clock=FakeClock(), default_ttl_s=600.0)


def _client(factory: ScriptedSocketFactory, **kwargs) -> BrokerClient:
    defaults = dict(
        connect_retries=2,
        retry_delay_s=0.0,
        transport_retries=1,
        backoff_s=0.0,
        socket_factory=factory,
        sleep=lambda _s: None,
    )
    defaults.update(kwargs)
    return BrokerClient("fake", 0, **defaults)


class TestDispatchLine:
    def test_unparseable_line_is_protocol_error(self, service):
        raw = dispatch_line(service, b"not json\n")
        assert b'"ok": false' in raw or b'"ok":false' in raw.replace(b" ", b"")
        assert service.metrics.protocol_errors == 1

    def test_allocate_round_trip(self, service):
        line = (
            b'{"v": 1, "id": "t1", "op": "allocate",'
            b' "params": {"n": 4, "ppn": 2}}\n'
        )
        raw = dispatch_line(service, line)
        assert b"lease_id" in raw
        assert len(service.leases.active()) == 1

    def test_internal_errors_become_typed_responses(self, service):
        def boom() -> None:
            raise RuntimeError("kaboom")

        service._snapshots = boom
        line = (
            b'{"v": 1, "id": "t2", "op": "allocate",'
            b' "params": {"n": 2, "ppn": 2}}\n'
        )
        raw = dispatch_line(service, line)
        assert b"INTERNAL" in raw  # never a raised exception


class TestScriptedBehaviors:
    def test_ok_script_serves_real_grants(self, service):
        factory = ScriptedSocketFactory(service, [OK])
        with _client(factory) as client:
            grant = client.allocate(4, ppn=2)
        assert len(grant.nodes) == 2
        assert factory.dispatched == 1

    def test_refuse_consumed_at_connect(self, service):
        factory = ScriptedSocketFactory(service, [REFUSE, OK])
        with _client(factory) as client:
            status = client.status()
        assert status["leases"]["active"] == 0
        assert factory.connections == 1  # second attempt got through

    def test_die_before_send_never_reaches_server(self, service):
        factory = ScriptedSocketFactory(
            service, [DIE_BEFORE_SEND, DIE_BEFORE_SEND]
        )
        client = _client(factory, transport_retries=0)
        with pytest.raises(BrokerError) as err:
            client.status()
        assert err.value.code == "CONNECT"
        assert factory.dispatched == 0
        assert len(service.leases.active()) == 0

    def test_die_after_send_has_server_side_effect(self, service):
        factory = ScriptedSocketFactory(service, [DIE_AFTER_SEND])
        client = _client(factory, transport_retries=0)
        with pytest.raises(BrokerError):
            client.allocate(4, ppn=2)
        # The response was lost but the grant happened — the dangerous case.
        assert factory.dispatched == 1
        assert len(service.leases.active()) == 1

    def test_garbage_response_maps_to_internal(self, service):
        factory = ScriptedSocketFactory(service, [GARBAGE])
        client = _client(factory, transport_retries=0)
        with pytest.raises(BrokerError) as err:
            client.status()
        assert err.value.code == "INTERNAL"

    def test_close_maps_to_connect_error(self, service):
        factory = ScriptedSocketFactory(service, [CLOSE])
        client = _client(factory, transport_retries=0)
        with pytest.raises(BrokerError) as err:
            client.status()
        assert err.value.code == "CONNECT"

    def test_exhausted_script_defaults_to_ok(self, service):
        factory = ScriptedSocketFactory(service, [])
        with _client(factory) as client:
            client.status()
            client.status()
        assert factory.dispatched == 2

    def test_unknown_behavior_rejected(self, service):
        with pytest.raises(ValueError, match="unknown behaviors"):
            ScriptedSocketFactory(service, ["explode"])
