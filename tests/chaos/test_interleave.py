"""The interleaving fuzzer and atomic-section assertions.

The headline test reproduces the literal pre-fix ``BrokerServer.stop()``
bug — draining a *live* ``self._tasks`` list then ``clear()`` — from a
seed, deterministically, and shows the snapshot-swap fix surviving the
same seed.  The rest pins the sanitizer primitives themselves: seeded
determinism of the loop, sweep bookkeeping, and both atomic-section
guards tripping exactly when they should.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.chaos.interleave import (
    AtomicViolation,
    InterleavingLoop,
    atomic_between_awaits,
    no_interleaving,
    run_interleaved,
    sweep_seeds,
)


class MiniServer:
    """Just enough of the broker server to host the stop() race."""

    def __init__(self):
        self.tasks = []

    def spawn(self, delay_s=0.05):
        async def background():
            await asyncio.sleep(delay_s)

        task = asyncio.ensure_future(background())
        self.tasks.append(task)
        return task

    async def stop_prefix(self):
        # the literal pre-fix drain: cancel what is registered *now*,
        # then await the live list — a task registered mid-drain gets
        # awaited to natural completion without ever being cancelled
        # (with a real long-lived daemon that is a shutdown hang)
        for task in self.tasks:
            task.cancel()
        for task in self.tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self.tasks.clear()

    async def stop_fixed(self):
        # the shipped fix: snapshot-swap until the registry stays empty,
        # so every drained task was cancelled by the same pass first
        while self.tasks:
            tasks, self.tasks = self.tasks, []
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass


def shutdown_workload(stop):
    """A stop() racing a late registration, parameterized by the drain.

    Fails if any background task ran to *natural* completion: a correct
    shutdown cancels everything it drains, so a task stop() simply
    waited out is the hang-class bug (the 0.05 s sleep stands in for a
    daemon that would really sleep for hours).
    """

    async def main():
        server = MiniServer()
        spawned = [server.spawn()]

        async def late_register():
            await asyncio.sleep(0)
            spawned.append(server.spawn())

        registrar = asyncio.ensure_future(late_register())
        await stop(server)
        await registrar
        await stop(server)  # second sweep, as a real supervisor would
        hung = sum(1 for t in spawned if t.done() and not t.cancelled())
        if hung:
            raise AssertionError(
                f"stop() waited out {hung} task(s) instead of cancelling"
            )

    return main


class TestPrefixRaceReproduction:
    def test_prefix_stop_fails_and_fix_survives_the_same_seed(self):
        failures = sweep_seeds(
            shutdown_workload(MiniServer.stop_prefix), seeds=range(8)
        )
        assert failures, "no seed reached the pre-fix stop() race"
        assert len(failures) < 8, "race fired FIFO-independently of the seed"
        seed, error = sorted(failures.items())[0]
        assert isinstance(error, AssertionError)
        # deterministic: the same seed replays the same failure
        with pytest.raises(AssertionError, match="instead of cancelling"):
            run_interleaved(shutdown_workload(MiniServer.stop_prefix), seed)
        # and the snapshot-swap fix is clean under that exact schedule
        run_interleaved(shutdown_workload(MiniServer.stop_fixed), seed)

    def test_fixed_stop_survives_the_whole_sweep(self):
        failures = sweep_seeds(
            shutdown_workload(MiniServer.stop_fixed), seeds=range(8)
        )
        assert failures == {}


class TestDeterminism:
    @staticmethod
    def completion_order():
        order = []

        async def worker(name):
            for _ in range(3):
                await asyncio.sleep(0)
            order.append(name)

        async def main():
            await asyncio.gather(*(worker(i) for i in range(6)))
            return tuple(order)

        return main

    def test_same_seed_same_schedule(self):
        first = run_interleaved(self.completion_order(), seed=11)
        second = run_interleaved(self.completion_order(), seed=11)
        assert first == second

    def test_some_seed_deviates_from_fifo(self):
        fifo = tuple(range(6))
        orders = {
            run_interleaved(self.completion_order(), seed=s)
            for s in range(8)
        }
        assert any(order != fifo for order in orders)

    def test_reorder_counter_counts_permuted_ticks(self):
        async def main():
            await asyncio.gather(*(asyncio.sleep(0) for _ in range(4)))
            return asyncio.get_running_loop()

        loop = run_interleaved(main, seed=3)
        assert isinstance(loop, InterleavingLoop)
        assert loop.reorders >= 1

    def test_loop_is_installed_then_cleared(self):
        async def main():
            return asyncio.get_event_loop() is asyncio.get_running_loop()

        assert run_interleaved(main, seed=0) is True
        with pytest.raises(RuntimeError):
            asyncio.get_event_loop()


class TestSweep:
    def test_clean_workload_yields_no_failures(self):
        async def main():
            await asyncio.sleep(0)

        assert sweep_seeds(lambda: main(), seeds=range(4)) == {}

    def test_failures_map_seed_to_exception(self):
        async def boom():
            await asyncio.sleep(0)
            raise ValueError("kaboom")

        failures = sweep_seeds(lambda: boom(), seeds=[0, 1])
        assert set(failures) == {0, 1}
        assert all(isinstance(e, ValueError) for e in failures.values())

    def test_timeout_is_a_finding_not_a_hang(self):
        async def stuck():
            await asyncio.sleep(3600)

        failures = sweep_seeds(lambda: stuck(), seeds=[0], timeout_s=0.1)
        assert isinstance(failures[0], asyncio.TimeoutError)


class TestAtomicBetweenAwaitsAsync:
    def test_non_yielding_body_passes_and_returns(self):
        @atomic_between_awaits
        async def section():
            return 41 + 1

        assert run_interleaved(section, seed=0) == 42

    def test_awaiting_a_done_future_does_not_yield(self):
        @atomic_between_awaits
        async def section():
            fut = asyncio.get_running_loop().create_future()
            fut.set_result("done")
            return await fut

        assert run_interleaved(section, seed=0) == "done"

    def test_yielding_body_raises(self):
        @atomic_between_awaits
        async def section():
            await asyncio.sleep(0)

        with pytest.raises(AtomicViolation, match="yielded control"):
            run_interleaved(section, seed=0)


class TestAtomicBetweenAwaitsSync:
    def test_plain_call_and_recursion_pass(self):
        calls = []

        @atomic_between_awaits
        def section(obj, depth):
            calls.append(depth)
            if depth:
                section(obj, depth - 1)

        section(object(), 2)
        assert calls == [2, 1, 0]

    def test_concurrent_entry_from_another_thread_raises(self):
        entered = threading.Event()
        release = threading.Event()

        @atomic_between_awaits
        def section(obj):
            entered.set()
            release.wait(timeout=2.0)

        target = object()
        worker = threading.Thread(target=section, args=(target,))
        worker.start()
        try:
            assert entered.wait(timeout=2.0)
            with pytest.raises(AtomicViolation, match="atomic between awaits"):
                section(target)
        finally:
            release.set()
            worker.join(timeout=2.0)

    def test_distinct_instances_do_not_conflict(self):
        entered = threading.Event()
        release = threading.Event()

        @atomic_between_awaits
        def section(obj):
            entered.set()
            release.wait(timeout=2.0)

        worker = threading.Thread(target=section, args=(object(),))
        worker.start()
        try:
            assert entered.wait(timeout=2.0)
            section(object())  # different receiver: no violation
        finally:
            release.set()
            worker.join(timeout=2.0)


class TestNoInterleaving:
    def test_same_task_nesting_is_allowed(self):
        monitor = object()

        async def main():
            async with no_interleaving(monitor, "outer"):
                async with no_interleaving(monitor, "inner"):
                    pass
            return True

        assert run_interleaved(main, seed=0) is True

    def test_cross_task_overlap_raises(self):
        monitor = object()

        async def section():
            async with no_interleaving(monitor, "memo-update"):
                await asyncio.sleep(0)
                await asyncio.sleep(0)

        async def main():
            results = await asyncio.gather(
                section(), section(), return_exceptions=True
            )
            return sum(isinstance(r, AtomicViolation) for r in results)

        assert run_interleaved(main, seed=0) >= 1

    def test_section_reusable_after_clean_exit(self):
        monitor = object()

        async def main():
            for _ in range(3):
                async with no_interleaving(monitor):
                    await asyncio.sleep(0)
            return True

        assert run_interleaved(main, seed=0) is True
