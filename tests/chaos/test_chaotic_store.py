"""Unit tests for the fault-injecting store wrapper."""

from __future__ import annotations

import math

import pytest

from repro.chaos.store import (
    ChaosRule,
    ChaoticStore,
    poison_huge,
    poison_nan,
    poison_negative,
)
from repro.monitor.store import InMemoryStore, StoreCorruptError


@pytest.fixture
def store() -> ChaoticStore:
    inner = InMemoryStore()
    chaotic = ChaoticStore(inner)
    chaotic.put("nodestate/n0", {"x": 1.0}, 10.0)
    chaotic.put("nodestate/n1", {"x": 2.0}, 20.0)
    chaotic.put("livehosts", ["n0", "n1"], 30.0)
    return chaotic


class TestRuleValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosRule(mode="melt", pattern="*")

    def test_poison_requires_mutator(self):
        with pytest.raises(ValueError, match="mutate"):
            ChaosRule(mode="poison", pattern="*")

    def test_glob_matching(self):
        rule = ChaosRule(mode="missing", pattern="nodestate/*")
        assert rule.matches("nodestate/n3")
        assert not rule.matches("livehosts")


class TestFaultModes:
    def test_corrupt_raises_typed_error_and_counts(self, store):
        rule = store.corrupt("nodestate/n0")
        with pytest.raises(StoreCorruptError):
            store.get("nodestate/n0")
        assert store.get("nodestate/n1") == (20.0, {"x": 2.0})
        assert store.corrupt_served == 1
        assert rule.hits == 1

    def test_missing_hides_key_from_get_and_keys(self, store):
        store.vanish("nodestate/*")
        assert store.get("nodestate/n0") is None
        assert store.get("nodestate/n1") is None
        assert store.keys() == ["livehosts"]
        assert store.missing_served == 2

    def test_freeze_drops_writes(self, store):
        store.freeze("livehosts")
        store.put("livehosts", ["n0"], 99.0)
        assert store.get("livehosts") == (30.0, ["n0", "n1"])
        assert store.writes_frozen == 1
        # Unfrozen keys still write through.
        store.put("nodestate/n0", {"x": 3.0}, 99.0)
        assert store.value("nodestate/n0") == {"x": 3.0}

    def test_skew_shifts_read_timestamps_only(self, store):
        store.skew("nodestate/n0", 500.0)
        t, _ = store.get("nodestate/n0")
        assert t == 510.0
        assert store.times_skewed == 1
        # The record itself is untouched.
        assert store.inner.get("nodestate/n0")[0] == 10.0

    def test_poison_applies_mutator_to_reads(self, store):
        store.poison("nodestate/*", poison_negative)
        _, value = store.get("nodestate/n0")
        assert value == {"x": -2.0}
        assert store.values_poisoned == 1


class TestRuleLifecycle:
    def test_remove_restores_behavior(self, store):
        rule = store.corrupt("nodestate/n0")
        with pytest.raises(StoreCorruptError):
            store.get("nodestate/n0")
        store.remove(rule)
        assert store.get("nodestate/n0") == (10.0, {"x": 1.0})

    def test_remove_is_idempotent(self, store):
        rule = store.vanish("livehosts")
        store.remove(rule)
        store.remove(rule)  # second removal must not raise
        assert store.get("livehosts") is not None

    def test_clear_drops_all_rules(self, store):
        store.corrupt("nodestate/*")
        store.vanish("livehosts")
        assert len(store.active_rules()) == 2
        store.clear()
        assert store.active_rules() == ()
        assert store.get("nodestate/n0") is not None


class TestPoisonHelpers:
    def test_poison_nan_hits_numbers_recursively(self):
        rec = {"a": 1.5, "nested": {"b": [2.0, 3]}, "s": "keep", "flag": True}
        out = poison_nan("k", rec)
        assert math.isnan(out["a"])
        assert math.isnan(out["nested"]["b"][0])
        assert math.isnan(out["nested"]["b"][1])  # ints are numbers too
        assert out["s"] == "keep"
        assert out["flag"] is True  # bool is not a float casualty

    def test_poison_negative_and_huge(self):
        assert poison_negative("k", {"a": 2.0})["a"] == -3.0
        assert poison_huge("k", {"a": 2.0})["a"] > 1e12

    def test_poison_does_not_mutate_original(self):
        rec = {"a": 1.0}
        poison_nan("k", rec)
        assert rec["a"] == 1.0
