"""Tests for rank placement."""

import pytest

from repro.core.policies import Allocation, AllocationRequest
from repro.simmpi.placement import Placement


class TestPlacement:
    def test_from_allocation_block_order(self):
        req = AllocationRequest(6, ppn=4)
        alloc = Allocation(
            "x", ("a", "b"), {"a": 4, "b": 2}, req, 0.0
        )
        p = Placement.from_allocation(alloc)
        assert p.node_of_rank == ("a", "a", "a", "a", "b", "b")

    def test_block_constructor(self):
        p = Placement.block(["a", "b", "c"], ppn=2, n_processes=5)
        assert p.node_of_rank == ("a", "a", "b", "b", "c")

    def test_block_insufficient_nodes(self):
        with pytest.raises(ValueError):
            Placement.block(["a"], ppn=2, n_processes=5)

    def test_block_invalid_ppn(self):
        with pytest.raises(ValueError):
            Placement.block(["a"], ppn=0, n_processes=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Placement(node_of_rank=())

    def test_accessors(self):
        p = Placement(("a", "a", "b"))
        assert p.n_ranks == 3
        assert p.nodes == ["a", "b"]
        assert p.node(2) == "b"
        assert p.ranks_on("a") == [0, 1]
        assert p.procs_per_node() == {"a": 2, "b": 1}
        assert p.colocated(0, 1)
        assert not p.colocated(0, 2)
