"""Tests for the point-to-point message cost model."""

import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.simmpi.costmodel import (
    CommCostConfig,
    CommPhase,
    Message,
    MessageCostModel,
)
from repro.simmpi.placement import Placement


@pytest.fixture
def net():
    _, topo = uniform_cluster(6, nodes_per_switch=3)
    return NetworkModel(topo)


@pytest.fixture
def model(net):
    return MessageCostModel(net)


class TestMessage:
    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -1.0)


class TestCommCostConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"intranode_bandwidth_mbs": 0.0},
            {"intranode_latency_us": -1.0},
            {"software_overhead_us": -1.0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            CommCostConfig(**kw)


class TestPhaseTime:
    def test_empty_phase_free(self, model):
        p = Placement(("node1", "node2"))
        assert model.phase_time_s(CommPhase.of([]), p) == 0.0

    def test_intranode_cheaper_than_internode(self, model):
        intra = Placement(("node1", "node1"))
        inter = Placement(("node1", "node2"))
        phase = CommPhase.of([Message(0, 1, 0.1)])
        assert model.phase_time_s(phase, intra) < model.phase_time_s(phase, inter)

    def test_phase_is_max_not_sum(self, model):
        p = Placement(("node1", "node2", "node4", "node5"))
        short = CommPhase.of([Message(0, 1, 0.001)])
        both = CommPhase.of([Message(0, 1, 0.001), Message(2, 3, 0.001)])
        # messages on disjoint paths run concurrently: same phase time
        assert model.phase_time_s(both, p) == pytest.approx(
            model.phase_time_s(short, p), rel=0.05
        )

    def test_sharing_a_nic_slows_messages(self, model):
        p = Placement(("node1", "node2", "node3"))
        one = CommPhase.of([Message(0, 1, 5.0)])
        two = CommPhase.of([Message(0, 1, 5.0), Message(0, 2, 5.0)])
        assert model.phase_time_s(two, p) > model.phase_time_s(one, p)

    def test_background_traffic_slows_phase(self, net, model):
        p = Placement(("node1", "node2"))
        phase = CommPhase.of([Message(0, 1, 5.0)])
        idle = model.phase_time_s(phase, p)
        net.add_flow(Flow("node1", "node3", 100.0))
        assert model.phase_time_s(phase, p) > idle

    def test_job_flows_removed_after_phase(self, net, model):
        p = Placement(("node1", "node2"))
        model.phase_time_s(CommPhase.of([Message(0, 1, 5.0)]), p)
        assert len(net.flows) == 0

    def test_latency_uses_background_congestion_only(self, net, model):
        """The phase's own flows must not explode the latency term."""
        p = Placement(tuple(f"node{i}" for i in (1, 2, 3)))
        msgs = [Message(i, j, 0.001) for i in range(3) for j in range(3) if i != j]
        t = model.phase_time_s(CommPhase.of(msgs), p)
        # with idle background, time stays near base latency (< 1 ms)
        assert t < 1e-3

    def test_endpoint_load_throttles_rate(self, net, model):
        p = Placement(("node1", "node2"))
        phase = CommPhase.of([Message(0, 1, 10.0)])
        idle = model.phase_time_s(phase, p)
        net.set_node_load_provider(lambda n: 2.0)
        assert model.phase_time_s(phase, p) > idle


class TestPointToPoint:
    def test_same_node_shared_memory(self, model):
        t = model.point_to_point_time_s("node1", "node1", 1.0)
        cfg = model.config
        expected = (
            (cfg.intranode_latency_us + cfg.software_overhead_us) * 1e-6
            + 1.0 / cfg.intranode_bandwidth_mbs
        )
        assert t == pytest.approx(expected)

    def test_volume_scales_time(self, model):
        t1 = model.point_to_point_time_s("node1", "node2", 1.0)
        t10 = model.point_to_point_time_s("node1", "node2", 10.0)
        assert t10 > t1
