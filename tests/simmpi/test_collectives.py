"""Tests for collective cost models."""

import math

import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.simmpi.collectives import allreduce_time_s, barrier_time_s, bcast_time_s
from repro.simmpi.placement import Placement


@pytest.fixture
def net():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return NetworkModel(topo)


class TestAllreduce:
    def test_single_rank_free(self, net):
        p = Placement(("node1",))
        assert allreduce_time_s(net, p, 1.0) == 0.0

    def test_rounds_grow_logarithmically(self, net):
        # Same 2-node group: 2 ranks -> 1 round, 8 ranks -> 3 rounds.
        p2 = Placement(("node1", "node2"))
        p8 = Placement(("node1", "node2") * 4)
        t2 = allreduce_time_s(net, p2, 0.0)
        t8 = allreduce_time_s(net, p8, 0.0)
        assert t8 == pytest.approx(3 * t2)

    def test_message_size_adds_transfer_time(self, net):
        p = Placement(("node1", "node2"))
        small = allreduce_time_s(net, p, 8e-6)
        big = allreduce_time_s(net, p, 10.0)
        assert big > small

    def test_single_node_group_uses_no_network(self, net):
        p = Placement(("node1", "node1", "node1", "node1"))
        t = allreduce_time_s(net, p, 1.0)
        # 2 rounds of pure software overhead, no network term
        assert t == pytest.approx(2 * 20e-6)

    def test_congestion_slows_collective(self, net):
        p = Placement(("node1", "node2", "node5", "node6"))
        idle = allreduce_time_s(net, p, 8e-6)
        net.add_flow(Flow("node1", "node5", math.inf))
        assert allreduce_time_s(net, p, 8e-6) > idle


class TestBcastAndBarrier:
    def test_bcast_positive(self, net):
        p = Placement(("node1", "node2", "node3"))
        assert bcast_time_s(net, p, 1.0) > 0.0

    def test_barrier_is_zero_size_allreduce(self, net):
        p = Placement(("node1", "node2", "node3"))
        assert barrier_time_s(net, p) == pytest.approx(
            allreduce_time_s(net, p, 0.0)
        )

    def test_single_rank_free(self, net):
        p = Placement(("node1",))
        assert bcast_time_s(net, p, 1.0) == 0.0
        assert barrier_time_s(net, p) == 0.0
