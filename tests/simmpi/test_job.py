"""Tests for the SimJob BSP executor."""

import pytest

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.core.weights import TradeOff
from repro.net.model import NetworkModel
from repro.simmpi.costmodel import CommPhase, Message
from repro.simmpi.job import ContentionConfig, SimJob
from repro.simmpi.placement import Placement


class ToyApp(AppModel):
    """Two-rank app with known compute and one message per step."""

    name = "toy"

    def __init__(self, steps=10, gcycles=1.0, volume=0.0):
        self._steps = steps
        self._gc = gcycles
        self._vol = volume

    def schedule(self, n_ranks):
        phases = ()
        if n_ranks > 1 and self._vol >= 0:
            phases = (CommPhase.of([Message(0, n_ranks - 1, self._vol)]),)
        return [
            StepBlock(
                StepDemand(compute_gcycles=self._gc, phases=phases),
                self._steps,
            )
        ]

    def recommended_tradeoff(self):
        return TradeOff(0.5, 0.5)


@pytest.fixture
def env():
    specs, topo = uniform_cluster(4, nodes_per_switch=2)
    return Cluster(specs, topo), NetworkModel(topo)


class TestContention:
    def test_idle_node_no_slowdown_beyond_one(self, env):
        cluster, net = env
        job = SimJob(ToyApp(), Placement(("node1", "node2")), cluster, net)
        assert job.rank_slowdown("node1") == pytest.approx(1.0)

    def test_soft_interference_scales_with_load(self, env):
        cluster, net = env
        cluster.state("node1").cpu_load = 6.0
        job = SimJob(
            ToyApp(),
            Placement(("node1", "node2")),
            cluster,
            net,
            contention=ContentionConfig(soft_interference=1.0),
        )
        assert job.rank_slowdown("node1") == pytest.approx(1.5)  # 1 + 6/12

    def test_hard_timesharing_when_oversubscribed(self, env):
        cluster, net = env
        cluster.state("node1").cpu_load = 20.0
        p = Placement(("node1",) * 4 + ("node2",) * 4)
        job = SimJob(
            ToyApp(), p, cluster, net,
            contention=ContentionConfig(soft_interference=0.0),
        )
        assert job.rank_slowdown("node1") == pytest.approx(2.0)  # (20+4)/12

    def test_compute_time_uses_frequency(self, env):
        cluster, net = env
        job = SimJob(ToyApp(), Placement(("node1", "node2")), cluster, net)
        assert job.compute_time_s("node1", 4.6) == pytest.approx(1.0)


class TestRun:
    def test_totals_decompose(self, env):
        cluster, net = env
        job = SimJob(
            ToyApp(steps=5, gcycles=2.0, volume=1.0),
            Placement(("node1", "node2")),
            cluster,
            net,
        )
        r = job.run()
        assert r.total_time_s == pytest.approx(r.compute_time_s + r.comm_time_s)
        assert r.steps == 5
        assert 0.0 < r.comm_fraction < 1.0

    def test_slowest_node_gates_compute(self, env):
        cluster, net = env
        cluster.state("node2").cpu_load = 24.0
        fast = SimJob(
            ToyApp(volume=0.0), Placement(("node1", "node3")), cluster, net
        ).run()
        slow = SimJob(
            ToyApp(volume=0.0), Placement(("node1", "node2")), cluster, net
        ).run()
        assert slow.compute_time_s > fast.compute_time_s

    def test_loaded_cluster_slows_execution(self, env):
        cluster, net = env
        p = Placement(("node1", "node2"))
        before = SimJob(ToyApp(volume=0.5), p, cluster, net).run()
        for n in cluster.names:
            cluster.state(n).cpu_load = 18.0
        net.set_node_load_provider(
            lambda n: cluster.state(n).cpu_load / cluster.spec(n).cores
        )
        after = SimJob(ToyApp(volume=0.5), p, cluster, net).run()
        assert after.total_time_s > before.total_time_s

    def test_unknown_node_rejected(self, env):
        cluster, net = env
        with pytest.raises(KeyError):
            SimJob(ToyApp(), Placement(("ghost",)), cluster, net)

    def test_report_details(self, env):
        cluster, net = env
        r = SimJob(ToyApp(), Placement(("node1", "node2")), cluster, net).run()
        assert "max_slowdown" in r.details
        assert r.app == "toy"
        assert r.n_ranks == 2
