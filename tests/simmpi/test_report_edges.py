"""Edge-case tests for execution reports and zero-work demands."""

import pytest

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.core.weights import TradeOff
from repro.net.model import NetworkModel
from repro.simmpi.costmodel import CommPhase, Message
from repro.simmpi.job import ExecutionReport, SimJob
from repro.simmpi.placement import Placement


class NoOpApp(AppModel):
    name = "noop"

    def schedule(self, n_ranks):
        return [StepBlock(StepDemand(compute_gcycles=0.0), 1)]

    def recommended_tradeoff(self):
        return TradeOff(0.5, 0.5)


class TestExecutionReportEdges:
    def test_zero_time_comm_fraction(self):
        r = ExecutionReport(
            app="x", n_ranks=1, nodes=("a",), total_time_s=0.0,
            compute_time_s=0.0, comm_time_s=0.0, steps=0,
        )
        assert r.comm_fraction == 0.0

    def test_noop_app_runs_instantly(self):
        specs, topo = uniform_cluster(2, nodes_per_switch=2)
        cluster, net = Cluster(specs, topo), NetworkModel(topo)
        r = SimJob(NoOpApp(), Placement(("node1", "node2")), cluster, net).run()
        assert r.total_time_s == 0.0
        assert r.steps == 1


class TestZeroVolumeMessages:
    def test_zero_volume_costs_latency_only(self):
        specs, topo = uniform_cluster(2, nodes_per_switch=2)
        cluster, net = Cluster(specs, topo), NetworkModel(topo)
        from repro.simmpi.costmodel import MessageCostModel

        model = MessageCostModel(net)
        p = Placement(("node1", "node2"))
        t = model.phase_time_s(CommPhase.of([Message(0, 1, 0.0)]), p)
        # ~base latency + overhead, well under a millisecond
        assert 0.0 < t < 1e-3

    def test_allowed_in_step_demand(self):
        d = StepDemand(compute_gcycles=0.0, allreduce_mb=(0.0,))
        assert d.allreduce_mb == (0.0,)

    def test_negative_alltoall_rejected(self):
        with pytest.raises(ValueError):
            StepDemand(compute_gcycles=0.0, alltoall_mb=(-1.0,))
