"""Tests for the group-extreme helper behind collective pricing."""

import math

import pytest

from repro.cluster.topology import uniform_cluster
from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.simmpi.collectives import _group_network_extremes


@pytest.fixture
def net():
    _, topo = uniform_cluster(8, nodes_per_switch=4)
    return NetworkModel(topo)


class TestGroupExtremes:
    def test_single_node_trivial(self, net):
        lat, bw = _group_network_extremes(net, ["node1"])
        assert lat == 0.0 and math.isinf(bw)

    def test_duplicates_collapse(self, net):
        a = _group_network_extremes(net, ["node1", "node2", "node1"])
        b = _group_network_extremes(net, ["node1", "node2"])
        assert a == b

    def test_worst_latency_is_cross_switch(self, net):
        lat, _ = _group_network_extremes(net, ["node1", "node2", "node5"])
        cross = net.latency_us("node1", "node5")
        assert lat == pytest.approx(cross)

    def test_worst_bandwidth_reflects_congestion(self, net):
        _, idle_bw = _group_network_extremes(net, ["node1", "node2"])
        net.add_flow(Flow("node1", "node3", 100.0))
        _, busy_bw = _group_network_extremes(net, ["node1", "node2"])
        assert busy_bw < idle_bw

    def test_extremes_monotone_in_group_size(self, net):
        """Adding a member can only worsen (or keep) the extremes."""
        small_lat, small_bw = _group_network_extremes(net, ["node1", "node2"])
        big_lat, big_bw = _group_network_extremes(
            net, ["node1", "node2", "node7"]
        )
        assert big_lat >= small_lat
        assert big_bw <= small_bw
