"""Tests for benchmark-scale configuration (REPRO_FULL / REPRO_SMOKE)."""

import pytest

from benchmarks.conftest import grid_params, scale


class TestScaleSelection:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_SMOKE", raising=False)
        assert scale() == "default"

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.delenv("REPRO_SMOKE", raising=False)
        assert scale() == "full"

    def test_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SMOKE", "1")
        assert scale() == "smoke"


class TestGridParams:
    def test_full_matches_paper_protocol(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        md = grid_params("minimd")
        fe = grid_params("minife")
        assert md["proc_counts"] == (8, 16, 32, 64)
        assert md["sizes"] == (8, 16, 24, 32, 40, 48)
        assert md["repeats"] == 5  # "repeated this for 5 times"
        assert fe["proc_counts"] == (8, 16, 32, 48)
        assert fe["sizes"] == (48, 96, 144, 256, 384)
        assert fe["repeats"] == 5

    def test_default_covers_full_grid_fewer_repeats(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_SMOKE", raising=False)
        md = grid_params("minimd")
        assert md["sizes"] == (8, 16, 24, 32, 40, 48)
        assert md["repeats"] < 5

    def test_smoke_is_reduced(self, monkeypatch):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        md = grid_params("minimd")
        assert len(md["sizes"]) < 6

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            grid_params("hpl")
