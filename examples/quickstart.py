#!/usr/bin/env python
"""Quickstart: allocate nodes for an MPI job on a simulated shared cluster.

Builds the paper's 60-node evaluation environment (background workload +
resource monitor), asks the broker for 32 processes at 4 per node using
the network-and-load-aware policy, and prices a miniMD run on the chosen
nodes.

Run:  python examples/quickstart.py
"""

from repro import AllocationRequest, MINIMD_TRADEOFF, paper_scenario
from repro.apps import MiniMD
from repro.simmpi import Placement, SimJob


def main() -> None:
    # One seed drives every stochastic component (workload, monitor
    # jitter, policies) — rerunning reproduces this output exactly.
    print("building the shared cluster (60 nodes, 30 min warm-up)...")
    scenario = paper_scenario(seed=7, warmup_s=1800.0)

    broker = scenario.broker()
    request = AllocationRequest(
        n_processes=32,
        ppn=4,  # the paper's experiments run 4 processes per node
        tradeoff=MINIMD_TRADEOFF,  # alpha=0.3 compute, beta=0.7 network
    )
    result = broker.request(request)
    allocation = result.allocation

    print(f"\npolicy: {allocation.policy}")
    print(f"allocation decided in {result.overhead_ms:.2f} ms")
    print("hostfile:")
    print(allocation.hostfile())

    job = SimJob(
        MiniMD(s=16),  # 16K atoms
        Placement.from_allocation(allocation),
        scenario.cluster,
        scenario.network,
    )
    report = job.run()
    print(f"miniMD s=16 on 32 processes: {report.total_time_s:.2f} s "
          f"({report.comm_fraction * 100:.0f} % communication)")

    # Compare against a user picking nodes at random.
    random_alloc = broker.request(
        request, policy="random", rng=scenario.streams.child("demo")
    ).allocation
    random_report = SimJob(
        MiniMD(s=16),
        Placement.from_allocation(random_alloc),
        scenario.cluster,
        scenario.network,
    ).run()
    gain = (1 - report.total_time_s / random_report.total_time_s) * 100
    print(f"random allocation: {random_report.total_time_s:.2f} s "
          f"-> the broker saves {gain:.0f} %")


if __name__ == "__main__":
    main()
