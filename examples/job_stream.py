#!/usr/bin/env python
"""A day of MPI jobs: the broker serving a queue.

Submits a stream of miniMD/miniFE jobs to the scheduling layer on the
shared cluster and prints each job's placement, wait and runtime, then
the stream totals — the deployment view of the paper's broker.

Run:  python examples/job_stream.py
"""

import numpy as np

from repro import paper_scenario
from repro.apps import MiniFE, MiniMD
from repro.apps.minife import MiniFEConfig
from repro.apps.minimd import MiniMDConfig
from repro.scheduler import ClusterScheduler, JobRequest


def main() -> None:
    scenario = paper_scenario(seed=21, warmup_s=1800.0)
    scheduler = ClusterScheduler(
        scenario.engine,
        scenario.workload,
        scenario.network,
        scenario.snapshot,
        rng=scenario.streams.child("stream"),
    )

    rng = np.random.default_rng(5)
    base = scenario.engine.now
    t = 0.0
    jobs = []
    for k in range(8):
        t += float(rng.exponential(30.0))
        if k % 2 == 0:
            app = MiniMD(16, MiniMDConfig(timesteps=500))
        else:
            app = MiniFE(96, config=MiniFEConfig(cg_iterations=100))
        procs = int(rng.choice([16, 24, 32]))
        jobs.append(
            scheduler.submit(
                JobRequest(app=app, n_processes=procs, ppn=4,
                           submit_time=base + t)
            )
        )
        print(f"submitted job {k}: {app.name} x{procs} at t+{t:.0f}s")

    stats = scheduler.drain()
    print()
    print(f"{'job':>4s} {'app':>7s} {'procs':>5s} {'wait':>7s} "
          f"{'run':>7s} {'nodes'}")
    for k, job in enumerate(jobs):
        assert job.allocation is not None
        print(
            f"{k:>4d} {job.request.app.name:>7s} "
            f"{job.request.n_processes:>5d} {job.wait_s:7.1f} "
            f"{job.execution_time_s:7.2f} "
            f"{','.join(job.allocation.nodes[:4])}..."
        )
    print()
    print(f"stream: {stats.n_jobs} jobs, makespan {stats.makespan_s:.0f}s, "
          f"mean wait {stats.mean_wait_s:.1f}s, "
          f"mean turnaround {stats.mean_turnaround_s:.1f}s")


if __name__ == "__main__":
    main()
