#!/usr/bin/env python
"""Bring your own cluster: custom topology, weights, and application.

Shows the library beyond the paper's testbed:

* a three-level switch tree (two racks of two leaf switches each);
* heterogeneous nodes;
* custom Equation-1 weights (memory-hungry job profile);
* the generic 3-D stencil application;
* greedy heuristic checked against the brute-force optimum.

Run:  python examples/custom_cluster.py
"""

from repro import AllocationRequest, BruteForcePolicy, ComputeWeights, TradeOff
from repro.apps import Stencil3D
from repro.cluster import Cluster, NodeSpec, SwitchTopology
from repro.experiments.scenario import Scenario
from repro.simmpi import Placement, SimJob


def build_topology() -> tuple[list[NodeSpec], SwitchTopology]:
    parents = {
        "core": None,
        "rack1": "core",
        "rack2": "core",
        "leaf1a": "rack1",
        "leaf1b": "rack1",
        "leaf2a": "rack2",
        "leaf2b": "rack2",
    }
    specs: list[NodeSpec] = []
    node_switch: dict[str, str] = {}
    for i, leaf in enumerate(["leaf1a", "leaf1b", "leaf2a", "leaf2b"]):
        for j in range(4):
            name = f"c{i * 4 + j + 1:02d}"
            # rack 1 holds fat nodes, rack 2 holds older ones
            fat = leaf.startswith("leaf1")
            specs.append(
                NodeSpec(
                    name=name,
                    cores=16 if fat else 8,
                    frequency_ghz=3.8 if fat else 2.4,
                    memory_gb=64.0 if fat else 16.0,
                    switch=leaf,
                )
            )
            node_switch[name] = leaf
    return specs, SwitchTopology(parents, node_switch)


def main() -> None:
    specs, topo = build_topology()
    scenario = Scenario.build(specs, topo, seed=9)
    scenario.warm_up(1800.0)

    # A memory-bound workload: weight available memory and flow rate up,
    # core counts down (Equation 1 lets the user re-balance Table 1).
    weights = ComputeWeights(
        {
            "available_memory": 0.35,
            "cpu_load": 0.25,
            "flow_rate": 0.20,
            "cpu_util": 0.10,
            "total_memory": 0.10,
        }
    )
    request = AllocationRequest(
        n_processes=16,
        ppn=4,
        tradeoff=TradeOff(alpha=0.35, beta=0.65),
        compute_weights=weights,
    )

    broker = scenario.broker()
    greedy = broker.request(request).allocation
    brute = broker.request(request, policy=BruteForcePolicy()).allocation

    app = Stencil3D(n=128)
    for label, alloc in (("greedy heuristic", greedy), ("brute force", brute)):
        report = SimJob(
            app,
            Placement.from_allocation(alloc),
            scenario.cluster,
            scenario.network,
        ).run()
        memory = min(
            scenario.cluster.spec(n).memory_gb for n in alloc.nodes
        )
        print(
            f"{label:>16s}: {sorted(alloc.nodes)} "
            f"-> {report.total_time_s:.2f} s "
            f"(min node memory {memory:.0f} GB)"
        )


if __name__ == "__main__":
    main()
