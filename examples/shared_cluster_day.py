#!/usr/bin/env python
"""A day in the life of the shared cluster (the paper's Figure 1 & 2 view).

Simulates 24 hours of background activity — interactive sessions, batch
jobs, other users' MPI runs, data transfers — and prints resource-usage
sparklines for selected nodes, cluster-wide statistics, and a P2P
bandwidth heatmap.

Run:  python examples/shared_cluster_day.py
"""

import numpy as np

from repro import paper_scenario
from repro.experiments.report import ascii_heatmap, series_summary, sparkline
from repro.workload.traces import TraceRecorder

HOURS = 24.0


def main() -> None:
    scenario = paper_scenario(seed=3, warmup_s=0.0, with_monitoring=False)
    recorder = TraceRecorder(
        scenario.engine,
        scenario.cluster,
        period_s=600.0,
        network=scenario.network,
        pairs=[("csews1", "csews2"), ("csews1", "csews40")],
    )
    print(f"simulating {HOURS:.0f} hours of background activity...")
    scenario.engine.run(HOURS * 3600.0)
    trace = recorder.finish()

    busy = scenario.workload.busyness
    sample = scenario.cluster.names[:20]
    node_a = max(sample, key=lambda n: busy[n])  # a chatty machine
    node_b = min(sample, key=lambda n: busy[n])  # a quiet one

    for metric, unit in (
        ("cpu_load", ""),
        ("cpu_util", "%"),
        ("flow_rate_mbs", "MB/s"),
        ("memory_used_gb", "GB"),
    ):
        print(f"\n{metric}:")
        print(f"  {node_a:>8s} {sparkline(trace.series(node_a, metric))}")
        print(f"  {node_b:>8s} {sparkline(trace.series(node_b, metric))}")
        print("  " + series_summary("cluster avg", trace.mean_series(metric), unit=unit))

    print("\nP2P bandwidth across time (same switch vs cross switch):")
    for pair in trace.pairs:
        s = trace.pair_series(pair)
        print(f"  {pair[0]}-{pair[1]}: {sparkline(s)}  "
              f"mean {np.mean(s):.0f} MB/s")

    nodes = scenario.cluster.names[:30]
    pairs = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1:]]
    bw = scenario.network.bulk_available_bandwidth(pairs)
    n = len(nodes)
    mat = np.full((n, n), np.nan)
    for i in range(n):
        for j in range(i + 1, n):
            mat[i, j] = mat[j, i] = bw[(nodes[i], nodes[j])]
    print("\nP2P available bandwidth right now (dark = low):")
    print(ascii_heatmap(mat, labels=nodes, invert=True))


if __name__ == "__main__":
    main()
