#!/usr/bin/env python
"""Policy showdown: the §5 evaluation protocol in miniature.

Runs miniMD and miniFE under all four §5 allocation policies against the
same evolving cluster, repeating the comparison several times, and prints
per-policy execution times, gains and run-time stability.

Run:  python examples/policy_showdown.py
"""

import numpy as np

from repro import AllocationRequest, paper_scenario
from repro.apps import MiniFE, MiniMD
from repro.experiments.metrics import coefficient_of_variation, gain_percent
from repro.experiments.report import format_table
from repro.experiments.runner import POLICY_ORDER, compare_policies

REPEATS = 3


def showdown(scenario, app, request, label):
    times = {p: [] for p in POLICY_ORDER}
    for _ in range(REPEATS):
        comparison = compare_policies(
            scenario, app, request, rng=scenario.streams.child("showdown")
        )
        for p, run in comparison.runs.items():
            times[p].append(run.time_s)
        scenario.advance(900.0)  # let the cluster evolve between repeats

    rows = []
    ours = float(np.mean(times["network_load_aware"]))
    for p in POLICY_ORDER:
        mean = float(np.mean(times[p]))
        gain = gain_percent(mean, ours) if p != "network_load_aware" else 0.0
        rows.append([
            p,
            mean,
            coefficient_of_variation(times[p]),
            f"{gain:.1f}%" if p != "network_load_aware" else "—",
        ])
    print()
    print(format_table(
        ["policy", "mean time (s)", "CoV", "our gain"],
        rows,
        title=label,
    ))


def main() -> None:
    print("warming up the shared cluster...")
    scenario = paper_scenario(seed=12, warmup_s=3600.0)

    showdown(
        scenario,
        MiniMD(s=16),
        AllocationRequest(
            n_processes=32, ppn=4, tradeoff=MiniMD(16).recommended_tradeoff()
        ),
        "miniMD, 32 processes, s=16 (16K atoms)",
    )
    showdown(
        scenario,
        MiniFE(nx=96),
        AllocationRequest(
            n_processes=32, ppn=4, tradeoff=MiniFE(96).recommended_tradeoff()
        ),
        "miniFE, 32 processes, nx=ny=nz=96",
    )


if __name__ == "__main__":
    main()
