#!/usr/bin/env python
"""Fault tolerance: daemon crashes, node outages, and master failover.

Exercises the §4 resilience story end to end:

1. a NodeStateD daemon crashes → the Central Monitor relaunches it;
2. a node goes down → livehosts drops it and the allocator avoids it;
3. the Central Monitor master dies → the slave promotes itself and
   spawns a replacement slave;
4. the node comes back → monitoring data flows again.

Run:  python examples/monitor_failover.py
"""

from repro import AllocationRequest, MINIMD_TRADEOFF, paper_scenario
from repro.monitor.failures import FailureInjector


def show(label, scenario):
    snap = scenario.snapshot()
    mon = scenario.monitoring
    print(f"t={scenario.engine.now / 60:6.1f} min  {label}")
    print(f"    livehosts: {len(snap.livehosts)}/60, "
          f"monitored nodes: {len(snap.nodes)}, "
          f"master id: {mon.central.master.monitor_id} "
          f"(restarts performed: {mon.central.master.restarts_performed})")


def main() -> None:
    scenario = paper_scenario(seed=4, warmup_s=1800.0)
    mon = scenario.monitoring
    injector = FailureInjector(scenario.engine, scenario.cluster)
    show("steady state", scenario)

    # 1. Crash a node-state daemon; the master notices the stale
    #    heartbeat and relaunches it.
    victim = mon.nodestate["csews7"]
    victim.crash()
    print("\n-> crashed NodeStateD on csews7")
    scenario.advance(300.0)
    show("after supervision window", scenario)
    print(f"    csews7 daemon alive again: {victim.alive}")

    # 2. Take a node down; livehosts drops it and allocations avoid it.
    injector.node_down("csews3", at=scenario.engine.now + 10.0, duration=1200.0)
    scenario.advance(120.0)
    show("csews3 is down", scenario)
    broker = scenario.broker()
    result = broker.request(
        AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    )
    assert "csews3" not in result.allocation.nodes
    print(f"    allocation avoids csews3: {result.allocation.nodes}")

    # 3. Kill the master; the slave takes over and spawns a new slave.
    old_master = mon.central.master
    old_master.crash()
    print("\n-> killed the Central Monitor master")
    scenario.advance(300.0)
    show("after failover", scenario)
    assert mon.central.master is not old_master
    assert mon.central.master.alive and mon.central.slave.alive
    print("    slave promoted, replacement slave running")

    # 4. Node recovery.
    scenario.advance(1500.0)
    snap = scenario.snapshot()
    assert "csews3" in snap.livehosts
    show("csews3 recovered", scenario)


if __name__ == "__main__":
    main()
