"""Figure 5 — average CPU load per logical core at allocation time.

Paper values: network-and-load-aware 0.43, load-aware 0.31, sequential
0.68, random 0.72.  The shape to reproduce: load-aware picks the least
loaded nodes; the proposed algorithm accepts slightly more load than
load-aware (trading it for connectivity); random and sequential sit well
above both.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig5, render_fig5, save_fig5_svg


def test_fig5_load_per_core(benchmark, minimd_grid):
    loads = run_once(benchmark, lambda: fig5(minimd_grid))
    emit("fig5", render_fig5(loads))
    import os
    from benchmarks.conftest import OUTPUT_DIR
    save_fig5_svg(loads, os.path.join(OUTPUT_DIR, "fig5.svg"))
    assert loads["load_aware"] <= loads["network_load_aware"]
    assert loads["network_load_aware"] < loads["sequential"]
    assert loads["network_load_aware"] < loads["random"]
