"""Table 3 — percentage gains of the algorithm for miniFE (+ §5.2 CoV).

Paper values (average / median / maximum gain):
  random      47.9 / 50.4 / 92.1
  sequential  31.1 / 28.0 / 80.4
  load-aware  34.8 / 38.7 / 91.0
CoV: 0.05 (ours) vs 0.08 (load-aware) vs 0.11 (sequential).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table3


def test_table3_minife_gains(benchmark, minife_grid):
    result = run_once(benchmark, lambda: table3(minife_grid))
    emit("table3", result.render(table_no=3))
    for baseline, stats in result.gains.items():
        assert stats.average > 5.0, f"{baseline}: {stats.average}"
        assert stats.maximum > 25.0, f"{baseline}: {stats.maximum}"


def test_table3_cov_stability(benchmark, minife_grid):
    run_once(benchmark, lambda: None)
    cov = table3(minife_grid).cov
    assert cov["network_load_aware"] == min(cov.values())
