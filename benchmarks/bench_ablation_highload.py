"""Ablation — the saturated-cluster regime (§6).

"If the overall load on the cluster is extremely high, the performance
gain will not be significant because there are not enough lightly loaded
processors; in that case, our tool should recommend waiting."

We triple the background intensity, verify the gain over random shrinks
compared to the normal regime, and check the broker's WaitRecommended
guard fires.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD
from repro.core.broker import ResourceBroker, WaitRecommended
from repro.core.policies import AllocationRequest
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.metrics import gain_percent
from repro.experiments.runner import compare_policies
from repro.experiments.scenario import paper_scenario
from repro.workload.generator import WorkloadConfig


def heavy_config() -> WorkloadConfig:
    """§6's regime: *uniformly* saturated — nowhere lightly loaded to dodge.

    Merely multiplying burst arrival rates leaves idle pockets the
    allocator exploits (the gain then grows, not shrinks); the paper's
    scenario needs a high load floor on every node, which the ambient
    component provides.
    """
    base = WorkloadConfig()
    return replace(
        base,
        ambient_load_mu=14.0,   # ≥ 1 runnable process per core everywhere
        busyness_sigma=0.1,     # near-uniform: no quiet machines left
        sessions=replace(
            base.sessions,
            arrival_rate_per_hour=2 * base.sessions.arrival_rate_per_hour,
        ),
    )


def mean_gain_over_random(workload_config, seed):
    sc = paper_scenario(
        seed=seed, warmup_s=3600.0, workload_config=workload_config
    )
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    gains = []
    for _ in range(4):
        comparison = compare_policies(
            sc, MiniMD(16), request, rng=sc.streams.child("highload")
        )
        gains.append(
            gain_percent(
                comparison.runs["random"].time_s,
                comparison.runs["network_load_aware"].time_s,
            )
        )
        sc.advance(900.0)
    return sc, float(np.mean(gains))


@pytest.fixture(scope="module")
def regimes():
    _, normal = mean_gain_over_random(None, seed=51)
    heavy_sc, heavy = mean_gain_over_random(heavy_config(), seed=51)
    return heavy_sc, normal, heavy


def test_gain_shrinks_under_saturation(benchmark, regimes):
    _, normal, heavy = run_once(benchmark, lambda: regimes)
    emit(
        "ablation_highload",
        f"gain over random: normal cluster {normal:.1f}%, "
        f"saturated cluster {heavy:.1f}%",
    )
    assert heavy < normal


def test_broker_recommends_waiting(benchmark, regimes):
    run_once(benchmark, lambda: None)
    heavy_sc, _, _ = regimes
    broker = ResourceBroker(
        heavy_sc.snapshot, wait_threshold_load_per_core=0.75
    )
    with pytest.raises(WaitRecommended):
        broker.request(
            AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
        )
