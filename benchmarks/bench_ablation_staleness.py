"""Ablation — monitoring staleness.

The whole point of the paper's Resource Monitor is allocating on *current*
state.  Here we allocate from snapshots of increasing age and measure how
execution degrades toward random-like quality, quantifying the value of
fresh monitoring data.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import paper_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

AGES_S = (0.0, 600.0, 3600.0, 4 * 3600.0)


@pytest.fixture(scope="module")
def staleness():
    sc = paper_scenario(seed=41, warmup_s=3600.0)
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    results = {age: [] for age in AGES_S}
    for _ in range(4):
        # Take snapshots as the cluster evolves, then allocate with each
        # old snapshot but *execute* against the final (current) state.
        taken = {}
        ages = sorted(AGES_S, reverse=True)
        for i, age in enumerate(ages):
            taken[age] = sc.snapshot()
            gap = age - (ages[i + 1] if i + 1 < len(ages) else 0.0)
            if gap > 0:
                sc.advance(gap)
        for age, snapshot in taken.items():
            alloc = NetworkLoadAwarePolicy().allocate(snapshot, request)
            job = SimJob(
                MiniMD(16), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            )
            results[age].append(job.run().total_time_s)
        sc.advance(1800.0)
    return {age: float(np.mean(v)) for age, v in results.items()}


def test_stale_snapshots_degrade_allocations(benchmark, staleness):
    times = run_once(benchmark, lambda: staleness)
    lines = ["snapshot age vs miniMD execution time (32 procs, s=16):"]
    for age, t in sorted(times.items()):
        lines.append(f"  age={age / 60.0:6.0f} min  {t:8.3f} s")
    emit("ablation_staleness", "\n".join(lines))
    # Fresh data should beat multi-hour-old data.
    assert times[0.0] <= times[max(AGES_S)] * 1.05
