"""Ablation — forecasted vs instantaneous load in Equation 3.

§1 of the paper suggests "statistical methods can be used to model
variations in system parameters" and §2 cites the Network Weather
Service.  With the forecasting monitor enabled, the allocator can size
effective processor counts from a one-step-ahead prediction instead of
the 1-minute mean.  This bench measures whether that helps on the spiky
shared cluster.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import Scenario
from repro.cluster.topology import paper_cluster
from repro.monitor.system import MonitorConfig
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

VARIANTS = ("m1", "forecast")


@pytest.fixture(scope="module")
def comparison():
    specs, topo = paper_cluster()
    sc = Scenario.build(
        specs,
        topo,
        seed=55,
        monitor_config=MonitorConfig(forecasting=True),
    )
    sc.warm_up(3600.0)
    # No ppn: Equation 3 (not a user override) sizes every node from the
    # selected load statistic — the path this ablation exercises.
    request = AllocationRequest(n_processes=32, tradeoff=MINIMD_TRADEOFF)
    results = {k: [] for k in VARIANTS}
    for _ in range(5):
        snapshot = sc.snapshot()
        for key in VARIANTS:
            policy = NetworkLoadAwarePolicy(load_key=key)
            alloc = policy.allocate(snapshot, request)
            report = SimJob(
                MiniMD(16), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            ).run()
            results[key].append(report.total_time_s)
        sc.advance(900.0)
    return {k: float(np.mean(v)) for k, v in results.items()}


def test_forecast_vs_instantaneous(benchmark, comparison):
    times = run_once(benchmark, lambda: comparison)
    emit(
        "ablation_forecast",
        "Equation-3 load source, miniMD 32 procs s=16 (mean exec time):\n"
        f"  1-minute mean   {times['m1']:.3f} s\n"
        f"  NWS forecast    {times['forecast']:.3f} s",
    )
    # Forecasting must not degrade allocations materially; on smooth
    # stretches the two coincide, on spikes the forecast reacts sooner.
    assert times["forecast"] <= 1.25 * times["m1"]
