"""Robustness — the headline result across independent seeds.

Guards against seed cherry-picking: a reduced miniMD grid is repeated
under three unrelated simulation seeds and the paper's headline claim —
the network-and-load-aware policy beats every baseline on average — must
hold for each.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig4
from repro.experiments.tables import BASELINES, OURS, gain_table

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for seed in SEEDS:
        grid = fig4(
            seed=seed,
            proc_counts=(8, 32),
            sizes=(16, 32),
            repeats=2,
            gap_s=300.0,
        )
        out[seed] = gain_table(grid)
    return out


def test_headline_holds_across_seeds(benchmark, sweeps):
    tables = run_once(benchmark, lambda: sweeps)
    lines = ["average gain of network_load_aware, by seed:"]
    for seed, table in tables.items():
        gains = {b: table.gains[b].average for b in BASELINES}
        lines.append(
            f"  seed {seed}: "
            + "  ".join(f"{b}={g:5.1f}%" for b, g in gains.items())
        )
    emit("robustness_seeds", "\n".join(lines))
    for seed, table in tables.items():
        mean_gain = float(
            np.mean([table.gains[b].average for b in BASELINES])
        )
        assert mean_gain > 0.0, f"seed {seed}: ours lost on average"
        # random must always lose clearly
        assert table.gains["random"].average > 10.0, seed


def test_ours_most_stable_across_seeds(benchmark, sweeps):
    run_once(benchmark, lambda: None)
    stable = sum(
        1
        for table in sweeps.values()
        if table.cov[OURS] == min(table.cov.values())
    )
    # lowest CoV in at least 2 of 3 seeds (the paper's stability claim)
    assert stable >= 2
