"""Figure 6 — miniFE strong scaling under the four allocation policies."""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import render_fig6, save_grid_svgs


def test_fig6_minife_strong_scaling(benchmark, minife_grid):
    grid = run_once(benchmark, lambda: minife_grid)
    emit("fig6", render_fig6(grid))
    from benchmarks.conftest import OUTPUT_DIR
    save_grid_svgs(grid, OUTPUT_DIR, prefix="fig6")

    def overall(policy):
        return np.mean([np.mean(v) for v in grid.times[policy].values()])

    assert overall("network_load_aware") == min(
        overall(p) for p in grid.policies
    )
    assert overall("random") == max(overall(p) for p in grid.policies)


def test_fig6_time_grows_with_nx(benchmark, minife_grid):
    run_once(benchmark, lambda: None)
    grid = minife_grid
    for policy in grid.policies:
        for n in grid.proc_counts:
            times = [grid.mean_time(policy, n, s) for s in grid.sizes]
            assert times[-1] > times[0]
