"""§4 — "light-weight" monitoring: measure the monitor's own footprint.

The paper claims its daemons are light-weight.  We quantify what the
monitoring stack itself costs on the 60-node cluster over a simulated
hour: probe traffic injected onto the network, store writes, and the
simulation-event overhead relative to an unmonitored cluster.
"""

import time

import pytest

from benchmarks.conftest import emit, run_once
from repro.experiments.scenario import paper_scenario
from repro.net.probes import round_robin_rounds


@pytest.fixture(scope="module")
def accounting():
    sc = paper_scenario(seed=91, warmup_s=0.0)
    assert sc.monitoring is not None
    cfg = sc.monitoring.config
    store = sc.monitoring.store
    t0 = time.perf_counter()
    sc.advance(3600.0)
    wall_monitored = time.perf_counter() - t0

    bare = paper_scenario(seed=91, warmup_s=0.0, with_monitoring=False)
    t0 = time.perf_counter()
    bare.advance(3600.0)
    wall_bare = time.perf_counter() - t0

    n = len(sc.cluster)
    pairs = n * (n - 1) // 2
    lat_sweeps = 3600.0 / cfg.latency_period_s
    bw_sweeps = 3600.0 / cfg.bandwidth_period_s
    # Each pair probe ~ a few KB of traffic for latency, ~1 MB for a
    # bandwidth burst; per-node per-second average:
    probe_mb_per_node_s = (
        (lat_sweeps * pairs * 0.004 + bw_sweeps * pairs * 1.0)
        / 3600.0
        / n
        * 2.0  # both endpoints
    )
    return {
        "store_keys": len(store.keys()),
        "events_per_hour": sc.engine.events_processed,
        "rounds_per_latency_sweep": len(round_robin_rounds(sc.cluster.names)),
        "probe_mb_per_node_s": probe_mb_per_node_s,
        "wall_monitored_s": wall_monitored,
        "wall_bare_s": wall_bare,
    }


def test_monitoring_footprint(benchmark, accounting):
    acc = run_once(benchmark, lambda: accounting)
    emit(
        "monitor_overhead",
        "monitoring footprint, 60 nodes, 1 simulated hour:\n"
        f"  store keys maintained      {acc['store_keys']}\n"
        f"  engine events processed    {acc['events_per_hour']}\n"
        f"  latency sweep rounds       {acc['rounds_per_latency_sweep']}"
        " (n/2 disjoint pairs each, per the paper's schedule)\n"
        f"  probe traffic per node     {acc['probe_mb_per_node_s']:.3f} MB/s\n"
        f"  sim wall: monitored {acc['wall_monitored_s']:.1f}s vs bare "
        f"{acc['wall_bare_s']:.1f}s",
    )
    # "Light-weight": probe traffic well under 1 % of a GigE NIC.
    assert acc["probe_mb_per_node_s"] < 1.25
    # The schedule is the paper's n-1 rounds of disjoint pairs.
    assert acc["rounds_per_latency_sweep"] == len(paper_nodes()) - 1


def paper_nodes():
    from repro.cluster.topology import paper_cluster

    specs, _ = paper_cluster()
    return [s.name for s in specs]
