"""Hot-path benchmarks: incremental LoadState, batch solver, transport.

Three sections, one machine-readable record (``BENCH_hotpath.json`` at
the repo root, also via ``make bench-json``):

* **decision latency vs node count** — synthetic 60/1k/5k-node
  topologies (sparse measured links, the allocator's dense matrices
  still cover every pair); per refresh we compare a full
  ``load_state`` rebuild against the incremental path
  (``compute_delta`` → ``apply_snapshot_delta`` → delta-patched
  ``load_state``) when a few percent of the fleet drifts, plus the
  warm single-decision latency with candidate pruning;
* **batch solver vs sequential** — summed raw Equation-4 cost of
  ``allocate_batch`` deciding N queued jobs together must be no worse
  than deciding the same jobs one at a time;
* **pipelined/binary transport** — loopback round-trips/sec of the
  negotiated transport (pipelined bursts, JSON and binary codecs)
  against this run's stop-and-wait baseline and against the committed
  ``BENCH_broker.json`` JSON-lines number.

CI floors (see ``assert``s): at 5k nodes the incremental refresh must
be ≥5× faster than the full rebuild and a warm decision ≤10 ms; the
batch solver must never cost more than sequential; pipelined binary
must sustain ≥3× the committed JSON-lines RT/s.  The absolute 20k RT/s
loopback target additionally applies on full-scale runs with real
parallelism (≥8 cores) — a single shared core caps the client+server
pair well below what the wire format allows.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import run_once, scale
from repro.broker import (
    BrokerClient,
    BrokerDaemonThread,
    BrokerError,
    BrokerServer,
    BrokerService,
)
from repro.broker.protocol import AllocateParams, ProtocolError
from repro.core.arrays import load_state
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import TradeOff
from repro.experiments.scenario import small_scenario
from repro.monitor.delta import apply_snapshot_delta, compute_delta
from repro.monitor.snapshot import CachedSnapshotSource, ClusterSnapshot, NodeView

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_hotpath.json"

#: floors gated in CI (the 5k-node floors apply whenever that tier runs)
MIN_INCREMENTAL_SPEEDUP_5K = 5.0
MAX_WARM_DECISION_MS_5K = 10.0
MIN_BINARY_VS_BASELINE = 3.0
#: absolute loopback target; needs client and server on separate cores
FULL_HW_TARGET_RTS = 20_000.0

#: Algorithm-1 seeds kept after the Eq-4 lower-bound prune at 5k nodes
PRUNE_KEEP = 16

RECORD: dict = {"scale": scale()}


def _write_record() -> None:
    RECORD["floors"] = {
        "incremental_speedup_5k_min": MIN_INCREMENTAL_SPEEDUP_5K,
        "warm_decision_ms_5k_max": MAX_WARM_DECISION_MS_5K,
        "pipelined_binary_vs_jsonlines_min": MIN_BINARY_VS_BASELINE,
        "full_hw_target_rts": FULL_HW_TARGET_RTS,
    }
    OUT.write_text(json.dumps(RECORD, indent=2) + "\n")


# ---------------------------------------------------------------- section 1
def _stats(v: float) -> dict[str, float]:
    return {"now": v, "m1": v, "m5": v, "m15": v}


def synth_cluster(n: int, seed: int) -> ClusterSnapshot:
    """An n-node cluster with sparse measured links (ring, degree 4).

    Only adjacent pairs carry monitor measurements — exactly the shape a
    fleet-scale monitor produces — while the allocator's dense NL matrix
    covers every pair via the missing-measurement penalty.
    """
    rng = np.random.default_rng(seed)
    names = [f"n{i:05d}" for i in range(n)]
    nodes: dict[str, NodeView] = {}
    for i, name in enumerate(names):
        load = float(rng.uniform(0.0, 10.0))
        nodes[name] = NodeView(
            name=name,
            cores=12,
            frequency_ghz=2.6,
            memory_gb=64.0,
            users=int(rng.integers(0, 3)),
            cpu_load=_stats(load),
            cpu_util=_stats(min(100.0, load * 8.0)),
            flow_rate_mbs=_stats(float(rng.uniform(0.0, 60.0))),
            available_memory_gb=_stats(float(rng.uniform(8.0, 60.0))),
            switch=f"s{i // 16}",
        )
    bandwidth: dict[tuple[str, str], float] = {}
    latency: dict[tuple[str, str], float] = {}
    peak: dict[tuple[str, str], float] = {}
    for i in range(n):
        for step in (1, 2):
            j = (i + step) % n
            if i == j:
                continue
            key = tuple(sorted((names[i], names[j])))
            if key in peak:
                continue
            peak[key] = 125.0
            bandwidth[key] = float(125.0 * rng.uniform(0.5, 1.0))
            latency[key] = float(rng.uniform(40.0, 120.0))
    return ClusterSnapshot(
        time=0.0,
        nodes=nodes,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(names),
    )


def drift(snap: ClusterSnapshot, rng, fraction: float) -> ClusterSnapshot:
    """~``fraction`` of nodes and measured links move, topology fixed."""
    views = dict(snap.nodes)
    for name in rng.choice(
        list(snap.nodes), size=max(1, int(fraction * len(snap.nodes))),
        replace=False,
    ):
        view = views[name]
        factor = float(rng.uniform(1.5, 3.0))
        views[name] = dataclasses.replace(
            view,
            cpu_load={k: v * factor for k, v in view.cpu_load.items()},
            flow_rate_mbs={
                k: v * factor for k, v in view.flow_rate_mbs.items()
            },
        )
    bandwidth = dict(snap.bandwidth_mbs)
    pairs = list(bandwidth)
    for idx in rng.choice(
        len(pairs), size=max(1, int(fraction * len(pairs))), replace=False
    ):
        key = pairs[idx]
        bandwidth[key] = float(
            snap.peak_bandwidth_mbs[key] * rng.uniform(0.3, 1.0)
        )
    return dataclasses.replace(
        snap, time=snap.time + 1.0, nodes=views, bandwidth_mbs=bandwidth
    )


def _fresh_copy(snap: ClusterSnapshot) -> ClusterSnapshot:
    """The same facts in a new object — no migratable derived cache."""
    return ClusterSnapshot(
        time=snap.time,
        nodes=dict(snap.nodes),
        bandwidth_mbs=dict(snap.bandwidth_mbs),
        latency_us=dict(snap.latency_us),
        peak_bandwidth_mbs=dict(snap.peak_bandwidth_mbs),
        livehosts=snap.livehosts,
    )


def _latency_tiers() -> tuple[list[int], int, dict[int, int]]:
    """(node counts, incremental steps, full rebuilds per count)."""
    s = scale()
    if s == "smoke":
        return [60, 500], 3, {60: 2, 500: 2}
    if s == "full":
        return [60, 1000, 5000], 5, {60: 5, 1000: 3, 5000: 2}
    return [60, 1000, 5000], 3, {60: 3, 1000: 3, 5000: 1}


def test_incremental_decision_latency(benchmark):
    sizes, steps, rebuilds = _latency_tiers()
    rows: dict[str, dict] = {}

    def sweep() -> None:
        for n in sizes:
            rng = np.random.default_rng(1000 + n)
            snap = synth_cluster(n, seed=n)
            kwargs = {"nodes": list(snap.nodes), "ppn": 4}
            load_state(snap, **kwargs)  # initial build, not timed

            full_s = []
            for _ in range(rebuilds[n]):
                t0 = time.perf_counter()
                load_state(_fresh_copy(snap), **kwargs)
                full_s.append(time.perf_counter() - t0)

            inc_s = []
            for _ in range(steps):
                target = drift(snap, rng, fraction=0.02)
                t0 = time.perf_counter()
                delta = compute_delta(snap, target)
                assert delta is not None and not delta.is_empty
                snap = apply_snapshot_delta(snap, delta)
                load_state(snap, **kwargs)
                inc_s.append(time.perf_counter() - t0)

            policy = NetworkLoadAwarePolicy(prune_keep=PRUNE_KEEP)
            request = AllocationRequest(
                n_processes=32, ppn=4, tradeoff=TradeOff.from_alpha(0.3)
            )
            warm_s = []
            for _ in range(5):
                t0 = time.perf_counter()
                allocation = policy.allocate(snap, request)
                warm_s.append(time.perf_counter() - t0)
                assert sum(allocation.procs.values()) == 32
            full_ms = 1e3 * sum(full_s) / len(full_s)
            inc_ms = 1e3 * sum(inc_s) / len(inc_s)
            rows[str(n)] = {
                "full_rebuild_ms": full_ms,
                "incremental_ms": inc_ms,
                "speedup": full_ms / inc_ms,
                "warm_decision_ms": 1e3 * min(warm_s),
            }

    run_once(benchmark, sweep)
    RECORD["decision_latency"] = {
        "drift_fraction": 0.02,
        "prune_keep": PRUNE_KEEP,
        "by_nodes": rows,
    }
    _write_record()
    for n, row in rows.items():
        print(f"\n{n:>5} nodes: full {row['full_rebuild_ms']:.1f} ms, "
              f"incremental {row['incremental_ms']:.1f} ms "
              f"({row['speedup']:.1f}x), warm decision "
              f"{row['warm_decision_ms']:.2f} ms")
    if "5000" in rows:
        assert rows["5000"]["speedup"] >= MIN_INCREMENTAL_SPEEDUP_5K, (
            f"incremental refresh only {rows['5000']['speedup']:.1f}x "
            f"faster at 5k nodes (floor {MIN_INCREMENTAL_SPEEDUP_5K}x)"
        )
        assert rows["5000"]["warm_decision_ms"] <= MAX_WARM_DECISION_MS_5K, (
            f"warm decision {rows['5000']['warm_decision_ms']:.2f} ms at "
            f"5k nodes (ceiling {MAX_WARM_DECISION_MS_5K} ms)"
        )


# ---------------------------------------------------------------- section 2
BATCH_SHAPES = {
    "flat": [(12, 0.0), (8, 0.0), (4, 0.0)],
    "inverted": [(4, 1.0), (12, 3.0), (8, 2.0)],
    "mixed": [(8, 0.0), (8, 5.0), (8, 1.0), (4, 0.0)],
}


def _sealed_service() -> BrokerService:
    sc = small_scenario(8, seed=3, warmup_s=600.0)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
    return BrokerService(source, default_ttl_s=30.0)


def _raw_cost(grant: dict, alpha: float) -> float:
    return alpha * grant["compute_cost"] + (1 - alpha) * grant["network_cost"]


def test_batch_solver_vs_sequential(benchmark):
    alpha = 0.3
    rows: dict[str, dict] = {}

    def solve() -> None:
        for name, shape in BATCH_SHAPES.items():
            batch = [
                AllocateParams(n_processes=n, ppn=4, alpha=alpha, priority=pr)
                for n, pr in shape
            ]
            sequential = _sealed_service()
            seq_total = 0.0
            for params in batch:
                [result] = sequential.allocate_batch([params])
                assert not isinstance(result, ProtocolError)
                seq_total += _raw_cost(result, alpha)
            batched = _sealed_service()
            t0 = time.perf_counter()
            results = batched.allocate_batch(batch)
            batch_s = time.perf_counter() - t0
            bat_total = 0.0
            for result in results:
                assert not isinstance(result, ProtocolError)
                bat_total += _raw_cost(result, alpha)
            rows[name] = {
                "jobs": len(batch),
                "sequential_cost": seq_total,
                "batch_cost": bat_total,
                "batch_decide_ms": 1e3 * batch_s,
                "swaps_adopted": batched.metrics.batch_swaps_adopted,
            }

    run_once(benchmark, solve)
    RECORD["batch_solver"] = {"alpha": alpha, "by_shape": rows}
    _write_record()
    for name, row in rows.items():
        print(f"\nbatch[{name}]: {row['batch_cost']:.3f} vs sequential "
              f"{row['sequential_cost']:.3f} "
              f"({row['swaps_adopted']} swaps adopted)")
        assert row["batch_cost"] <= row["sequential_cost"] + 1e-9, (
            f"batch solver cost {row['batch_cost']:.4f} exceeds "
            f"sequential {row['sequential_cost']:.4f} on shape {name!r}"
        )


# ---------------------------------------------------------------- section 3
def _transport_reps() -> tuple[int, int, int]:
    """(sequential round-trips, bursts per rep, measured reps)."""
    if scale() == "smoke":
        return 600, 5, 2
    return 2000, 10, 3


BURST = 128


def _burst_rts(client: BrokerClient, bursts: int, reps: int) -> float:
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(bursts):
            results = client.call_many("status", [None] * BURST)
            assert not any(isinstance(r, BrokerError) for r in results)
        best = max(best, bursts * BURST / (time.perf_counter() - t0))
    return best


def test_pipelined_transport_throughput(benchmark):
    seq_n, bursts, reps = _transport_reps()
    sc = small_scenario(8, seed=3, warmup_s=600.0)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
    service = BrokerService(source, default_ttl_s=60.0)
    server = BrokerServer(service, port=0)
    rates: dict[str, float] = {}

    def hammer() -> None:
        with BrokerDaemonThread(server) as daemon:
            with BrokerClient(port=daemon.port, timeout_s=30.0) as client:
                for _ in range(seq_n // 10):
                    client.status()
                t0 = time.perf_counter()
                for _ in range(seq_n):
                    client.status()
                rates["sequential_json"] = seq_n / (time.perf_counter() - t0)
            for codec in ("json", "binary"):
                with BrokerClient(port=daemon.port, timeout_s=30.0) as client:
                    client.hello(codec=codec, pipeline=True, max_inflight=BURST)
                    for _ in range(3):
                        client.call_many("status", [None] * BURST)
                    rates[f"pipelined_{codec}"] = _burst_rts(
                        client, bursts, reps
                    )

    run_once(benchmark, hammer)
    # the committed JSON-lines number is the cross-run baseline the
    # acceptance ratio is defined against; fall back to this run's
    # stop-and-wait measurement when it is absent (fresh checkout)
    baseline = rates["sequential_json"]
    baseline_src = "in-run sequential JSON"
    broker_json = ROOT / "BENCH_broker.json"
    if broker_json.exists():
        baseline = float(json.loads(broker_json.read_text())["throughput_rts"])
        baseline_src = "BENCH_broker.json"
    ratio = rates["pipelined_binary"] / baseline
    RECORD["transport"] = {
        "op": "status",
        "burst": BURST,
        "sequential_json_rts": rates["sequential_json"],
        "pipelined_json_rts": rates["pipelined_json"],
        "pipelined_binary_rts": rates["pipelined_binary"],
        "jsonlines_baseline_rts": baseline,
        "jsonlines_baseline_source": baseline_src,
        "pipelined_binary_vs_baseline": ratio,
        "cpu_count": os.cpu_count(),
    }
    _write_record()
    print(f"\ntransport: sequential {rates['sequential_json']:.0f} RT/s, "
          f"pipelined json {rates['pipelined_json']:.0f}, "
          f"pipelined binary {rates['pipelined_binary']:.0f} "
          f"({ratio:.1f}x {baseline_src}) -> {OUT.name}")
    assert ratio >= MIN_BINARY_VS_BASELINE, (
        f"pipelined binary sustained {rates['pipelined_binary']:.0f} RT/s — "
        f"only {ratio:.1f}x the JSON-lines baseline {baseline:.0f} "
        f"(floor {MIN_BINARY_VS_BASELINE}x)"
    )
    if scale() == "full" and (os.cpu_count() or 1) >= 8:
        assert rates["pipelined_binary"] >= FULL_HW_TARGET_RTS, (
            f"pipelined binary {rates['pipelined_binary']:.0f} RT/s below "
            f"the {FULL_HW_TARGET_RTS:.0f} RT/s full-hardware target"
        )
