"""Figure 2 — P2P bandwidth structure across node pairs and time.

2(a): the 30-node heatmap averaged over ten measurement rounds — light
near the diagonal (same switch), darker across switches.
2(b): three randomly-chosen pairs tracked over two days, fluctuating
around a topology-determined base value.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once, scale
from repro.experiments.figures import fig2

PARAMS = {
    "smoke": dict(n_heatmap_samples=3, series_hours=6.0),
    "default": dict(n_heatmap_samples=10, series_hours=48.0),
    "full": dict(n_heatmap_samples=10, series_hours=48.0),
}[scale()]


@pytest.fixture(scope="module")
def result():
    return fig2(seed=2, n_nodes=30, **PARAMS)


def test_fig2a_bandwidth_heatmap(benchmark, result):
    run_once(benchmark, lambda: None)
    emit("fig2", result.render())
    from benchmarks.conftest import OUTPUT_DIR
    result.save_svgs(OUTPUT_DIR)
    # Paper: proximity implies higher bandwidth.
    assert result.proximity_correlation() < 0.0


def test_fig2b_bandwidth_over_time(benchmark, result):
    run_once(benchmark, lambda: None)
    series = result.pair_series
    assert series.shape[1] == 3
    # Fluctuation around a base value: non-trivial variance, positive floor.
    for k in range(3):
        s = series[:, k]
        assert s.min() > 0.0
        assert s.std() > 0.0

    # Different pairs have different base values (topology-dependent).
    means = series.mean(axis=0)
    assert np.ptp(means) > 0.0
