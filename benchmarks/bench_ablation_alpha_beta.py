"""Ablation — sensitivity to the α/β compute/network trade-off.

The paper sets α/β empirically (0.3/0.7 for miniMD, 0.4/0.6 for miniFE)
and notes the weights should follow an application's
computation/communication split.  This bench sweeps α for both apps and
checks that (a) extreme settings are never catastrophically better than
the paper's choice, and (b) a pure-compute α=1 (equivalent to load-aware
scoring) loses to the paper's mixed setting for the comm-heavy miniMD.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import TradeOff
from repro.experiments.scenario import paper_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

ALPHAS = (0.0, 0.1, 0.3, 0.4, 0.6, 0.8, 1.0)


def sweep(app_factory, n_procs, repeats=4, seed=21):
    sc = paper_scenario(seed=seed, warmup_s=3600.0)
    results = {a: [] for a in ALPHAS}
    for _ in range(repeats):
        snapshot = sc.snapshot()
        for alpha in ALPHAS:
            request = AllocationRequest(
                n_processes=n_procs, ppn=4, tradeoff=TradeOff.from_alpha(alpha)
            )
            alloc = NetworkLoadAwarePolicy().allocate(snapshot, request)
            job = SimJob(
                app_factory(), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            )
            results[alpha].append(job.run().total_time_s)
        sc.advance(900.0)
    return {a: float(np.mean(v)) for a, v in results.items()}


@pytest.fixture(scope="module")
def minimd_sweep():
    return sweep(lambda: MiniMD(16), n_procs=32)


@pytest.fixture(scope="module")
def minife_sweep():
    return sweep(lambda: MiniFE(96), n_procs=32, seed=22)


def test_alpha_beta_sweep_minimd(benchmark, minimd_sweep):
    times = run_once(benchmark, lambda: minimd_sweep)
    lines = ["alpha sweep, miniMD 32 procs s=16 (mean exec time s):"]
    for a, t in times.items():
        marker = " <- paper" if a == 0.3 else ""
        lines.append(f"  alpha={a:.1f}  {t:8.3f}{marker}")
    emit("ablation_alpha_beta_minimd", "\n".join(lines))
    paper = times[0.3]
    # Paper's empirical choice should be competitive with the best alpha.
    assert paper <= 1.35 * min(times.values())
    # Pure compute weighting ignores the network and should lose.
    assert times[1.0] >= paper


def test_alpha_beta_sweep_minife(benchmark, minife_sweep):
    times = run_once(benchmark, lambda: minife_sweep)
    lines = ["alpha sweep, miniFE 32 procs nx=96 (mean exec time s):"]
    for a, t in times.items():
        marker = " <- paper" if a == 0.4 else ""
        lines.append(f"  alpha={a:.1f}  {t:8.3f}{marker}")
    emit("ablation_alpha_beta_minife", "\n".join(lines))
    assert times[0.4] <= 1.35 * min(times.values())
