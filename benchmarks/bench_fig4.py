"""Figure 4 — miniMD strong scaling under the four allocation policies.

Prints the mean execution time per (process count, problem size) cell and
checks the paper's qualitative claims: random is worst overall and the
network-and-load-aware algorithm is best overall.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import render_fig4, save_grid_svgs


def test_fig4_minimd_strong_scaling(benchmark, minimd_grid):
    grid = run_once(benchmark, lambda: minimd_grid)
    emit("fig4", render_fig4(grid))
    from benchmarks.conftest import OUTPUT_DIR
    save_grid_svgs(grid, OUTPUT_DIR, prefix="fig4")

    def overall(policy):
        return np.mean([np.mean(v) for v in grid.times[policy].values()])

    # Paper §5.1: "random allocation performs worst on almost all
    # configurations" and the proposed algorithm achieves the best times.
    assert overall("network_load_aware") < overall("random")
    assert overall("network_load_aware") < overall("sequential")
    assert overall("network_load_aware") < overall("load_aware")
    assert overall("random") == max(overall(p) for p in grid.policies)


def test_fig4_time_grows_with_problem_size(benchmark, minimd_grid):
    run_once(benchmark, lambda: None)
    grid = minimd_grid
    for policy in grid.policies:
        for n in grid.proc_counts:
            times = [grid.mean_time(policy, n, s) for s in grid.sizes]
            assert times[-1] > times[0]
