"""Figure 1 — resource-usage variation in the shared cluster.

Regenerates the two-day traces of CPU load (1a), network I/O (1b) and
CPU utilization / memory (1c) over a 20-node sample, and checks the
qualitative bands the paper reports.
"""

import pytest

from benchmarks.conftest import emit, run_once, scale
from repro.experiments.figures import fig1

HOURS = {"smoke": 6.0, "default": 48.0, "full": 48.0}[scale()]


@pytest.fixture(scope="module")
def result(request):
    return fig1(seed=1, hours=HOURS)


def test_fig1a_cpu_load_variation(benchmark, result):
    run_once(benchmark, lambda: None)
    summary = result.summary()
    emit("fig1", result.render())
    from benchmarks.conftest import OUTPUT_DIR
    result.save_svgs(OUTPUT_DIR)
    # Paper: occasional spikes, low typical load.
    assert summary["max_cpu_load"] > 3 * summary["mean_cpu_load"]


def test_fig1b_network_io_variation(benchmark, result):
    run_once(benchmark, lambda: None)
    import numpy as np

    avg = result._avg("flow_rate_mbs")
    # Strong variation over time (paper: "a lot of variation").
    assert np.std(avg) > 0.1 * max(np.mean(avg), 1e-9)


def test_fig1c_cpu_util_and_memory(benchmark, result):
    run_once(benchmark, lambda: None)
    s = result.summary()
    assert 10.0 <= s["mean_cpu_util_pct"] <= 45.0  # paper band: 20-35 %
    assert 2.0 <= s["mean_memory_gb"] <= 8.0  # paper: ~25 % of 16 GB
