"""Broker daemon loopback throughput (tentpole acceptance benchmark).

Starts a real asyncio broker daemon over the warmed 60-node paper
scenario and hammers it with concurrent synchronous clients doing
allocate→release round-trips — the service path an MPI launcher would
exercise.  Batching is on (adaptive micro-batches: whatever queues while
a batch is being decided is decided together against one shared
snapshot/LoadState), and repeated decisions on the unchanged snapshot
hit the broker's decision memo.

Acceptance: ≥ 500 round-trips/sec sustained.  ``BENCH_broker.json``
(written at the repo root, also via ``make bench-json``) records
throughput, the daemon's batch-size histogram, and p50/p99 decision and
client round-trip latency.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import run_once, scale
from repro.broker import (
    BrokerClient,
    BrokerDaemonThread,
    BrokerServer,
    BrokerService,
)
from repro.broker.metrics import percentile
from repro.experiments.scenario import paper_scenario
from repro.monitor.snapshot import CachedSnapshotSource

#: acceptance floor, round-trips (allocate→release) per second
MIN_THROUGHPUT_RTS = 500.0

N_CLIENTS = 4


def n_round_trips() -> int:
    """Round-trips per client thread, scaled by the benchmark tier."""
    s = scale()
    if s == "full":
        return 1000
    if s == "smoke":
        return 150
    return 500


@pytest.fixture(scope="module")
def daemon():
    """A broker daemon over the warmed §5 paper cluster (60 nodes)."""
    sc = paper_scenario(seed=11, warmup_s=1800.0)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=3600.0)
    service = BrokerService(source, default_ttl_s=60.0)
    server = BrokerServer(service, port=0)
    with BrokerDaemonThread(server) as d:
        yield d


def _client_loop(
    port: int, rounds: int, latencies: list[float], barrier: threading.Barrier
) -> None:
    with BrokerClient(port=port, timeout_s=30.0) as client:
        barrier.wait()
        for _ in range(rounds):
            t0 = time.perf_counter()
            grant = client.allocate(32, ppn=4, ttl_s=60.0)
            client.release(grant.lease_id)
            latencies.append(time.perf_counter() - t0)


def test_broker_roundtrip_throughput(benchmark, daemon):
    rounds = n_round_trips()

    # Warm the decision memo and the LoadState the way a long-running
    # daemon would be warm (the timed section measures steady state).
    with BrokerClient(port=daemon.port, timeout_s=30.0) as c:
        for _ in range(20):
            c.release(c.allocate(32, ppn=4).lease_id)

    all_latencies: list[list[float]] = [[] for _ in range(N_CLIENTS)]

    def hammer() -> float:
        barrier = threading.Barrier(N_CLIENTS + 1)
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(daemon.port, rounds, all_latencies[i], barrier),
            )
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        return time.perf_counter() - t0

    elapsed = run_once(benchmark, hammer)
    total = N_CLIENTS * rounds
    throughput = total / elapsed

    status = BrokerClient(port=daemon.port).status()
    client_lat = sorted(l for lats in all_latencies for l in lats)
    record = {
        "scale": scale(),
        "clients": N_CLIENTS,
        "round_trips": total,
        "elapsed_s": elapsed,
        "throughput_rts": throughput,
        "client_roundtrip_ms": {
            "p50": percentile(client_lat, 0.50) * 1e3,
            "p99": percentile(client_lat, 0.99) * 1e3,
        },
        "decision_latency_ms": status["metrics"]["decision_latency_ms"],
        "batch_size_hist": status["metrics"]["batch_size_hist"],
        "counters": {
            k: status["metrics"][k]
            for k in ("granted", "denied", "busy_rejected", "released",
                      "expired", "batches", "decisions_memoized")
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_broker.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nbroker throughput: {throughput:.0f} round-trips/s "
          f"({total} RTs, {N_CLIENTS} clients, p50 "
          f"{record['client_roundtrip_ms']['p50']:.2f} ms) -> {out.name}")

    assert status["metrics"]["granted"] >= total
    assert throughput >= MIN_THROUGHPUT_RTS, (
        f"broker sustained only {throughput:.0f} RT/s "
        f"(floor {MIN_THROUGHPUT_RTS:.0f})"
    )


def test_broker_single_client_latency(benchmark, daemon):
    """One blocking client's allocate→release, measured per round-trip."""
    with BrokerClient(port=daemon.port, timeout_s=30.0) as client:
        client.release(client.allocate(32, ppn=4).lease_id)  # warm memo

        def roundtrip():
            grant = client.allocate(32, ppn=4, ttl_s=60.0)
            client.release(grant.lease_id)

        benchmark(roundtrip)
    # Memoized decision + loopback TCP: a round-trip stays comfortably
    # under 10 ms even on shared CI machines.
    assert benchmark.stats["mean"] < 0.01
