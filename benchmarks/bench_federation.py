"""Federation benchmarks: shard-count scaling and placement quality.

Two sections, one machine-readable record (``BENCH_federation.json`` at
the repo root, also via ``make bench-json``):

* **throughput vs shard count** — a 1024-node synthetic cluster whose
  monitor drifts ~2% of nodes/links before every request (served as
  delta-patched snapshots, exactly what ``CachedSnapshotSource``
  produces); we measure allocate→release round-trips/sec and decision
  latency for a single ``BrokerService`` over the whole fleet against a
  :func:`~repro.federation.router.build_federation` federation at 1, 2,
  4, and 8 shards.  Sharding wins by shrinking the Algorithm-1/2
  decision set per shard while the router's fleet pass stays O(changed)
  per drift step.
* **quality gap vs the single-broker oracle** — the §5 paper topology
  (60 nodes, 4 switches) partitioned into its 4 subtrees; the same
  request stream (including a cross-shard job no single subtree can
  hold) runs against the federation and a fleet-wide single broker, and
  the summed raw Equation-4 cost ratio must stay within the chaos
  harness's :data:`~repro.chaos.invariants.DEFAULT_QUALITY_BOUND`.

CI floors (see ``assert``s): the 4-shard federation must sustain
≥ :data:`MIN_SHARD_SPEEDUP_4` × the single-broker round-trip rate on the
1k-node topology, and the federation's Equation-4 quality gap on the
paper topology must stay ≤ the oracle bound while actually exercising
the cross-shard two-phase path.  Cross-shard rollback hygiene (zero
surviving leases after a mid-placement shard death) is CI-asserted by
``tests/federation`` and the ``shard_death_cross_reserve`` chaos
scenario.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_hotpath import synth_cluster
from benchmarks.conftest import run_once, scale
from repro.broker import BrokerService
from repro.broker.protocol import AllocateParams, ProtocolError, ReleaseParams
from repro.chaos.invariants import DEFAULT_QUALITY_BOUND
from repro.experiments.scenario import paper_scenario
from repro.federation.router import build_federation
from repro.federation.sharding import snapshot_switches, subtree_partition
from repro.monitor.delta import SnapshotDelta, apply_snapshot_delta
from repro.monitor.snapshot import CachedSnapshotSource, ClusterSnapshot

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_federation.json"

#: floors gated in CI
MIN_SHARD_SPEEDUP_4 = 2.0
MAX_QUALITY_GAP = DEFAULT_QUALITY_BOUND

#: node count of the scaling topology (the acceptance floor is defined
#: at fleet scale; smoke only trims repetitions, never the fleet)
FLEET_NODES = 1024
#: fraction of nodes/links that drift between consecutive requests
DRIFT_FRACTION = 0.02

RECORD: dict = {"scale": scale()}


def _write_record() -> None:
    RECORD["floors"] = {
        "shard4_vs_single_broker_min": MIN_SHARD_SPEEDUP_4,
        "quality_gap_max": MAX_QUALITY_GAP,
    }
    OUT.write_text(json.dumps(RECORD, indent=2) + "\n")


# ---------------------------------------------------------------- section 1
def _drift_delta(
    snap: ClusterSnapshot, rng: np.random.Generator, fraction: float
) -> SnapshotDelta:
    """~``fraction`` of nodes and measured links move, topology fixed."""
    names = list(snap.nodes)
    nodes = {}
    for name in rng.choice(
        names, size=max(1, int(fraction * len(names))), replace=False
    ):
        view = snap.nodes[name]
        factor = 1.0 + float(rng.uniform(-0.3, 0.3))
        nodes[name] = type(view)(
            name=view.name,
            cores=view.cores,
            frequency_ghz=view.frequency_ghz,
            memory_gb=view.memory_gb,
            switch=view.switch,
            users=view.users,
            cpu_load={k: v * factor for k, v in view.cpu_load.items()},
            cpu_util={
                k: min(100.0, v * factor) for k, v in view.cpu_util.items()
            },
            flow_rate_mbs={
                k: v * factor for k, v in view.flow_rate_mbs.items()
            },
            available_memory_gb=view.available_memory_gb,
        )
    pairs = list(snap.latency_us)
    bandwidth = {}
    for idx in rng.choice(
        len(pairs), size=max(1, int(fraction * len(pairs))), replace=False
    ):
        key = pairs[idx]
        bandwidth[key] = float(
            snap.peak_bandwidth_mbs[key] * rng.uniform(0.3, 1.0)
        )
    return SnapshotDelta(
        time=snap.time + 1.0, nodes=nodes, bandwidth_mbs=bandwidth
    )


class _DriftingSource:
    """A push-style monitor: each tick serves a delta-patched snapshot.

    This is the shape :class:`~repro.monitor.snapshot.CachedSnapshotSource`
    produces in incremental mode — snapshots chained by stashed step
    deltas — so both the single broker and the federation exercise their
    real incremental paths (LoadState migration, router ``advance``,
    shard-slice catch-up) rather than full rebuilds.
    """

    def __init__(self, snap: ClusterSnapshot, seed: int) -> None:
        self.snap = snap
        self.rng = np.random.default_rng(seed)

    def tick(self) -> None:
        self.snap = apply_snapshot_delta(
            self.snap, _drift_delta(self.snap, self.rng, DRIFT_FRACTION)
        )

    def __call__(self) -> ClusterSnapshot:
        return self.snap


def _scaling_tiers() -> tuple[int, int, tuple[int, ...]]:
    """(timed requests, repetitions, federation shard counts)."""
    if scale() == "smoke":
        return 30, 2, (1, 4)
    if scale() == "full":
        return 60, 3, (1, 2, 4, 8)
    return 30, 2, (1, 2, 4, 8)


_WARMUP_REQUESTS = 3
_SCALING_PARAMS = AllocateParams(n_processes=16, ppn=4, ttl_s=30.0)


def _round_trips(target, source: _DriftingSource, requests: int) -> dict:
    """allocate→release ``requests`` times, drifting before each one."""
    for _ in range(_WARMUP_REQUESTS):
        source.tick()
        out = target.allocate_batch([_SCALING_PARAMS])[0]
        assert not isinstance(out, ProtocolError), out
        target.release(ReleaseParams(out["lease_id"]))
    laps: list[float] = []
    t0 = time.perf_counter()
    for _ in range(requests):
        source.tick()
        t1 = time.perf_counter()
        out = target.allocate_batch([_SCALING_PARAMS])[0]
        laps.append(time.perf_counter() - t1)
        assert not isinstance(out, ProtocolError), out
        target.release(ReleaseParams(out["lease_id"]))
    elapsed = time.perf_counter() - t0
    laps.sort()
    return {
        "rts": requests / elapsed,
        "decide_p50_ms": 1e3 * laps[len(laps) // 2],
        "decide_p99_ms": 1e3 * laps[min(len(laps) - 1, int(0.99 * len(laps)))],
    }


def test_shard_scaling(benchmark):
    requests, reps, shard_counts = _scaling_tiers()
    base_snap = synth_cluster(FLEET_NODES, seed=7)
    rows: dict[str, dict] = {}

    def best_of(make_target) -> dict:
        best: dict | None = None
        for rep in range(reps):
            source = _DriftingSource(base_snap, seed=99 + rep)
            row = _round_trips(make_target(source), source, requests)
            if best is None or row["rts"] > best["rts"]:
                best = row
        assert best is not None
        return best

    def sweep() -> None:
        rows["single_broker"] = best_of(lambda src: BrokerService(src))
        for n_shards in shard_counts:
            partition = subtree_partition(
                snapshot_switches(base_snap), n_shards
            )
            rows[str(n_shards)] = best_of(
                lambda src, p=partition: build_federation(src, p)
            )

    run_once(benchmark, sweep)
    RECORD["shard_scaling"] = {
        "nodes": FLEET_NODES,
        "requests": requests,
        "repetitions": reps,
        "drift_fraction": DRIFT_FRACTION,
        "request_shape": {"n_processes": 16, "ppn": 4},
        "by_shards": rows,
    }
    _write_record()
    base = rows["single_broker"]
    print(f"\nsingle broker: {base['rts']:.1f} RT/s "
          f"(p50 {base['decide_p50_ms']:.1f} ms)")
    for n_shards in shard_counts:
        row = rows[str(n_shards)]
        print(f"{n_shards} shard(s): {row['rts']:.1f} RT/s "
              f"(p50 {row['decide_p50_ms']:.1f} ms, "
              f"{row['rts'] / base['rts']:.2f}x)")
    speedup = rows["4"]["rts"] / base["rts"]
    assert speedup >= MIN_SHARD_SPEEDUP_4, (
        f"4-shard federation sustained {rows['4']['rts']:.1f} RT/s — only "
        f"{speedup:.2f}x the single broker's {base['rts']:.1f} RT/s "
        f"(floor {MIN_SHARD_SPEEDUP_4}x at {FLEET_NODES} nodes)"
    )


# ---------------------------------------------------------------- section 2
ALPHA = 0.3


def _cross_shard_n(router) -> int:
    """A process count no single shard can host but the fleet can."""
    frees = sorted(
        row["free_procs"]
        for row in router.shards()["shards"]
        if row["alive"]
    )
    return frees[-1] + max(2, frees[0] // 4)


def _quality_stream(router) -> tuple[AllocateParams, ...]:
    """Subtree-sized jobs plus one the two-phase path must split."""
    return (
        AllocateParams(n_processes=16, ppn=4, alpha=ALPHA, ttl_s=600.0),
        AllocateParams(n_processes=24, ppn=4, alpha=ALPHA, ttl_s=600.0),
        AllocateParams(n_processes=_cross_shard_n(router), alpha=ALPHA,
                       ttl_s=600.0),
        AllocateParams(n_processes=16, ppn=4, alpha=ALPHA, ttl_s=600.0),
        AllocateParams(n_processes=8, ppn=2, alpha=ALPHA, ttl_s=600.0),
    )


def _raw_cost(grant: dict, alpha: float) -> float:
    return alpha * grant["compute_cost"] + (1 - alpha) * grant["network_cost"]


def test_quality_gap_vs_oracle(benchmark):
    sc = paper_scenario(seed=5, warmup_s=600.0)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
    partition = subtree_partition(snapshot_switches(source()), 4)
    result: dict = {}
    stream_shapes: list[dict] = []

    def place() -> None:
        oracle = BrokerService(source)
        router = build_federation(source, partition)
        oracle_total = 0.0
        fed_total = 0.0
        stream = _quality_stream(router)
        stream_shapes[:] = [
            {"n_processes": p.n_processes, "ppn": p.ppn} for p in stream
        ]
        for params in stream:
            for target, bucket in ((oracle, "oracle"), (router, "fed")):
                out = target.allocate_batch([params])[0]
                assert not isinstance(out, ProtocolError), (
                    f"{bucket} denied {params.n_processes} procs: {out}"
                )
                cost = _raw_cost(out, params.alpha)
                if bucket == "oracle":
                    oracle_total += cost
                else:
                    fed_total += cost
        result.update(
            oracle_cost=oracle_total,
            federation_cost=fed_total,
            quality_gap=fed_total / oracle_total,
            cross_shard_grants=router.cross_shard_grants,
            spills=router.spills,
        )

    run_once(benchmark, place)
    RECORD["quality_gap"] = {
        "topology": "paper (60 nodes, 4 switches)",
        "shards": len(partition),
        "stream": stream_shapes,
        **result,
    }
    _write_record()
    print(f"\nquality gap: federation {result['federation_cost']:.3f} vs "
          f"oracle {result['oracle_cost']:.3f} "
          f"({result['quality_gap']:.2f}x, "
          f"{result['cross_shard_grants']} cross-shard grant(s))")
    assert result["cross_shard_grants"] >= 1, (
        "the quality stream never exercised the cross-shard two-phase path"
    )
    assert result["quality_gap"] <= MAX_QUALITY_GAP, (
        f"federated placement cost {result['federation_cost']:.3f} is "
        f"{result['quality_gap']:.2f}x the single-broker oracle's "
        f"{result['oracle_cost']:.3f} (bound {MAX_QUALITY_GAP}x)"
    )
