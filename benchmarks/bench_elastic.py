"""Elastic reallocation engine benchmarks (subsystem acceptance).

Two measurements, both recorded in ``BENCH_elastic.json`` at the repo
root (also via ``make bench-json``):

* **reconfigure-decision latency** — one full drift-tick decision
  (Algorithm 1/2 replanning over all three shapes + the cost/benefit
  gate) against the warmed 60-node paper cluster.  This is the work the
  broker does inline per ``reconfigure`` RPC and the DES scheduler does
  per drift trip, so it must stay cheap.  Acceptance floor:
  ≥ ``MIN_PLANS_PER_S`` decisions/second sustained.
* **static vs. elastic makespan** — the headline DES comparison (same
  drifting world, reconfiguration off vs. on).  Elastic must not lose:
  mean turnaround improvement ≥ 0 at the benchmark seed.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import run_once, scale
from repro.broker.metrics import percentile
from repro.core.policies import AllocationRequest
from repro.core.weights import TradeOff
from repro.elastic.cost import SnapshotMigrationCost
from repro.elastic.experiment import run_elastic_comparison
from repro.elastic.gate import PlanGate
from repro.elastic.plan import ReconfigPlanner
from repro.experiments.scenario import paper_scenario

#: acceptance floor, full plan+gate decisions per second (60 nodes)
MIN_PLANS_PER_S = 50.0

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"


def _merge_record(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_elastic.json."""
    record = {}
    if RECORD_PATH.exists():
        try:
            record = json.loads(RECORD_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            record = {}
    record[section] = payload
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def comparison_params() -> dict:
    s = scale()
    if s == "full":
        return dict(seed=3, n_nodes=16, n_jobs=8)
    if s == "smoke":
        return dict(seed=1, n_nodes=8, n_jobs=3, nodes_per_switch=4)
    return dict(seed=3, n_nodes=12, n_jobs=6)


def test_reconfigure_decision_latency(benchmark):
    """One drift-tick decision: replan all shapes, then gate the winner."""
    sc = paper_scenario(seed=7, warmup_s=1800.0)
    snapshot = sc.snapshot()
    planner = ReconfigPlanner()
    gate = PlanGate(SnapshotMigrationCost(snapshot))
    names = sorted(snapshot.nodes)[:2]
    procs = {n: 4 for n in names}
    request = AllocationRequest(
        n_processes=8, ppn=4, tradeoff=TradeOff.from_alpha(0.3)
    )
    latencies: list[float] = []

    def decide():
        import time as _t

        t0 = _t.perf_counter()
        plan = planner.propose(
            snapshot,
            lease_id="bench",
            nodes=names,
            procs=procs,
            request=request,
        )
        if plan is not None:
            gate.evaluate(plan, remaining_s=3600.0, now=0.0)
            gate.forget("bench")  # no cooldown: every round does full work
        latencies.append(_t.perf_counter() - t0)
        return plan

    benchmark(decide)
    lat = sorted(latencies)
    plans_per_s = len(lat) / sum(lat)
    payload = {
        "scale": scale(),
        "cluster_nodes": len(snapshot.nodes),
        "decisions": len(lat),
        "plans_per_s": plans_per_s,
        "decision_latency_ms": {
            "p50": percentile(lat, 0.50) * 1e3,
            "p99": percentile(lat, 0.99) * 1e3,
            "max": lat[-1] * 1e3,
        },
    }
    _merge_record("decision", payload)
    print(f"\nreconfigure decisions: {plans_per_s:.0f}/s "
          f"(p50 {payload['decision_latency_ms']['p50']:.2f} ms, "
          f"{len(snapshot.nodes)} nodes) -> {RECORD_PATH.name}")
    assert plans_per_s >= MIN_PLANS_PER_S, (
        f"decision rate {plans_per_s:.0f}/s below floor {MIN_PLANS_PER_S}"
    )


def test_static_vs_elastic_makespan(benchmark):
    """The headline claim: elastic beats static under drifting load."""
    params = comparison_params()
    seed = params.pop("seed")

    def compare():
        return run_elastic_comparison(seed=seed, **params)

    cmp = run_once(benchmark, compare)
    payload = {
        "scale": scale(),
        "seed": seed,
        **{k: v for k, v in params.items()},
        "static_makespan_s": cmp.static.stats.makespan_s,
        "elastic_makespan_s": cmp.elastic.stats.makespan_s,
        "static_turnaround_s": cmp.static.stats.mean_turnaround_s,
        "elastic_turnaround_s": cmp.elastic.stats.mean_turnaround_s,
        "turnaround_improvement_pct": cmp.turnaround_improvement_pct,
        "makespan_improvement_pct": cmp.makespan_improvement_pct,
        "reconfigs": cmp.elastic.reconfigs,
        "failed_migrations": cmp.elastic.failed_migrations,
    }
    _merge_record("comparison", payload)
    print(f"\nstatic vs elastic (seed {seed}): turnaround "
          f"{cmp.turnaround_improvement_pct:+.1f}%, makespan "
          f"{cmp.makespan_improvement_pct:+.1f}%, "
          f"{cmp.elastic.reconfigs} reconfigs -> {RECORD_PATH.name}")
    assert cmp.elastic.failed_migrations == 0
    assert cmp.turnaround_improvement_pct >= 0.0, (
        f"elastic lost to static by "
        f"{-cmp.turnaround_improvement_pct:.1f}% at seed {seed}"
    )
