"""Ablation — the O(V² log V) greedy heuristic vs exhaustive search.

§3.3.1 notes optimal allocation is NP-hard and motivates the greedy
candidate heuristic.  On clusters small enough to enumerate, we measure
how close the heuristic's Equation-4 objective and realized execution
time get to the brute-force optimum.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import (
    AllocationRequest,
    BruteForcePolicy,
    NetworkLoadAwarePolicy,
)
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import small_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement


@pytest.fixture(scope="module")
def comparison():
    sc = small_scenario(n_nodes=12, seed=31, warmup_s=3600.0, nodes_per_switch=4)
    request = AllocationRequest(n_processes=16, ppn=4, tradeoff=MINIMD_TRADEOFF)
    app_cfg = MiniMDConfig(timesteps=200)
    greedy_t, brute_t, matches = [], [], 0
    rounds = 6
    for _ in range(rounds):
        snapshot = sc.snapshot()
        greedy = NetworkLoadAwarePolicy().allocate(snapshot, request)
        brute = BruteForcePolicy().allocate(snapshot, request)
        if set(greedy.nodes) == set(brute.nodes):
            matches += 1
        for alloc, sink in ((greedy, greedy_t), (brute, brute_t)):
            job = SimJob(
                MiniMD(16, app_cfg), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            )
            sink.append(job.run().total_time_s)
        sc.advance(1200.0)
    return {
        "greedy_mean_s": float(np.mean(greedy_t)),
        "brute_mean_s": float(np.mean(brute_t)),
        "exact_matches": matches,
        "rounds": rounds,
    }


def test_greedy_close_to_optimal(benchmark, comparison):
    stats = run_once(benchmark, lambda: comparison)
    emit(
        "ablation_greedy_vs_optimal",
        f"greedy {stats['greedy_mean_s']:.3f}s vs optimal "
        f"{stats['brute_mean_s']:.3f}s; identical selections in "
        f"{stats['exact_matches']}/{stats['rounds']} rounds",
    )
    # The heuristic should stay within 25 % of the enumerated optimum.
    assert stats["greedy_mean_s"] <= 1.25 * stats["brute_mean_s"]
