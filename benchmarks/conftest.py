"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
same rows/series the paper reports.  Scale is controlled by ``REPRO_FULL``:

* default — the full §5 parameter grid with 3 repeats (minutes);
* ``REPRO_FULL=1`` — the paper's exact 5-repeat protocol (longer);
* ``REPRO_SMOKE=1`` — a reduced grid for CI smoke runs.

The expensive miniMD/miniFE grids are computed once per session and
shared by the figure- and table-benches that consume them (Fig 4 / Fig 5 /
Table 2 share one grid, exactly as in the paper).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import figures


def scale() -> str:
    if os.environ.get("REPRO_FULL"):
        return "full"
    if os.environ.get("REPRO_SMOKE"):
        return "smoke"
    return "default"


def grid_params(kind: str) -> dict:
    s = scale()
    if kind == "minimd":
        if s == "full":
            return dict(proc_counts=(8, 16, 32, 64), sizes=(8, 16, 24, 32, 40, 48), repeats=5)
        if s == "smoke":
            return dict(proc_counts=(8, 32), sizes=(16, 32), repeats=2)
        return dict(proc_counts=(8, 16, 32, 64), sizes=(8, 16, 24, 32, 40, 48), repeats=3)
    if kind == "minife":
        if s == "full":
            return dict(proc_counts=(8, 16, 32, 48), sizes=(48, 96, 144, 256, 384), repeats=5)
        if s == "smoke":
            return dict(proc_counts=(8, 32), sizes=(96, 256), repeats=2)
        return dict(proc_counts=(8, 16, 32, 48), sizes=(48, 96, 144, 256, 384), repeats=3)
    raise ValueError(kind)


@pytest.fixture(scope="session")
def minimd_grid():
    """The Figure 4 strong-scaling run (shared with Fig 5 and Table 2)."""
    return figures.fig4(seed=42, gap_s=600.0, **grid_params("minimd"))


@pytest.fixture(scope="session")
def minife_grid():
    """The Figure 6 strong-scaling run (shared with Table 3)."""
    return figures.fig6(seed=43, gap_s=600.0, **grid_params("minife"))


def run_once(benchmark, fn):
    """Record a single timed execution (these are minutes-long workloads)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def emit(name: str, text: str) -> None:
    """Print a rendered artefact and persist it under benchmarks/output/.

    pytest captures stdout, so the files are the reliable place to read
    the regenerated tables/figures after a ``--benchmark-only`` run.
    """
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
