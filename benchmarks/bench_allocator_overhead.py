"""§3.3.2 — allocator overhead on the 60-node cluster.

The paper reports "~1-2 ms" for Algorithms 1 + 2 in their C-era
implementation.  This bench measures both of our implementations end to
end (compute loads → network loads → |V| candidates → selection) on a
warm 60-node snapshot:

* the vectorized array path (default; snapshot-keyed ``LoadState`` plus
  NumPy Algorithm 1/2) against a 10 ms budget — in practice it lands in
  the paper's 1-2 ms range;
* the dict reference oracle against the original 100 ms budget;
* the O(V² log V) candidate-generation step alone, dict vs. array.

``make bench-json`` emits these timings as ``BENCH_allocator.json`` for
trajectory tracking across commits.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.arrays import generate_all_candidates_fast, load_state
from repro.core.candidate import generate_all_candidates
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_counts
from repro.core.network_load import network_loads
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import paper_scenario


@pytest.fixture(scope="module")
def snapshot():
    return paper_scenario(seed=9, warmup_s=1800.0).snapshot()


@pytest.fixture(scope="module")
def request_32():
    return AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)


def test_allocator_end_to_end_overhead(benchmark, snapshot, request_32):
    policy = NetworkLoadAwarePolicy()
    allocation = benchmark(lambda: policy.allocate(snapshot, request_32))
    assert sum(allocation.procs.values()) == 32
    # Array fast path on a warm (memoized) snapshot: 10 ms budget, 10x
    # tighter than the dict path's — actual means are ~1-2 ms.
    assert benchmark.stats["mean"] < 0.01


def test_allocator_reference_path_overhead(benchmark, snapshot, request_32):
    policy = NetworkLoadAwarePolicy(use_arrays=False)
    allocation = benchmark(lambda: policy.allocate(snapshot, request_32))
    assert sum(allocation.procs.values()) == 32
    # Interpreted Python on 1770 measured pairs: allow 100 ms.
    assert benchmark.stats["mean"] < 0.1


def test_reference_vs_fast_same_allocation(benchmark, snapshot, request_32):
    """The two implementations must agree on the paper snapshot."""

    def compare():
        fast = NetworkLoadAwarePolicy().allocate(snapshot, request_32)
        ref = NetworkLoadAwarePolicy(use_arrays=False).allocate(
            snapshot, request_32
        )
        return fast, ref

    fast, ref = run_once(benchmark, compare)
    assert fast.nodes == ref.nodes
    assert dict(fast.procs) == dict(ref.procs)
    for key in fast.metadata:
        assert abs(fast.metadata[key] - ref.metadata[key]) <= 1e-9, key


def test_candidate_generation_overhead(benchmark, snapshot, request_32):
    nodes = list(snapshot.nodes)
    cl = compute_loads(snapshot)
    nl = network_loads(snapshot)
    pc = effective_proc_counts(snapshot, ppn=4)

    candidates = benchmark(
        lambda: generate_all_candidates(
            nodes, cl, nl, pc, request_32.n_processes, request_32.tradeoff
        )
    )
    assert len(candidates) == len(nodes)


def test_candidate_generation_overhead_arrays(benchmark, snapshot, request_32):
    state = load_state(snapshot, nodes=list(snapshot.nodes), ppn=4)

    candidates = benchmark(
        lambda: generate_all_candidates_fast(
            state, request_32.n_processes, request_32.tradeoff
        )
    )
    assert len(candidates) == len(state.nodes)
