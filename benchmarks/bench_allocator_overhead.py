"""§3.3.2 — allocator overhead on the 60-node cluster.

The paper reports "~1-2 ms" for Algorithms 1 + 2 in their C-era
implementation; this bench measures our pure-Python allocator end to end
(compute loads → network loads → |V| candidates → selection) on a warm
60-node snapshot, plus the O(V² log V) candidate-generation step alone.
"""

import pytest

from repro.core.candidate import generate_all_candidates
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_counts
from repro.core.network_load import network_loads
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import paper_scenario


@pytest.fixture(scope="module")
def snapshot():
    return paper_scenario(seed=9, warmup_s=1800.0).snapshot()


def test_allocator_end_to_end_overhead(benchmark, snapshot):
    policy = NetworkLoadAwarePolicy()
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    allocation = benchmark(lambda: policy.allocate(snapshot, request))
    assert sum(allocation.procs.values()) == 32
    # Interpreted Python on 1770 measured pairs: allow 100 ms, report actual.
    assert benchmark.stats["mean"] < 0.1


def test_candidate_generation_overhead(benchmark, snapshot):
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    nodes = list(snapshot.nodes)
    cl = compute_loads(snapshot)
    nl = network_loads(snapshot)
    pc = effective_proc_counts(snapshot, ppn=4)

    candidates = benchmark(
        lambda: generate_all_candidates(
            nodes, cl, nl, pc, request.n_processes, request.tradeoff
        )
    )
    assert len(candidates) == len(nodes)
