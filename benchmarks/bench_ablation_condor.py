"""Ablation — HTCondor-style rank matchmaking vs the paper's algorithm.

§2: HTCondor's "ranking criterion is limited to local node attributes";
the paper's critique is that per-node ranks cannot see the network
between the selected nodes.  This bench quantifies that gap: a Condor
Rank preferring fast idle machines vs the network-and-load-aware
algorithm, on the comm-heavy miniMD and the alltoall-dominated FFT proxy.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.fft import FFT3D
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.experiments.scenario import paper_scenario
from repro.integrations.condor import CondorLikePolicy
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement


def run_pair(app, tradeoff, seed):
    sc = paper_scenario(seed=seed, warmup_s=3600.0)
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=tradeoff)
    ours_pol = NetworkLoadAwarePolicy()
    condor_pol = CondorLikePolicy()
    ours_t, condor_t = [], []
    for _ in range(4):
        snapshot = sc.snapshot()
        for pol, sink in ((ours_pol, ours_t), (condor_pol, condor_t)):
            alloc = pol.allocate(snapshot, request)
            sink.append(
                SimJob(
                    app, Placement.from_allocation(alloc),
                    sc.cluster, sc.network,
                ).run().total_time_s
            )
        sc.advance(900.0)
    return float(np.mean(ours_t)), float(np.mean(condor_t))


@pytest.fixture(scope="module")
def results():
    md = run_pair(MiniMD(16), MiniMD(16).recommended_tradeoff(), seed=71)
    fft = run_pair(FFT3D(128), FFT3D(128).recommended_tradeoff(), seed=72)
    return {"miniMD": md, "fft3d": fft}


def test_condor_rank_vs_network_aware(benchmark, results):
    res = run_once(benchmark, lambda: results)
    lines = ["Condor-style rank matchmaking vs network+load-aware:"]
    for app, (ours, condor) in res.items():
        gain = (1 - ours / condor) * 100
        lines.append(
            f"  {app:7s} ours {ours:7.3f}s  condor_rank {condor:7.3f}s  "
            f"gain {gain:5.1f}%"
        )
    emit("ablation_condor", "\n".join(lines))
    # The network term should pay off on both communication-heavy apps.
    for app, (ours, condor) in res.items():
        assert ours <= condor * 1.05, app
