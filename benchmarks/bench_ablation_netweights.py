"""Ablation — sensitivity to the w_lt/w_bw network-weight split.

The paper uses w_lt = 0.25, w_bw = 0.75 (Equation 2).  §3.2.2 argues
latency weight should rise for chatty low-volume programs and bandwidth
weight for bulky ones.  We verify the paper's setting is competitive
across the sweep for miniMD (which has both many small halo messages and
periodic bulky reneighbouring).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF, NetworkWeights
from repro.experiments.scenario import paper_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

W_LT_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def sweep():
    sc = paper_scenario(seed=23, warmup_s=3600.0)
    results = {w: [] for w in W_LT_VALUES}
    for _ in range(4):
        snapshot = sc.snapshot()
        for w_lt in W_LT_VALUES:
            request = AllocationRequest(
                n_processes=32,
                ppn=4,
                tradeoff=MINIMD_TRADEOFF,
                network_weights=NetworkWeights(w_lt=w_lt, w_bw=1.0 - w_lt),
            )
            alloc = NetworkLoadAwarePolicy().allocate(snapshot, request)
            job = SimJob(
                MiniMD(16), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            )
            results[w_lt].append(job.run().total_time_s)
        sc.advance(900.0)
    return {w: float(np.mean(v)) for w, v in results.items()}


def test_network_weight_sweep(benchmark, sweep):
    times = run_once(benchmark, lambda: sweep)
    lines = ["w_lt sweep, miniMD 32 procs s=16 (mean exec time s):"]
    for w, t in times.items():
        marker = " <- paper" if w == 0.25 else ""
        lines.append(f"  w_lt={w:.2f}  {t:8.3f}{marker}")
    emit("ablation_netweights", "\n".join(lines))
    assert times[0.25] <= 1.35 * min(times.values())
