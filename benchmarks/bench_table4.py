"""Table 4 — state of the allocated resource groups (§5.3 instance).

miniMD, 32 processes, 4 ppn, s = 16 (16K atoms).  Paper rows
(avg CPU load / avg BW complement / avg latency µs):
  random                 1.242 / 17.07 / 546.5
  sequential             1.262 / 10.72 / 304.3
  load-aware             0.453 / 18.64 / 354.5
  network-and-load-aware 0.633 /  5.36 /  82.9

Shape: the proposed algorithm's group has by far the lowest bandwidth
complement and latency, with CPU load between load-aware and the naive
baselines — and the fastest execution.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.experiments.scenario import paper_scenario
from repro.experiments.tables import table4


@pytest.fixture(scope="module")
def analysis():
    return table4(scenario=paper_scenario(seed=5, warmup_s=3600.0))


def test_table4_group_state(benchmark, analysis):
    result = run_once(benchmark, lambda: analysis)
    emit("table4", result.render())
    ours = result.group_state("network_load_aware")
    others = {
        p: result.group_state(p)
        for p in ("random", "sequential", "load_aware")
    }
    # Best connectivity among all policies.
    for p, st in others.items():
        assert (
            ours["avg_bandwidth_complement_mbs"]
            <= st["avg_bandwidth_complement_mbs"] + 1e-9
        ), p
        assert ours["avg_latency_us"] <= st["avg_latency_us"] + 1e-9, p
    # Load comparable to load-aware, far below random.
    assert ours["avg_cpu_load"] < others["random"]["avg_cpu_load"]


def test_table4_execution_ordering(benchmark, analysis):
    run_once(benchmark, lambda: None)
    times = {p: analysis.runs[p].time_s for p in analysis.runs}
    assert times["network_load_aware"] == min(times.values())
