"""Ablation — hierarchical (group-level) allocation vs the flat algorithm.

Implements the scalability adaptation §3.3.2/§6 suggest and measures both
the decision-time speedup and the allocation-quality cost on the paper
cluster (4 switch groups, 60 nodes).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minimd import MiniMD
from repro.core.policies import AllocationRequest, NetworkLoadAwarePolicy
from repro.core.policies.hierarchical import HierarchicalNetworkLoadAwarePolicy
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.scenario import paper_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement


@pytest.fixture(scope="module")
def comparison():
    sc = paper_scenario(seed=61, warmup_s=3600.0)
    request = AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF)
    flat_pol = NetworkLoadAwarePolicy()
    hier_pol = HierarchicalNetworkLoadAwarePolicy()
    rounds = 5
    out = {"flat": {"time": [], "decide": []},
           "hier": {"time": [], "decide": []}}
    for _ in range(rounds):
        snapshot = sc.snapshot()
        for key, pol in (("flat", flat_pol), ("hier", hier_pol)):
            t0 = time.perf_counter()
            alloc = pol.allocate(snapshot, request)
            out[key]["decide"].append(time.perf_counter() - t0)
            job = SimJob(
                MiniMD(16), Placement.from_allocation(alloc),
                sc.cluster, sc.network,
            )
            out[key]["time"].append(job.run().total_time_s)
        sc.advance(900.0)
    return {
        k: {m: float(np.mean(v)) for m, v in d.items()}
        for k, d in out.items()
    }


def test_hierarchical_quality_and_speed(benchmark, comparison):
    stats = run_once(benchmark, lambda: comparison)
    emit(
        "ablation_hierarchical",
        f"flat:         exec {stats['flat']['time']:.3f}s, "
        f"decision {stats['flat']['decide'] * 1e3:.2f} ms\n"
        f"hierarchical: exec {stats['hier']['time']:.3f}s, "
        f"decision {stats['hier']['decide'] * 1e3:.2f} ms",
    )
    # Group-level decisions give up little quality on a 4-switch cluster.
    assert stats["hier"]["time"] <= 1.5 * stats["flat"]["time"]
