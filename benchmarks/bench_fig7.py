"""Figure 7 — cluster state and per-policy node selections, one instance.

Renders the bandwidth-complement heatmap, the nodes each policy selected,
and the per-node CPU-load row, then checks the paper's two qualitative
observations: the proposed algorithm concentrates its selection
topologically (fewest switches) and avoids the most-loaded nodes.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.cluster.topology import paper_cluster
from repro.experiments.figures import fig7
from repro.experiments.scenario import paper_scenario


@pytest.fixture(scope="module")
def result():
    return fig7(scenario=paper_scenario(seed=5, warmup_s=3600.0))


def test_fig7_selection_analysis(benchmark, result):
    res = run_once(benchmark, lambda: result)
    emit("fig7", res.render())
    import os
    from benchmarks.conftest import OUTPUT_DIR
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    res.save_svg(os.path.join(OUTPUT_DIR, "fig7.svg"))

    _, topo = paper_cluster()

    def switches_used(policy):
        return len({topo.switch_of(n) for n in res.selections[policy]})

    # Paper: "network and load-aware algorithm automatically captures
    # topology as it has selected nodes which are topologically close".
    ours = switches_used("network_load_aware")
    assert ours <= switches_used("load_aware")
    assert ours <= switches_used("random")


def test_fig7_avoids_hot_nodes(benchmark, result):
    run_once(benchmark, lambda: None)
    load_by_node = dict(zip(result.nodes, result.cpu_load))
    chosen = result.selections["network_load_aware"]
    chosen_mean = np.mean([load_by_node[n] for n in chosen])
    cluster_mean = np.mean(result.cpu_load)
    assert chosen_mean <= cluster_mean + 1e-9
