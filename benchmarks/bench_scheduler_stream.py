"""Extension — job-stream scheduling: policy impact on queue metrics.

The paper evaluates one allocation at a time; a deployed broker serves a
queue.  This bench replays the same Poisson stream of miniMD/miniFE jobs
through the scheduler under each §5 policy and compares mean turnaround
— allocation quality compounds across a stream because bad placements
occupy the cluster for longer.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.minife import MiniFE, MiniFEConfig
from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.core.policies import PAPER_POLICIES
from repro.experiments.scenario import paper_scenario
from repro.scheduler import ClusterScheduler, JobRequest

N_JOBS = 10


def job_stream(rng):
    """A reproducible mixed stream of paper workloads."""
    jobs = []
    t = 0.0
    for _ in range(N_JOBS):
        t += float(rng.exponential(20.0))
        if rng.uniform() < 0.5:
            app = MiniMD(16, MiniMDConfig(timesteps=500))
        else:
            app = MiniFE(96, config=MiniFEConfig(cg_iterations=100))
        procs = int(rng.choice([16, 24, 32]))
        jobs.append((t, app, procs))
    return jobs


def run_stream(policy_name, seed=81):
    sc = paper_scenario(seed=seed, warmup_s=1800.0)
    stream_rng = np.random.default_rng(99)  # same stream for every policy
    sched = ClusterScheduler(
        sc.engine,
        sc.workload,
        sc.network,
        sc.snapshot,
        policy=PAPER_POLICIES[policy_name](),
        rng=sc.streams.child("stream"),
    )
    base = sc.engine.now
    for offset, app, procs in job_stream(stream_rng):
        sched.submit(
            JobRequest(app=app, n_processes=procs, ppn=4,
                       submit_time=base + offset)
        )
    return sched.drain()


@pytest.fixture(scope="module")
def stream_results():
    return {name: run_stream(name) for name in PAPER_POLICIES}


def test_job_stream_by_policy(benchmark, stream_results):
    results = run_once(benchmark, lambda: stream_results)
    lines = [
        f"{N_JOBS}-job stream (identical arrivals) per allocation policy:",
        f"{'policy':>20s}  {'makespan':>9s}  {'mean wait':>9s}  "
        f"{'turnaround':>10s}",
    ]
    for name, st in results.items():
        lines.append(
            f"{name:>20s}  {st.makespan_s:9.1f}  {st.mean_wait_s:9.1f}  "
            f"{st.mean_turnaround_s:10.1f}"
        )
    emit("scheduler_stream", "\n".join(lines))
    ours = results["network_load_aware"]
    rnd = results["random"]
    # Better placements finish jobs sooner across the whole stream.
    assert ours.mean_turnaround_s < rnd.mean_turnaround_s


def test_every_stream_completes(benchmark, stream_results):
    run_once(benchmark, lambda: None)
    for name, st in stream_results.items():
        assert st.n_jobs == N_JOBS, name
