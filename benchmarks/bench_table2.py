"""Table 2 — percentage gains of the algorithm for miniMD (+ §5.1 CoV).

Paper values (average / median / maximum gain):
  random      49.9 / 50.7 / 87.8
  sequential  43.1 / 42.1 / 84.5
  load-aware  32.4 / 29.8 / 87.7
CoV: 0.07 (ours) vs 0.13 (load-aware) vs 0.27 (sequential).

Shape checks: positive double-digit average gains over every baseline,
and the proposed algorithm has the most stable run times.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table2


def test_table2_minimd_gains(benchmark, minimd_grid):
    result = run_once(benchmark, lambda: table2(minimd_grid))
    emit("table2", result.render(table_no=2))
    for baseline, stats in result.gains.items():
        assert stats.average > 10.0, f"{baseline}: {stats.average}"
        assert stats.maximum > 40.0, f"{baseline}: {stats.maximum}"
    # random should be the weakest baseline, as in the paper
    assert result.gains["random"].average >= result.gains["load_aware"].average - 15.0


def test_table2_cov_stability(benchmark, minimd_grid):
    run_once(benchmark, lambda: None)
    cov = table2(minimd_grid).cov
    # Paper: the proposed algorithm selects "a stable set of nodes".
    assert cov["network_load_aware"] == min(cov.values())
