"""Fleet-wide elastic optimizer benchmarks (subsystem acceptance).

Three measurements, all recorded in ``BENCH_fleet.json`` at the repo
root (also via ``make bench-json``):

* **fleet-pass rate** — one full broker-side ``fleet_plan`` dry-run
  pass (snapshot, per-lease replanning, gating, ordering) against the
  warmed 60-node paper cluster with active leases.  This is what a
  control loop pays per pass, so it must stay interactive.  Acceptance
  floor: ≥ ``MIN_PASSES_PER_S`` passes/second sustained.
* **optimizer objective invariant** — the greedy + swap-refinement pass
  over randomized fleet snapshots must never decrease the fleet
  objective ("never worse than per-job-elastic by construction").
* **three-way comparison** — the headline DES claim: fleet-elastic
  beats (or ties) per-job elastic, and both beat static, on turnaround
  and utilization at the benchmark seed.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from benchmarks.conftest import run_once, scale
from repro.broker.metrics import percentile
from repro.broker.protocol import AllocateParams, FleetPlanParams
from repro.broker.service import BrokerService
from repro.experiments.scenario import paper_scenario
from repro.fleet.experiment import run_fleet_comparison
from repro.fleet.optimizer import (
    FleetJobState,
    FleetOptimizer,
    PendingJobState,
)
from repro.fleet.utility import curve_for_class
from repro.monitor.snapshot import CachedSnapshotSource

#: acceptance floor, full dry-run fleet passes per second (60 nodes)
MIN_PASSES_PER_S = 20.0

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _merge_record(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_fleet.json."""
    record = {}
    if RECORD_PATH.exists():
        try:
            record = json.loads(RECORD_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            record = {}
    record[section] = payload
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def comparison_params() -> dict:
    s = scale()
    if s == "full":
        return dict(seed=2, warmup_s=900.0)
    if s == "smoke":
        return dict(seed=2, n_jobs=4, warmup_s=600.0, app_timesteps=8000)
    return dict(seed=2, warmup_s=900.0)


def test_fleet_pass_rate(benchmark):
    """One dry-run fleet pass over the paper cluster with 8 live jobs."""
    sc = paper_scenario(seed=7, warmup_s=1800.0)
    source = CachedSnapshotSource(
        sc.snapshot, max_age_s=5.0, clock=lambda: sc.engine.now
    )
    service = BrokerService(
        source, clock=lambda: sc.engine.now, default_ttl_s=3600.0
    )
    for _ in range(8):
        out = service.allocate_batch(
            [AllocateParams(n_processes=8, ppn=4, alpha=0.3, ttl_s=3600.0)]
        )[0]
        assert isinstance(out, dict), f"setup allocate failed: {out}"
    params = FleetPlanParams(dry_run=True, max_actions=8)
    # Steady-state rate is the claim: the first pass pays the one-time
    # snapshot + load-state builds every later pass reuses (production
    # brokers run passes against the same cached snapshot identity).
    for _ in range(2):
        service.fleet_plan(params)
    latencies: list[float] = []

    def one_pass():
        import time as _t

        t0 = _t.perf_counter()
        result = service.fleet_plan(params)
        latencies.append(_t.perf_counter() - t0)
        return result

    result = benchmark(one_pass)
    assert result["considered"] == 8
    assert result["applied"] == 0  # dry run must not move anything
    lat = sorted(latencies)
    passes_per_s = len(lat) / sum(lat)
    snapshot = source()
    payload = {
        "scale": scale(),
        "cluster_nodes": len(snapshot.nodes),
        "leases": 8,
        "passes": len(lat),
        "passes_per_s": passes_per_s,
        "pass_latency_ms": {
            "p50": percentile(lat, 0.50) * 1e3,
            "p99": percentile(lat, 0.99) * 1e3,
            "max": lat[-1] * 1e3,
        },
    }
    _merge_record("pass_rate", payload)
    print(f"\nfleet passes: {passes_per_s:.0f}/s "
          f"(p50 {payload['pass_latency_ms']['p50']:.2f} ms, "
          f"{len(snapshot.nodes)} nodes, 8 leases) -> {RECORD_PATH.name}")
    assert passes_per_s >= MIN_PASSES_PER_S, (
        f"pass rate {passes_per_s:.0f}/s below floor {MIN_PASSES_PER_S}"
    )


def test_optimizer_never_degrades_objective(benchmark):
    """Greedy + swap refinement: objective after ≥ objective before."""
    n_snapshots = 20 if scale() == "smoke" else 100
    optimizer = FleetOptimizer()

    def build(seed: int) -> tuple[list, list, int]:
        rng = random.Random(seed)
        capacity = rng.choice((32, 64, 128))
        jobs = [
            FleetJobState(
                job_id=f"j{i}",
                ranks=rng.choice((2, 4, 8)),
                curve=curve_for_class(f"class-{rng.randrange(6)}"),
                min_ranks=1,
                max_ranks=rng.choice((8, 16, None)),
                weight=rng.choice((0.5, 1.0, 2.0)),
            )
            for i in range(rng.randrange(1, 9))
        ]
        pending = [
            PendingJobState(
                job_id=f"p{i}",
                ranks=rng.choice((2, 4, 8)),
                curve=curve_for_class(f"class-{rng.randrange(6)}"),
                wait_s=60.0 * i,
            )
            for i in range(rng.randrange(0, 4))
        ]
        return jobs, pending, capacity

    worst_gain = float("inf")
    total_actions = 0

    def sweep():
        nonlocal worst_gain, total_actions
        worst_gain = float("inf")
        total_actions = 0
        for seed in range(n_snapshots):
            jobs, pending, capacity = build(seed)
            result = optimizer.optimize(jobs, pending, capacity)
            worst_gain = min(worst_gain, result.objective_gain)
            total_actions += len(result.actions)
        return worst_gain

    run_once(benchmark, sweep)
    payload = {
        "scale": scale(),
        "snapshots": n_snapshots,
        "total_actions": total_actions,
        "worst_objective_gain": worst_gain,
    }
    _merge_record("optimizer_invariant", payload)
    print(f"\noptimizer invariant: worst gain {worst_gain:+.6f} over "
          f"{n_snapshots} snapshots ({total_actions} actions) "
          f"-> {RECORD_PATH.name}")
    assert worst_gain >= 0.0, (
        f"a fleet pass degraded the objective by {worst_gain:+.6f}"
    )


def test_fleet_three_way_comparison(benchmark):
    """Fleet ≥ elastic ≥ static on turnaround; fleet util ≥ elastic."""
    params = comparison_params()
    seed = params.pop("seed")

    def compare():
        return run_fleet_comparison(seed=seed, **params)

    cmp = run_once(benchmark, compare)
    payload = {
        "scale": scale(),
        "seed": seed,
        **{k: v for k, v in params.items()},
        "static_turnaround_s": cmp.static.stats.mean_turnaround_s,
        "elastic_turnaround_s": cmp.elastic.stats.mean_turnaround_s,
        "fleet_turnaround_s": cmp.fleet.stats.mean_turnaround_s,
        "elastic_vs_static_pct": cmp.elastic_vs_static_pct,
        "fleet_vs_static_pct": cmp.fleet_vs_static_pct,
        "fleet_vs_elastic_pct": cmp.fleet_vs_elastic_pct,
        "fleet_utilization_delta": cmp.fleet_utilization_delta,
        "fleet_passes": cmp.fleet.fleet_passes,
        "fleet_actions": cmp.fleet.fleet_actions,
    }
    _merge_record("comparison", payload)
    print(f"\nfleet comparison (seed {seed}): fleet vs elastic "
          f"{cmp.fleet_vs_elastic_pct:+.1f}%, vs static "
          f"{cmp.fleet_vs_static_pct:+.1f}%, utilization "
          f"{cmp.fleet_utilization_delta:+.3f} -> {RECORD_PATH.name}")
    assert cmp.fleet.failed_migrations == 0
    assert cmp.elastic_vs_static_pct > 0.0
    assert cmp.fleet_vs_static_pct > 0.0
    # ties are exact 0.0 when no fleet action commits; never worse
    assert cmp.fleet_vs_elastic_pct >= 0.0, (
        f"fleet lost to per-job elastic by "
        f"{-cmp.fleet_vs_elastic_pct:.2f}% at seed {seed}"
    )
    assert cmp.fleet_utilization_delta >= 0.0
