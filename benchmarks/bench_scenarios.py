"""Scenario-zoo benchmarks (matrix acceptance).

Two measurements per registered scenario, recorded in
``BENCH_scenarios.json`` at the repo root (also via ``make bench-json``):

* **Eq-4 quality** — every policy allocates from the same snapshot and
  is scored with the shared-normalisation Equation-4 metric
  (:mod:`repro.scenarios.quality`).  Acceptance floor: the
  network-load-aware allocator never scores worse than the random or
  sequential baselines, on any scenario in the matrix.
* **decision latency** — wall time of one warm network-load-aware
  allocation on the scenario's cluster.  Acceptance floor: p99 below
  ``MAX_DECISION_MS`` everywhere — exotic topologies (BFS routing,
  redundant links) must not blow up the allocate hot path.

``REPRO_SMOKE=1`` sweeps the smoke cells only; default and
``REPRO_FULL=1`` sweep the whole registry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.broker.metrics import percentile
from repro.core.policies import PAPER_POLICIES
from repro.scenarios import get_scenario, list_scenarios
from repro.scenarios.quality import policy_quality

#: network_load_aware's mean Eq-4 score may not exceed either baseline's
#: (ratio vs baseline must stay ≤ 1.0 on every scenario)
MAX_QUALITY_RATIO = 1.0

#: p99 of one warm network-load-aware allocation, milliseconds
MAX_DECISION_MS = 50.0

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def _merge_record(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_scenarios.json."""
    record = {}
    if RECORD_PATH.exists():
        try:
            record = json.loads(RECORD_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            record = {}
    record[section] = payload
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def matrix() -> list[str]:
    return list_scenarios(smoke_only=scale() == "smoke")


def test_scenario_quality_matrix(benchmark):
    """Eq-4 allocate-vs-baselines quality on every scenario."""
    names = matrix()

    def sweep():
        return {
            name: policy_quality(name, seed=0, rounds=3, warmup_s=300.0)
            for name in names
        }

    results = run_once(benchmark, sweep)
    payload = {"scale": scale(), "scenarios": {}}
    worst = ("", 0.0)
    for name, q in results.items():
        nla = q["network_load_aware"]
        ratios = {
            b: (nla / q[b] if q[b] > 0 else 1.0)
            for b in ("random", "sequential")
        }
        payload["scenarios"][name] = {
            "eq4_scores": q,
            "ratio_vs_random": ratios["random"],
            "ratio_vs_sequential": ratios["sequential"],
        }
        peak = max(ratios.values())
        if peak > worst[1]:
            worst = (name, peak)
    payload["worst_ratio"] = {"scenario": worst[0], "ratio": worst[1]}
    _merge_record("quality", payload)
    print(f"\nscenario quality: worst allocate/baseline Eq-4 ratio "
          f"{worst[1]:.3f} on {worst[0]!r} over {len(names)} scenario(s) "
          f"-> {RECORD_PATH.name}")
    for name, cell in payload["scenarios"].items():
        assert cell["ratio_vs_random"] <= MAX_QUALITY_RATIO, (
            f"{name}: network_load_aware lost to random "
            f"({cell['ratio_vs_random']:.3f}x)"
        )
        assert cell["ratio_vs_sequential"] <= MAX_QUALITY_RATIO, (
            f"{name}: network_load_aware lost to sequential "
            f"({cell['ratio_vs_sequential']:.3f}x)"
        )


def test_scenario_decision_latency(benchmark):
    """Warm network-load-aware allocate latency on every scenario."""
    names = matrix()
    repeats = 20 if scale() == "smoke" else 50

    def sweep():
        out = {}
        for name in names:
            spec = get_scenario(name)
            sc = spec.build(seed=0, warmup_s=300.0)
            rng = sc.streams.child("bench")
            request = spec.request(8, ppn=4)
            snapshot = sc.snapshot()
            policy = PAPER_POLICIES["network_load_aware"]()
            policy.allocate(snapshot, request, rng=rng)  # warm caches
            lat = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                policy.allocate(snapshot, request, rng=rng)
                lat.append(time.perf_counter() - t0)
            out[name] = {
                "nodes": len(snapshot.nodes),
                "p50_ms": percentile(lat, 0.50) * 1e3,
                "p99_ms": percentile(lat, 0.99) * 1e3,
                "mean_ms": float(np.mean(lat)) * 1e3,
            }
        return out

    results = run_once(benchmark, sweep)
    worst = max(results.items(), key=lambda kv: kv[1]["p99_ms"])
    payload = {
        "scale": scale(),
        "repeats": repeats,
        "scenarios": results,
        "worst_p99_ms": {
            "scenario": worst[0], "p99_ms": worst[1]["p99_ms"],
        },
    }
    _merge_record("decision_latency", payload)
    print(f"\nscenario decision latency: worst p99 "
          f"{worst[1]['p99_ms']:.2f} ms on {worst[0]!r} "
          f"({worst[1]['nodes']} nodes) -> {RECORD_PATH.name}")
    for name, cell in results.items():
        assert cell["p99_ms"] <= MAX_DECISION_MS, (
            f"{name}: allocate p99 {cell['p99_ms']:.2f} ms over floor "
            f"{MAX_DECISION_MS} ms"
        )
