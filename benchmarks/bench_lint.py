"""Lint-pass latency guard: the full-repo analysis must stay interactive.

``python -m repro lint`` runs in every CI job and is meant to be run
reflexively before each commit; the RACE family added whole-function
CFG construction per async def, so this bench pins the end-to-end cost
of linting the entire repository.  The floor is deliberately generous —
10 s wall for the whole tree — because the point is to catch an
accidental complexity blow-up (e.g. a rule going quadratic in file
count), not to micro-tune the walker.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.analysis.engine import lint_project
from repro.analysis.source import Project

ROOT = Path(__file__).resolve().parent.parent

#: CI floor: one full-repo lint pass, wall-clock seconds
FULL_REPO_BUDGET_S = 10.0


def test_full_repo_lint_under_budget(benchmark):
    project = Project.load(ROOT, [ROOT / "src"])

    def one_pass():
        start = time.perf_counter()
        findings = lint_project(project)
        elapsed = time.perf_counter() - start
        return elapsed, len(project.files), findings

    elapsed, n_files, findings = run_once(benchmark, one_pass)
    print(
        f"\nlint pass: {n_files} file(s), {len(findings)} finding(s), "
        f"{elapsed:.2f}s (budget {FULL_REPO_BUDGET_S:.0f}s)"
    )
    assert n_files > 100, "project loader lost most of the tree"
    assert elapsed < FULL_REPO_BUDGET_S, (
        f"full-repo lint took {elapsed:.2f}s — over the "
        f"{FULL_REPO_BUDGET_S:.0f}s interactivity budget"
    )


def test_race_family_alone_is_a_fraction_of_the_pass(benchmark):
    """The concurrency rules must not dominate the whole lint pass."""
    from repro.analysis import race

    project = Project.load(ROOT, [ROOT / "src"])

    def race_only():
        start = time.perf_counter()
        findings = []
        for file in project.files:
            findings.extend(race.check(file))
        return time.perf_counter() - start, findings

    elapsed, findings = run_once(benchmark, race_only)
    print(f"\nRACE-only pass: {elapsed:.2f}s, {len(findings)} raw finding(s)")
    assert elapsed < FULL_REPO_BUDGET_S / 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-s"]))
