"""Dependency-free SVG rendering of the paper's figures.

matplotlib is unavailable offline, so this tiny renderer produces the
line charts (Fig 1/2b/4/6), heatmaps (Fig 2a/7) and bar charts (Fig 5)
as standalone ``.svg`` files from plain Python.
"""

from repro.viz.svg import SvgCanvas, bar_chart, heatmap, line_chart

__all__ = ["SvgCanvas", "bar_chart", "heatmap", "line_chart"]
