"""Minimal SVG chart primitives (no third-party plotting available).

Three chart builders cover every figure shape in the paper:

* :func:`line_chart`  — multi-series time/size series (Fig 1, 2b, 4, 6)
* :func:`heatmap`     — matrix shading (Fig 2a, 7)
* :func:`bar_chart`   — per-category values (Fig 5)

Each returns a complete ``<svg>`` document string; pass ``path`` to also
write the file.  Output is deliberately simple — axes, ticks, legend —
and valid standalone SVG 1.1.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Sequence

#: categorical series colours (colour-blind-safe Okabe-Ito subset)
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9")


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2g}"
    return f"{v:.3g}"


class SvgCanvas:
    """Accumulates SVG elements; renders a standalone document."""

    def __init__(self, width: int = 640, height: int = 400) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._parts: list[str] = []

    def line(self, x1, y1, x2, y2, *, stroke="#333", width=1.0) -> None:
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def polyline(self, points, *, stroke="#0072B2", width=1.5) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def rect(self, x, y, w, h, *, fill="#ccc", stroke="none") -> None:
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def text(
        self, x, y, content, *, size=11, anchor="start", fill="#222",
        rotate: float | None = None,
    ) -> None:
        transform = (
            f' transform="rotate({rotate:.0f} {x:.1f} {y:.1f})"'
            if rotate is not None
            else ""
        )
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif"{transform}>{_esc(content)}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def _save(svg: str, path: str | Path | None) -> str:
    if path is not None:
        Path(path).write_text(svg)
    return svg


def _axes(canvas: SvgCanvas, box, x_range, y_range, title, x_label, y_label):
    x0, y0, x1, y1 = box  # plot rectangle (y0 = top)
    canvas.line(x0, y1, x1, y1)  # x axis
    canvas.line(x0, y0, x0, y1)  # y axis
    if title:
        canvas.text(
            (x0 + x1) / 2, 16, title, size=13, anchor="middle"
        )
    if x_label:
        canvas.text((x0 + x1) / 2, y1 + 32, x_label, anchor="middle")
    if y_label:
        canvas.text(14, (y0 + y1) / 2, y_label, anchor="middle", rotate=-90)
    lo_x, hi_x = x_range
    lo_y, hi_y = y_range
    for i in range(5):
        frac = i / 4
        xv = lo_x + frac * (hi_x - lo_x)
        xp = x0 + frac * (x1 - x0)
        canvas.line(xp, y1, xp, y1 + 4)
        canvas.text(xp, y1 + 16, _fmt(xv), size=9, anchor="middle")
        yv = lo_y + frac * (hi_y - lo_y)
        yp = y1 - frac * (y1 - y0)
        canvas.line(x0 - 4, yp, x0, yp)
        canvas.text(x0 - 6, yp + 3, _fmt(yv), size=9, anchor="end")


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 400,
    path: str | Path | None = None,
) -> str:
    """Multi-series line chart: ``{name: (xs, ys)}``."""
    if not series:
        raise ValueError("line_chart needs at least one series")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
    all_x = [v for xs, _ in series.values() for v in xs]
    all_y = [v for _, ys in series.values() for v in ys]
    lo_x, hi_x = min(all_x), max(all_x)
    lo_y, hi_y = min(min(all_y), 0.0), max(all_y)
    if hi_x == lo_x:
        hi_x = lo_x + 1.0
    if hi_y == lo_y:
        hi_y = lo_y + 1.0
    canvas = SvgCanvas(width, height)
    box = (56.0, 28.0, width - 130.0, height - 44.0)
    x0, y0, x1, y1 = box

    def px(v):
        return x0 + (v - lo_x) / (hi_x - lo_x) * (x1 - x0)

    def py(v):
        return y1 - (v - lo_y) / (hi_y - lo_y) * (y1 - y0)

    _axes(canvas, box, (lo_x, hi_x), (lo_y, hi_y), title, x_label, y_label)
    for k, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[k % len(PALETTE)]
        canvas.polyline(
            [(px(x), py(y)) for x, y in zip(xs, ys)], stroke=color
        )
        ly = 40 + 16 * k
        canvas.line(x1 + 8, ly - 4, x1 + 26, ly - 4, stroke=color, width=2)
        canvas.text(x1 + 30, ly, name, size=10)
    return _save(canvas.render(), path)


def heatmap(
    matrix: Sequence[Sequence[float]],
    *,
    labels: Sequence[str] | None = None,
    title: str = "",
    invert: bool = False,
    width: int = 640,
    height: int = 640,
    path: str | Path | None = None,
) -> str:
    """Matrix shading; NaN cells render light grey. ``invert`` darkens lows."""
    rows = [list(r) for r in matrix]
    if not rows or not rows[0]:
        raise ValueError("heatmap needs a non-empty matrix")
    n_r, n_c = len(rows), len(rows[0])
    if any(len(r) != n_c for r in rows):
        raise ValueError("heatmap rows must have equal length")
    finite = [v for r in rows for v in r if not math.isnan(v)]
    lo = min(finite) if finite else 0.0
    hi = max(finite) if finite else 1.0
    span = hi - lo or 1.0
    canvas = SvgCanvas(width, height)
    box = (90.0, 30.0, width - 16.0, height - 60.0)
    x0, y0, x1, y1 = box
    cw, ch = (x1 - x0) / n_c, (y1 - y0) / n_r
    if title:
        canvas.text((x0 + x1) / 2, 18, title, size=13, anchor="middle")
    for i, row in enumerate(rows):
        for j, v in enumerate(row):
            if math.isnan(v):
                fill = "#eeeeee"
            else:
                frac = (v - lo) / span
                if invert:
                    frac = 1.0 - frac
                shade = int(245 - frac * 215)
                fill = f"rgb({shade},{shade},{shade})"
            canvas.rect(x0 + j * cw, y0 + i * ch, cw + 0.5, ch + 0.5, fill=fill)
        if labels is not None:
            canvas.text(
                x0 - 5, y0 + i * ch + ch * 0.7, labels[i], size=8, anchor="end"
            )
    canvas.text(x0, y1 + 20, f"min {_fmt(lo)}", size=10)
    canvas.text(x1, y1 + 20, f"max {_fmt(hi)}", size=10, anchor="end")
    return _save(canvas.render(), path)


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    y_label: str = "",
    width: int = 520,
    height: int = 360,
    path: str | Path | None = None,
) -> str:
    """Single-series bar chart: ``{category: value}`` (Fig 5 shape)."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    hi = max(max(values.values()), 1e-12)
    canvas = SvgCanvas(width, height)
    box = (56.0, 30.0, width - 20.0, height - 70.0)
    x0, y0, x1, y1 = box
    _axes(canvas, box, (0, len(values)), (0.0, hi), title, "", y_label)
    n = len(values)
    slot = (x1 - x0) / n
    for k, (name, v) in enumerate(values.items()):
        bh = (v / hi) * (y1 - y0)
        bx = x0 + k * slot + slot * 0.15
        canvas.rect(
            bx, y1 - bh, slot * 0.7, bh, fill=PALETTE[k % len(PALETTE)]
        )
        canvas.text(
            bx + slot * 0.35, y1 + 14, name, size=9, anchor="middle",
            rotate=-20,
        )
        canvas.text(
            bx + slot * 0.35, y1 - bh - 4, _fmt(v), size=9, anchor="middle"
        )
    return _save(canvas.render(), path)
