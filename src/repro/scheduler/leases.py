"""Lease lifecycle — TTL-bounded node grants with exactly-once reclaim.

The one-shot :class:`~repro.core.broker.ResourceBroker` hands out node
sets and forgets them; the scheduler's :class:`ClusterScheduler` frees
nodes when the *simulation* says a job ended.  A persistent service can
rely on neither: real clients crash, lose network, or simply never call
``release``.  Leases close that hole the way DHCP does — every grant
carries a TTL, staying alive requires periodic renewal, and an expiry
sweep reclaims the nodes of any lease whose clock ran out.

Invariants enforced here (and locked in by ``tests/broker/test_leases.py``):

* a lease's nodes are counted as held exactly while the lease is in the
  table — expiry, ``release`` and the sweeper all *remove* the lease, so
  nodes can never be reclaimed twice;
* ``release``/``renew`` of an unknown or already-reclaimed lease raise a
  structured :class:`LeaseError` (``UNKNOWN_LEASE``) instead of crashing
  the service;
* ``renew`` of a lease whose TTL already elapsed is rejected
  (``EXPIRED_LEASE``) and reclaims the nodes immediately — a client that
  slept through its TTL must re-allocate, it cannot resurrect the grant.

The clock is injected (any ``() -> float`` callable), so tests drive
expiry deterministically without real-time sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping


class LeaseError(Exception):
    """A lease operation that cannot be honored.

    ``code`` is a wire-level error string (``UNKNOWN_LEASE`` or
    ``EXPIRED_LEASE``) so the broker protocol can forward it verbatim.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Lease:
    """One granted allocation with its expiry bookkeeping."""

    lease_id: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]
    granted_at: float
    expires_at: float
    ttl_s: float
    renewals: int = 0
    #: §5 policy name that produced the allocation (for status/debugging)
    policy: str = "network_load_aware"

    def expired(self, now: float) -> bool:
        """Whether the TTL has elapsed at time ``now``."""
        return now >= self.expires_at

    def remaining_s(self, now: float) -> float:
        """Seconds of TTL left (0 when expired)."""
        return max(0.0, self.expires_at - now)


@dataclass
class LeaseTable:
    """All live leases, keyed by id, with injected time.

    ``clock`` supplies "now" for grants, renewals and expiry checks;
    production passes ``time.monotonic``, tests pass a fake.  TTLs are
    clamped to ``[min_ttl_s, max_ttl_s]`` so a client can neither pin
    nodes forever nor thrash the sweeper with microscopic leases.
    """

    clock: Callable[[], float]
    default_ttl_s: float = 60.0
    min_ttl_s: float = 1.0
    max_ttl_s: float = 3600.0
    _leases: dict[str, Lease] = field(default_factory=dict)
    _held: dict[str, str] = field(default_factory=dict)  # node -> lease_id
    _next_id: int = 1

    def __post_init__(self) -> None:
        if not (0 < self.min_ttl_s <= self.default_ttl_s <= self.max_ttl_s):
            raise ValueError(
                "need 0 < min_ttl_s <= default_ttl_s <= max_ttl_s, got "
                f"{self.min_ttl_s}/{self.default_ttl_s}/{self.max_ttl_s}"
            )

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def get(self, lease_id: str) -> Lease | None:
        """The live lease with this id, or ``None``."""
        return self._leases.get(lease_id)

    def active(self) -> list[Lease]:
        """All live leases (including ones the sweeper hasn't visited)."""
        return list(self._leases.values())

    def held_nodes(self) -> frozenset[str]:
        """Nodes currently held by any live lease."""
        return frozenset(self._held)

    def clamp_ttl(self, ttl_s: float | None) -> float:
        """The effective TTL for a requested (possibly ``None``) TTL."""
        if ttl_s is None:
            return self.default_ttl_s
        return min(max(ttl_s, self.min_ttl_s), self.max_ttl_s)

    # -- lifecycle ------------------------------------------------------
    def grant(
        self,
        nodes: Iterable[str],
        procs: Mapping[str, int],
        *,
        ttl_s: float | None = None,
        policy: str = "network_load_aware",
    ) -> Lease:
        """Create a lease over ``nodes``; they must not be held already."""
        node_tuple = tuple(nodes)
        conflict = [n for n in node_tuple if n in self._held]
        if conflict:
            raise LeaseError(
                "INTERNAL",
                f"nodes already held by another lease: {conflict}",
            )
        now = self.clock()
        ttl = self.clamp_ttl(ttl_s)
        lease = Lease(
            lease_id=f"L{self._next_id:08d}",
            nodes=node_tuple,
            procs=dict(procs),
            granted_at=now,
            expires_at=now + ttl,
            ttl_s=ttl,
            policy=policy,
        )
        self._next_id += 1
        self._leases[lease.lease_id] = lease
        for n in node_tuple:
            self._held[n] = lease.lease_id
        return lease

    def renew(self, lease_id: str, *, ttl_s: float | None = None) -> Lease:
        """Extend a live lease's TTL from *now*; returns the new lease.

        Raises ``LeaseError(UNKNOWN_LEASE)`` for ids not in the table and
        ``LeaseError(EXPIRED_LEASE)`` — reclaiming the nodes — when the
        lease's TTL already elapsed.
        """
        lease = self._require(lease_id)
        now = self.clock()
        if lease.expired(now):
            self._evict(lease)
            raise LeaseError(
                "EXPIRED_LEASE",
                f"lease {lease_id} expired at t={lease.expires_at:.3f} "
                f"(now t={now:.3f}); re-allocate",
            )
        ttl = self.clamp_ttl(ttl_s if ttl_s is not None else lease.ttl_s)
        renewed = replace(
            lease,
            expires_at=now + ttl,
            ttl_s=ttl,
            renewals=lease.renewals + 1,
        )
        self._leases[lease_id] = renewed
        return renewed

    def release(self, lease_id: str) -> Lease:
        """End a lease and free its nodes; returns the released lease.

        A second ``release`` of the same id — or a release after the
        sweeper reclaimed it — raises ``LeaseError(UNKNOWN_LEASE)``.
        Releasing a lease that expired but was not swept yet reclaims the
        nodes (exactly once) and raises ``LeaseError(EXPIRED_LEASE)`` so
        the caller learns its grant had already lapsed.
        """
        lease = self._require(lease_id)
        self._evict(lease)
        if lease.expired(self.clock()):
            raise LeaseError(
                "EXPIRED_LEASE",
                f"lease {lease_id} had already expired; nodes reclaimed",
            )
        return lease

    def sweep(self) -> list[Lease]:
        """Reclaim every expired lease; returns the leases reclaimed.

        Each expired lease is returned exactly once across all calls —
        reclaim removes it from the table, so a later sweep (or release)
        cannot see it again.
        """
        now = self.clock()
        expired = [l for l in self._leases.values() if l.expired(now)]
        for lease in expired:
            self._evict(lease)
        return expired

    # -- internals ------------------------------------------------------
    def _require(self, lease_id: str) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseError(
                "UNKNOWN_LEASE",
                f"lease {lease_id!r} is not active (never granted, "
                "already released, or reclaimed after expiry)",
            )
        return lease

    def _evict(self, lease: Lease) -> None:
        self._leases.pop(lease.lease_id, None)
        for n in lease.nodes:
            if self._held.get(n) == lease.lease_id:
                del self._held[n]
