"""Lease lifecycle — TTL-bounded node grants with exactly-once reclaim.

The one-shot :class:`~repro.core.broker.ResourceBroker` hands out node
sets and forgets them; the scheduler's :class:`ClusterScheduler` frees
nodes when the *simulation* says a job ended.  A persistent service can
rely on neither: real clients crash, lose network, or simply never call
``release``.  Leases close that hole the way DHCP does — every grant
carries a TTL, staying alive requires periodic renewal, and an expiry
sweep reclaims the nodes of any lease whose clock ran out.

Invariants enforced here (and locked in by ``tests/broker/test_leases.py``):

* a lease's nodes are counted as held exactly while the lease is in the
  table — expiry, ``release`` and the sweeper all *remove* the lease, so
  nodes can never be reclaimed twice;
* ``release``/``renew`` of an unknown or already-reclaimed lease raise a
  structured :class:`LeaseError` (``UNKNOWN_LEASE``) instead of crashing
  the service;
* ``renew`` of a lease whose TTL already elapsed is rejected
  (``EXPIRED_LEASE``) and reclaims the nodes immediately — a client that
  slept through its TTL must re-allocate, it cannot resurrect the grant.

The clock is injected (any ``() -> float`` callable), so tests drive
expiry deterministically without real-time sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping


class LeaseError(Exception):
    """A lease operation that cannot be honored.

    ``code`` is a wire-level error string (``UNKNOWN_LEASE`` or
    ``EXPIRED_LEASE``) so the broker protocol can forward it verbatim.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Lease:
    """One granted allocation with its expiry bookkeeping."""

    lease_id: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]
    granted_at: float
    expires_at: float
    ttl_s: float
    renewals: int = 0
    #: §5 policy name that produced the allocation (for status/debugging)
    policy: str = "network_load_aware"
    #: requested processes-per-node (kept so elastic reconfiguration can
    #: re-derive the original request shape); ``None`` = unpinned
    ppn: int | None = None
    #: Equation-4 α the grant was decided with (β = 1 − α)
    alpha: float = 0.3
    #: number of completed reconfigurations (expand/shrink/migrate)
    reconfigs: int = 0

    def expired(self, now: float) -> bool:
        """Whether the TTL has elapsed at time ``now``."""
        return now >= self.expires_at

    def remaining_s(self, now: float) -> float:
        """Seconds of TTL left (0 when expired)."""
        return max(0.0, self.expires_at - now)


@dataclass
class LeaseTable:
    """All live leases, keyed by id, with injected time.

    ``clock`` supplies "now" for grants, renewals and expiry checks;
    production passes ``time.monotonic``, tests pass a fake.  TTLs are
    clamped to ``[min_ttl_s, max_ttl_s]`` so a client can neither pin
    nodes forever nor thrash the sweeper with microscopic leases.
    """

    clock: Callable[[], float]
    default_ttl_s: float = 60.0
    min_ttl_s: float = 1.0
    max_ttl_s: float = 3600.0
    #: prefix minted into every lease id (federation shards set e.g.
    #: ``"shard1:"`` so a router can route ``renew``/``release`` back to
    #: the owning shard from the id alone); must not collide with the
    #: bare ``L########`` ids an un-namespaced table mints
    namespace: str = ""
    _leases: dict[str, Lease] = field(default_factory=dict)
    _held: dict[str, str] = field(default_factory=dict)  # node -> lease_id
    _next_id: int = 1

    def __post_init__(self) -> None:
        if not (0 < self.min_ttl_s <= self.default_ttl_s <= self.max_ttl_s):
            raise ValueError(
                "need 0 < min_ttl_s <= default_ttl_s <= max_ttl_s, got "
                f"{self.min_ttl_s}/{self.default_ttl_s}/{self.max_ttl_s}"
            )
        if self.namespace and self.namespace.startswith("L"):
            raise ValueError(
                f"namespace {self.namespace!r} would collide with "
                "un-namespaced lease ids"
            )

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def get(self, lease_id: str) -> Lease | None:
        """The live lease with this id, or ``None``."""
        return self._leases.get(lease_id)

    def active(self) -> list[Lease]:
        """All live leases (including ones the sweeper hasn't visited)."""
        return list(self._leases.values())

    def held_nodes(self) -> frozenset[str]:
        """Nodes currently held by any live lease."""
        return frozenset(self._held)

    def clamp_ttl(self, ttl_s: float | None) -> float:
        """The effective TTL for a requested (possibly ``None``) TTL."""
        if ttl_s is None:
            return self.default_ttl_s
        return min(max(ttl_s, self.min_ttl_s), self.max_ttl_s)

    # -- lifecycle ------------------------------------------------------
    def grant(
        self,
        nodes: Iterable[str],
        procs: Mapping[str, int],
        *,
        ttl_s: float | None = None,
        policy: str = "network_load_aware",
        ppn: int | None = None,
        alpha: float = 0.3,
    ) -> Lease:
        """Create a lease over ``nodes``; they must not be held already."""
        node_tuple = tuple(nodes)
        conflict = [n for n in node_tuple if n in self._held]
        if conflict:
            raise LeaseError(
                "NODE_CONFLICT",
                f"nodes already held by another lease: {conflict}",
            )
        now = self.clock()
        ttl = self.clamp_ttl(ttl_s)
        lease = Lease(
            lease_id=f"{self.namespace}L{self._next_id:08d}",
            nodes=node_tuple,
            procs=dict(procs),
            granted_at=now,
            expires_at=now + ttl,
            ttl_s=ttl,
            policy=policy,
            ppn=ppn,
            alpha=alpha,
        )
        self._next_id += 1
        self._leases[lease.lease_id] = lease
        for n in node_tuple:
            self._held[n] = lease.lease_id
        return lease

    def renew(self, lease_id: str, *, ttl_s: float | None = None) -> Lease:
        """Extend a live lease's TTL from *now*; returns the new lease.

        Raises ``LeaseError(UNKNOWN_LEASE)`` for ids not in the table and
        ``LeaseError(EXPIRED_LEASE)`` — reclaiming the nodes — when the
        lease's TTL already elapsed.
        """
        lease = self._require(lease_id)
        now = self.clock()
        if lease.expired(now):
            self._evict(lease)
            raise LeaseError(
                "EXPIRED_LEASE",
                f"lease {lease_id} expired at t={lease.expires_at:.3f} "
                f"(now t={now:.3f}); re-allocate",
            )
        ttl = self.clamp_ttl(ttl_s if ttl_s is not None else lease.ttl_s)
        renewed = replace(
            lease,
            expires_at=now + ttl,
            ttl_s=ttl,
            renewals=lease.renewals + 1,
        )
        self._leases[lease_id] = renewed
        return renewed

    def release(self, lease_id: str) -> Lease:
        """End a lease and free its nodes; returns the released lease.

        A second ``release`` of the same id — or a release after the
        sweeper reclaimed it — raises ``LeaseError(UNKNOWN_LEASE)``.
        Releasing a lease that expired but was not swept yet reclaims the
        nodes (exactly once) and raises ``LeaseError(EXPIRED_LEASE)`` so
        the caller learns its grant had already lapsed.
        """
        lease = self._require(lease_id)
        self._evict(lease)
        if lease.expired(self.clock()):
            raise LeaseError(
                "EXPIRED_LEASE",
                f"lease {lease_id} had already expired; nodes reclaimed",
            )
        return lease

    def swap(
        self,
        lease_id: str,
        add_nodes: Iterable[str],
        drop_nodes: Iterable[str],
        *,
        procs: Mapping[str, int] | None = None,
    ) -> Lease:
        """Atomically change a live lease's node set; all-or-nothing.

        ``add_nodes`` join the lease and ``drop_nodes`` leave it in one
        step — the building block of elastic expand/shrink/migrate.  The
        whole operation is validated *before* any state changes, so a
        rejected swap leaves the table byte-identical to before the call:

        * ``UNKNOWN_LEASE`` — the id is not in the table;
        * ``EXPIRED_LEASE`` — the lease's TTL elapsed (nodes reclaimed,
          exactly as :meth:`renew` does);
        * ``NODE_CONFLICT`` — *any* node in ``add_nodes`` is held by a
          different lease (a partial conflict rejects the entire swap);
        * ``BAD_SWAP`` — a ``drop_nodes`` entry the lease does not hold,
          an ``add_nodes`` entry it already holds, overlapping add/drop
          sets, or a swap that would leave the lease with no nodes.

        ``procs`` optionally replaces the process map (it must cover
        exactly the resulting node set); without it, dropped nodes lose
        their entries and added nodes get the mean of the surviving
        per-node counts (at least 1).  A successful swap does **not**
        touch the TTL — rebalancing a grant is not a keep-alive; clients
        renew explicitly.
        """
        lease = self._require(lease_id)
        now = self.clock()
        if lease.expired(now):
            self._evict(lease)
            raise LeaseError(
                "EXPIRED_LEASE",
                f"lease {lease_id} expired at t={lease.expires_at:.3f} "
                f"(now t={now:.3f}); cannot swap a dead grant",
            )
        add = tuple(dict.fromkeys(add_nodes))
        drop = tuple(dict.fromkeys(drop_nodes))
        held_now = set(lease.nodes)
        overlap = [n for n in add if n in drop]
        if overlap:
            raise LeaseError(
                "BAD_SWAP", f"nodes in both add and drop sets: {overlap}"
            )
        bad_drop = [n for n in drop if n not in held_now]
        if bad_drop:
            raise LeaseError(
                "BAD_SWAP",
                f"lease {lease_id} does not hold drop nodes: {bad_drop}",
            )
        dup_add = [n for n in add if n in held_now]
        if dup_add:
            raise LeaseError(
                "BAD_SWAP",
                f"lease {lease_id} already holds add nodes: {dup_add}",
            )
        conflict = [
            n for n in add if self._held.get(n, lease_id) != lease_id
        ]
        if conflict:
            raise LeaseError(
                "NODE_CONFLICT",
                f"nodes held by another lease: {conflict}; swap rejected "
                "in full (all-or-nothing)",
            )
        new_nodes = tuple(n for n in lease.nodes if n not in drop) + add
        if not new_nodes:
            raise LeaseError(
                "BAD_SWAP", f"swap would leave lease {lease_id} with no nodes"
            )
        if procs is not None:
            if set(procs) != set(new_nodes):
                raise LeaseError(
                    "BAD_SWAP",
                    "procs keys must exactly match the post-swap node set",
                )
            new_procs = {n: int(procs[n]) for n in new_nodes}
        else:
            kept = {
                n: int(c) for n, c in lease.procs.items() if n not in drop
            }
            fill = max(
                1, round(sum(kept.values()) / len(kept)) if kept else 1
            )
            new_procs = {**kept, **{n: fill for n in add}}
        # -- validation complete; mutate in one step ---------------------
        swapped = replace(
            lease,
            nodes=new_nodes,
            procs=new_procs,
            reconfigs=lease.reconfigs + 1,
        )
        self._leases[lease_id] = swapped
        for n in drop:
            if self._held.get(n) == lease_id:
                del self._held[n]
        for n in add:
            self._held[n] = lease_id
        return swapped

    def sweep(self) -> list[Lease]:
        """Reclaim every expired lease; returns the leases reclaimed.

        Each expired lease is returned exactly once across all calls —
        reclaim removes it from the table, so a later sweep (or release)
        cannot see it again.
        """
        now = self.clock()
        expired = [l for l in self._leases.values() if l.expired(now)]
        for lease in expired:
            self._evict(lease)
        return expired

    # -- internals ------------------------------------------------------
    def _require(self, lease_id: str) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseError(
                "UNKNOWN_LEASE",
                f"lease {lease_id!r} is not active (never granted, "
                "already released, or reclaimed after expiry)",
            )
        return lease

    def _evict(self, lease: Lease) -> None:
        self._leases.pop(lease.lease_id, None)
        for n in lease.nodes:
            if self._held.get(n) == lease.lease_id:
                del self._held[n]
