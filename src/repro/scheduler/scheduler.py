"""ClusterScheduler — serving a stream of MPI jobs through the broker.

Each arriving job is allocated by the configured policy against the
*current* monitor snapshot, priced by the BSP execution model against the
current ground truth (including earlier jobs' load and traffic), and then
occupies its nodes for the priced duration:

* its ranks register as external CPU load on every allocated node (so the
  monitor and the contention model see them);
* a ring of traffic flows among its nodes stands in for its sustained
  halo exchanges (so later jobs route around it).

With ``exclusive_nodes=True`` (default) a node hosts at most one
scheduled job at a time — the usual space-sharing discipline; requests
that don't fit wait FIFO until departures free capacity.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.policies import (
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    NetworkLoadAwarePolicy,
)
from repro.core.weights import TradeOff
from repro.des.engine import Engine, Event
from repro.monitor.snapshot import ClusterSnapshot
from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.scheduler.queue import JobRequest, ScheduledJob, SchedulerStats
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement
from repro.workload.generator import BackgroundWorkload


class ClusterScheduler:
    """FIFO scheduler placing each job with an allocation policy."""

    def __init__(
        self,
        engine: Engine,
        workload: BackgroundWorkload,
        network: NetworkModel,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        policy: AllocationPolicy | None = None,
        rng: np.random.Generator | None = None,
        exclusive_nodes: bool = True,
        job_flow_mbs: float = 8.0,
    ) -> None:
        if job_flow_mbs < 0:
            raise ValueError(f"job_flow_mbs must be non-negative: {job_flow_mbs}")
        self.engine = engine
        self.workload = workload
        self.cluster = workload.cluster
        self.network = network
        self._snapshot_source = snapshot_source
        self.policy = policy or NetworkLoadAwarePolicy()
        self._rng = rng
        self.exclusive_nodes = exclusive_nodes
        self.job_flow_mbs = job_flow_mbs

        self.jobs: list[ScheduledJob] = []
        self._pending: list[ScheduledJob] = []
        self._running: dict[int, ScheduledJob] = {}
        self._busy_nodes: set[str] = set()
        self._job_flows: dict[int, list[Flow]] = {}
        #: finish-event handle per running job, so subclasses (elastic
        #: reconfiguration) can cancel and reschedule completions
        self._finish_events: dict[int, Event] = {}
        #: accumulated node·seconds of occupancy across all jobs — the
        #: numerator of cluster utilization (nodes_busy / nodes_total
        #: integrated over the run)
        self.busy_node_seconds: float = 0.0
        #: per-job (occupy time, node count) of the current occupancy
        self._occupy_marks: dict[int, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> ScheduledJob:
        """Register a job; it is considered at its ``submit_time``."""
        total_cores = self.cluster.total_cores()
        if request.n_processes > 4 * total_cores:
            raise AllocationError(
                f"job {request.job_id} wants {request.n_processes} processes "
                f"on a {total_cores}-core cluster — never satisfiable"
            )
        job = ScheduledJob(request=request)
        self.jobs.append(job)
        at = max(request.submit_time, self.engine.now)
        self.engine.schedule_at(at, lambda: self._enqueue(job))
        return job

    def _enqueue(self, job: ScheduledJob) -> None:
        self._pending.append(job)
        self._try_start()

    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        """Start pending jobs (FIFO) while allocations succeed."""
        while self._pending:
            job = self._pending[0]
            if not self._start(job):
                return  # head of queue blocked: stay FIFO
            self._pending.pop(0)

    def _start(self, job: ScheduledJob) -> bool:
        req = job.request
        snapshot = self._snapshot_source()
        # Busy nodes are masked out via the policies' exclude parameter —
        # rebuilding a filtered snapshot would copy all O(V²) pair maps
        # per job, and would defeat the snapshot-keyed LoadState cache.
        exclude = (
            frozenset(self._busy_nodes)
            if self.exclusive_nodes and self._busy_nodes
            else None
        )
        request = AllocationRequest(
            n_processes=req.n_processes,
            ppn=req.ppn,
            tradeoff=req.app.recommended_tradeoff(),
        )
        try:
            allocation = self.policy.allocate(
                snapshot, request, rng=self._rng, exclude=exclude
            )
        except AllocationError:
            return False
        if self.exclusive_nodes:
            needed = request.nodes_needed
            if needed is not None and allocation.n_nodes < needed:
                return False  # not enough free nodes: wait for departures

        placement = Placement.from_allocation(allocation)
        report = SimJob(
            req.app, placement, self.cluster, self.network
        ).run()

        job.allocation = allocation
        job.start_time = self.engine.now
        job.execution_time_s = report.total_time_s
        self._running[req.job_id] = job
        self._occupy(job, placement)
        self._finish_events[req.job_id] = self.engine.schedule(
            report.total_time_s, lambda: self._finish(job)
        )
        self._on_started(job, report.total_time_s)
        return True

    def _on_started(self, job: ScheduledJob, priced_time_s: float) -> None:
        """Hook for subclasses; called after a job starts occupying nodes."""

    # ------------------------------------------------------------------
    def _occupy(self, job: ScheduledJob, placement: Placement) -> None:
        assert job.allocation is not None
        for node, count in placement.procs_per_node().items():
            self.workload.add_external_load(node, float(count))
        nodes = job.allocation.nodes
        flows: list[Flow] = []
        if self.job_flow_mbs > 0 and len(nodes) > 1:
            for a, b in zip(nodes, nodes[1:] + nodes[:1]):
                if a != b:
                    flows.append(
                        self.network.add_flow(
                            Flow(
                                src=a,
                                dst=b,
                                demand_mbs=self.job_flow_mbs,
                                tag=f"sched_job:{job.request.job_id}",
                            )
                        )
                    )
        self._job_flows[job.request.job_id] = flows
        self._occupy_marks[job.request.job_id] = (self.engine.now, len(nodes))
        if self.exclusive_nodes:
            self._busy_nodes.update(nodes)

    def _vacate(self, job: ScheduledJob) -> None:
        """Remove a job's load, traffic and node holds (not its record)."""
        assert job.allocation is not None
        placement = Placement.from_allocation(job.allocation)
        for node, count in placement.procs_per_node().items():
            self.workload.add_external_load(node, -float(count))
        for flow in self._job_flows.pop(job.request.job_id, []):
            if flow in self.network.flows:
                self.network.remove_flow(flow)
        mark = self._occupy_marks.pop(job.request.job_id, None)
        if mark is not None:
            since, n_nodes = mark
            self.busy_node_seconds += max(self.engine.now - since, 0.0) * n_nodes
        if self.exclusive_nodes:
            self._busy_nodes.difference_update(job.allocation.nodes)

    def _finish(self, job: ScheduledJob) -> None:
        job.finish_time = self.engine.now
        self._vacate(job)
        self._finish_events.pop(job.request.job_id, None)
        del self._running[job.request.job_id]
        self._on_finished(job)
        self._try_start()

    def _on_finished(self, job: ScheduledJob) -> None:
        """Hook for subclasses; called after a job released its nodes."""

    # ------------------------------------------------------------------
    @property
    def running(self) -> list[ScheduledJob]:
        return list(self._running.values())

    @property
    def pending(self) -> list[ScheduledJob]:
        return list(self._pending)

    def drain(self, max_s: float = 7 * 24 * 3600.0) -> SchedulerStats:
        """Run the engine until every submitted job finished."""
        deadline = self.engine.now + max_s

        def outstanding() -> bool:
            return any(not j.done for j in self.jobs)

        while outstanding() and self.engine.now < deadline:
            if not self.engine.step():
                break
        if outstanding():
            raise RuntimeError(
                f"jobs still outstanding after {max_s} simulated seconds"
            )
        return SchedulerStats.from_jobs(self.jobs)


