"""Multi-job scheduling on top of the broker (system extension).

The paper's broker answers one request at a time.  This layer simulates
the *queue* a deployed broker would serve: MPI jobs arrive over time,
each is allocated by a policy, occupies its nodes (adding CPU load and
halo traffic that later jobs must route around), and departs when its
priced execution completes.  Policies can then be compared on stream
metrics — makespan, mean turnaround, wait — rather than single runs.
"""

from repro.scheduler.leases import Lease, LeaseError, LeaseTable
from repro.scheduler.queue import JobRequest, SchedulerStats, ScheduledJob
from repro.scheduler.scheduler import ClusterScheduler

__all__ = [
    "JobRequest",
    "Lease",
    "LeaseError",
    "LeaseTable",
    "SchedulerStats",
    "ScheduledJob",
    "ClusterScheduler",
]
