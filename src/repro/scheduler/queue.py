"""Job-queue data types for the scheduling layer."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.policies import Allocation
from repro.util.validation import require_non_negative

if TYPE_CHECKING:
    from repro.apps.base import AppModel

_job_ids = itertools.count()


@dataclass(frozen=True)
class JobRequest:
    """One MPI job submitted to the scheduler."""

    app: "AppModel"
    n_processes: int
    ppn: int | None = 4
    submit_time: float = 0.0
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.n_processes <= 0:
            raise ValueError(
                f"n_processes must be positive, got {self.n_processes}"
            )
        require_non_negative(self.submit_time, "submit_time")


@dataclass
class ScheduledJob:
    """Lifecycle record of a job inside the scheduler."""

    request: JobRequest
    allocation: Allocation | None = None
    start_time: float | None = None
    finish_time: float | None = None
    execution_time_s: float | None = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def wait_s(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.request.submit_time

    @property
    def turnaround_s(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.request.submit_time


@dataclass(frozen=True)
class SchedulerStats:
    """Stream-level outcome of a scheduling run."""

    n_jobs: int
    makespan_s: float
    mean_wait_s: float
    mean_turnaround_s: float
    mean_execution_s: float

    @classmethod
    def from_jobs(cls, jobs: list[ScheduledJob]) -> "SchedulerStats":
        finished = [j for j in jobs if j.done]
        if not finished:
            raise ValueError("no finished jobs to summarize")
        return cls(
            n_jobs=len(finished),
            makespan_s=max(j.finish_time for j in finished)  # type: ignore[type-var]
            - min(j.request.submit_time for j in finished),
            mean_wait_s=float(np.mean([j.wait_s for j in finished])),
            mean_turnaround_s=float(
                np.mean([j.turnaround_s for j in finished])
            ),
            mean_execution_s=float(
                np.mean([j.execution_time_s for j in finished])
            ),
        )
