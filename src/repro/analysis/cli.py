"""``python -m repro lint`` — the static-analysis gate.

Exit codes are CI semantics, not suggestions:

* ``0`` — no findings beyond the committed baseline;
* ``1`` — at least one new finding (the build should fail);
* ``2`` — the linter itself could not run (bad arguments, unreadable
  baseline).

``--write-baseline`` regenerates ``lint-baseline.json`` from the current
findings and exits 0 — the explicit act of accepting debt (or shedding
stale entries after a fix).  See ``docs/ANALYSIS.md`` for the rule
families and the pragma syntax.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis import engine
from repro.analysis.findings import LintReport
from repro.analysis.rules import ALL_RULES

#: rule-family prefixes accepted by ``--rules``
FAMILIES = ("DET", "ASY", "ERR", "PRO", "RACE")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks: determinism, async-safety, "
        "typed-error discipline, protocol drift, async races",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: <root>/{baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather the current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--rules", default=None, metavar="FAM[,FAM...]",
        help=f"restrict to rule families, e.g. DET,ERR (from {FAMILIES})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable report instead of text",
    )
    parser.add_argument(
        "--jsonl", action="store_true",
        help="emit one JSON object per new finding (CI annotations)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id with its family and summary, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for info in ALL_RULES:
            print(f"{info.rule}  [{info.family}]  {info.summary}")
        return 0

    root = Path(args.root).resolve()
    paths = [Path(p) for p in (args.paths or ["src/repro"])]

    families: set[str] | None = None
    if args.rules:
        families = {f.strip().upper() for f in args.rules.split(",") if f.strip()}
        unknown = families - set(FAMILIES)
        if unknown:
            print(
                f"unknown rule families {sorted(unknown)}; "
                f"choose from {FAMILIES}",
                file=sys.stderr,
            )
            return 2

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / baseline_mod.DEFAULT_BASELINE
    )
    try:
        report = engine.run(
            root,
            paths,
            baseline_path=None if args.no_baseline else baseline_path,
            families=families,
        )
    except (OSError, ValueError) as exc:
        print(f"lint failed to run: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline_mod.write(baseline_path, report.findings)
        print(
            f"baseline written: {baseline_path} "
            f"({len(report.findings)} grandfathered finding(s))"
        )
        return 0

    if args.jsonl:
        # one object per line, new findings only: `gh` annotations and
        # editor integrations stream these without buffering the report
        for finding in report.new:
            print(json.dumps(finding.to_dict(), sort_keys=True))
    elif args.json:
        print(json.dumps(_as_json(report), indent=2))
    else:
        _render_text(report)
    return 0 if report.clean else 1


def _as_json(report: LintReport) -> dict:
    return {
        "files_checked": report.files_checked,
        "clean": report.clean,
        "new": [f.to_dict() for f in report.new],
        "baselined": [f.to_dict() for f in report.baselined],
        "stale_baseline": report.stale_baseline,
    }


def _render_text(report: LintReport) -> None:
    for finding in report.new:
        print(finding.render())
        if finding.hint:
            print(f"    hint: {finding.hint}")
    summary = (
        f"{len(report.findings)} finding(s): {len(report.new)} new, "
        f"{len(report.baselined)} baselined "
        f"({report.files_checked} file(s) checked)"
    )
    print(("FAIL  " if report.new else "OK    ") + summary)
    for fp in report.stale_baseline:
        print(
            f"stale baseline entry (violation no longer present): {fp}\n"
            "    run `python -m repro lint --write-baseline` to shed it",
            file=sys.stderr,
        )


if __name__ == "__main__":  # pragma: no cover — exercised via `repro lint`
    raise SystemExit(main())
