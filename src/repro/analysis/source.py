"""Source loading: parse each file once, share the AST across rules.

The engine walks a package tree, producing one :class:`SourceFile` per
``*.py`` file (text, split lines, parsed AST, dotted module name) and
one :class:`Project` holding them all — file rules see a single file,
project rules (exhaustiveness and drift cross-checks) see the corpus.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding


def module_name(root: Path, path: Path) -> str:
    """Dotted module name for ``path``, e.g. ``repro.broker.client``.

    Derived from the path relative to ``root`` with any leading ``src``
    segment stripped, so both installed layouts and the in-repo
    ``src/repro/...`` layout resolve to ``repro.*`` names.
    """
    rel = path.resolve().relative_to(root.resolve())
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class SourceFile:
    """One parsed source file."""

    path: Path  #: absolute path on disk
    rel: str  #: repo-relative POSIX path (used in findings)
    module: str  #: dotted module name, e.g. ``repro.chaos.faults``
    text: str
    lines: list[str]
    tree: ast.Module | None  #: ``None`` when the file failed to parse
    parse_error: Finding | None = None

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def line_text(self, lineno: int) -> str:
        """The 1-indexed physical line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class Project:
    """The full corpus one lint run operates on."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)

    def find_module(self, module: str) -> SourceFile | None:
        """The file for an exact dotted module name, if present."""
        for f in self.files:
            if f.module == module:
                return f
        return None

    @classmethod
    def load(cls, root: Path, paths: list[Path]) -> "Project":
        """Parse every ``*.py`` under ``paths`` (files or directories)."""
        root = root.resolve()
        seen: set[Path] = set()
        files: list[SourceFile] = []
        for target in paths:
            target = target if target.is_absolute() else root / target
            if target.is_dir():
                candidates = sorted(target.rglob("*.py"))
            else:
                candidates = [target]
            for path in candidates:
                path = path.resolve()
                if path in seen:
                    continue
                seen.add(path)
                files.append(_load_one(root, path))
        return cls(root=root, files=files)


def _load_one(root: Path, path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    tree: ast.Module | None = None
    parse_error: Finding | None = None
    try:
        tree = ast.parse(text, filename=rel)
    except SyntaxError as exc:
        parse_error = Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="GEN001",
            severity="error",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; no other rule ran on this file",
        )
    return SourceFile(
        path=path,
        rel=rel,
        module=module_name(root, path),
        text=text,
        lines=text.splitlines(),
        tree=tree,
        parse_error=parse_error,
    )


class QualnameVisitor:
    """Maps line numbers to enclosing ``Class.func`` qualnames.

    Used to give findings a position-independent ``context`` so baseline
    fingerprints survive unrelated edits above them in the file.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._spans: list[tuple[int, int, str]] = []
        self._walk(tree, [])
        # innermost span first
        self._spans.sort(key=lambda s: (s[0] - s[1],))

    def _walk(self, node: ast.AST, stack: list[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = stack + [child.name]
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                self._spans.append((child.lineno, end, ".".join(qual)))
                self._walk(child, qual)
            else:
                self._walk(child, stack)

    def qualname(self, lineno: int) -> str:
        """Innermost enclosing qualname for ``lineno`` (or ``<module>``)."""
        best: tuple[int, str] | None = None
        for start, end, qual in self._spans:
            if start <= lineno <= end:
                width = end - start
                if best is None or width < best[0]:
                    best = (width, qual)
        return best[1] if best is not None else "<module>"
