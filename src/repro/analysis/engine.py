"""The lint engine: load sources, run every rule, apply the baseline."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Finding, LintReport
from repro.analysis.rules import FILE_RULES, PROJECT_RULES
from repro.analysis.source import Project


def lint_project(project: Project, *, families: set[str] | None = None) -> list[Finding]:
    """Every finding from every rule over ``project``, sorted.

    ``families`` restricts output to rule-id prefixes (``DET``, ``ASY``,
    ``ERR``, ``PRO``); ``None`` runs everything.  Parse failures surface
    as ``GEN001`` findings rather than exceptions, so one broken file
    cannot hide the rest of the run.
    """
    findings: list[Finding] = []
    for file in project.files:
        if file.parse_error is not None:
            findings.append(file.parse_error)
            continue
        for rule in FILE_RULES:
            findings.extend(rule(file))
    for project_rule in PROJECT_RULES:
        findings.extend(project_rule(project))
    if families is not None:
        findings = [
            f for f in findings if f.family in families or f.rule == "GEN001"
        ]
    return sorted(findings)


def run(
    root: Path,
    paths: list[Path],
    *,
    baseline_path: Path | None = None,
    families: set[str] | None = None,
) -> LintReport:
    """One full lint run: parse, check, baseline-split.

    ``baseline_path=None`` treats every finding as new (``--no-baseline``).
    """
    project = Project.load(root, paths)
    findings = lint_project(project, families=families)
    tolerated = (
        baseline_mod.load(baseline_path) if baseline_path is not None else {}
    )
    report = baseline_mod.apply(findings, tolerated)
    report.files_checked = len(project.files)
    return report
