"""Typed-error discipline — broad catches justify themselves, codes stay exhaustive.

The chaos harness's first invariant is *typed errors only*: a daemon
may degrade, it may deny, but a raw ``Exception`` escaping (or being
silently swallowed) is always a bug.  Statically that splits into two
checks:

* ``ERR001``/``ERR002`` — bare ``except:`` and broad
  ``except Exception``/``except BaseException`` clauses are allowed only
  with a justification pragma (``# noqa: BLE001 — <why>`` or
  ``# lint: allow(ERR002) — <why>``).  The rationale is mandatory:
  every must-not-die catch in the tree documents why dying is worse
  than catching.
* ``ERR003``–``ERR005`` — the :class:`~repro.broker.protocol.ErrorCode`
  enum stays exhaustive across the whole package.  Every declared code
  must be **produced** somewhere on the server side (service, daemon,
  lease table, executor, chaos transport) and **known** to the client
  library's ``KNOWN_ERROR_CODES`` registry; registry entries that no
  longer exist in the enum are drift.  A code that can be sent but
  never produced is dead protocol surface; a code the client has never
  heard of turns a typed denial back into an anonymous failure.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.pragmas import has_unjustified_pragma, justification
from repro.analysis.source import Project, QualnameVisitor, SourceFile

RULES = (
    RuleInfo("ERR001", "typed-errors", "bare except without justification"),
    RuleInfo("ERR002", "typed-errors", "broad except Exception/BaseException without justification"),
    RuleInfo("ERR003", "typed-errors", "ErrorCode never produced server-side"),
    RuleInfo("ERR004", "typed-errors", "ErrorCode missing from the client registry"),
    RuleInfo("ERR005", "typed-errors", "client registry entry not in the ErrorCode enum"),
)

#: module that declares the ErrorCode enum
PROTOCOL_MODULE = "repro.broker.protocol"

#: module whose ``KNOWN_ERROR_CODES`` must cover the enum
CLIENT_MODULE = "repro.broker.client"

#: name of the client-side registry assignment the cross-check reads
CLIENT_REGISTRY = "KNOWN_ERROR_CODES"

#: modules that may legitimately produce wire error codes
SERVER_MODULES = (
    "repro.broker.protocol",
    "repro.broker.server",
    "repro.broker.service",
    "repro.scheduler.leases",
    "repro.elastic.executor",
    "repro.chaos.transport",
    "repro.federation.router",
)

#: codes the client mints locally (transport failures, not wire codes)
CLIENT_ONLY_CODES = frozenset({"CONNECT", "TIMEOUT"})


# ----------------------------------------------------------------------
# per-file: broad catches need a justification pragma

def check(file: SourceFile) -> list[Finding]:
    if file.tree is None:
        return []
    quals = QualnameVisitor(file.tree)
    findings: list[Finding] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            rule, caught = "ERR001", "everything (bare except)"
        else:
            broad = _broad_names(node.type)
            if not broad:
                continue
            rule, caught = "ERR002", "/".join(sorted(broad))
        if justification(file, node.lineno, rule) is not None:
            continue
        if has_unjustified_pragma(file, node.lineno):
            hint = (
                "the pragma is missing its rationale — append "
                "'— <one line on why dying here is worse>'"
            )
        else:
            hint = (
                "narrow the except clause, or justify it: "
                "'# noqa: BLE001 — <why this must not propagate>'"
            )
        findings.append(
            Finding(
                path=file.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                severity="error",
                message=f"broad except catching {caught} without a "
                "justification pragma",
                hint=hint,
                context=quals.qualname(node.lineno),
            )
        )
    return findings


def _broad_names(expr: ast.expr) -> set[str]:
    """Names among ``Exception``/``BaseException`` caught by this clause."""
    targets = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    broad: set[str] = set()
    for t in targets:
        if isinstance(t, ast.Name) and t.id in ("Exception", "BaseException"):
            broad.add(t.id)
    return broad


# ----------------------------------------------------------------------
# project-wide: ErrorCode exhaustiveness cross-check

def check_project(project: Project) -> list[Finding]:
    protocol = project.find_module(PROTOCOL_MODULE)
    if protocol is None or protocol.tree is None:
        return []  # fixture corpora without a broker are fine
    members = _error_code_members(protocol)
    if not members:
        return []

    produced = _produced_codes(project, exclude_enum_in=protocol)
    registry = _client_registry(project)

    findings: list[Finding] = []
    for name, lineno in sorted(members.items()):
        if name not in produced:
            findings.append(
                Finding(
                    path=protocol.rel,
                    line=lineno,
                    col=0,
                    rule="ERR003",
                    severity="error",
                    message=f"ErrorCode.{name} is declared but never "
                    "produced by any server-side module",
                    hint="raise it (service/server/leases/executor) or "
                    "retire the code from the enum",
                    context=f"ErrorCode.{name}",
                )
            )
    if registry is None:
        client = project.find_module(CLIENT_MODULE)
        if client is not None:
            findings.append(
                Finding(
                    path=client.rel,
                    line=1,
                    col=0,
                    rule="ERR004",
                    severity="error",
                    message=f"client declares no {CLIENT_REGISTRY} registry; "
                    "the enum cannot be cross-checked",
                    hint=f"add '{CLIENT_REGISTRY} = frozenset({{...}})' "
                    "listing every code the client understands",
                    context="<module>",
                )
            )
        return findings

    reg_codes, reg_line, client_file = registry
    for name, lineno in sorted(members.items()):
        if name not in reg_codes:
            findings.append(
                Finding(
                    path=client_file.rel,
                    line=reg_line,
                    col=0,
                    rule="ERR004",
                    severity="error",
                    message=f"ErrorCode.{name} is missing from the client's "
                    f"{CLIENT_REGISTRY} registry",
                    hint="add it so callers can branch on the code "
                    "instead of string-matching messages",
                    context=CLIENT_REGISTRY,
                )
            )
    for name in sorted(reg_codes):
        if name not in members and name not in CLIENT_ONLY_CODES:
            findings.append(
                Finding(
                    path=client_file.rel,
                    line=reg_line,
                    col=0,
                    rule="ERR005",
                    severity="error",
                    message=f"client registry lists {name!r}, which is not "
                    "an ErrorCode member (nor a client-only code)",
                    hint="remove the stale entry or add the code to "
                    "broker/protocol.py",
                    context=CLIENT_REGISTRY,
                )
            )
    return findings


def _error_code_members(protocol: SourceFile) -> dict[str, int]:
    """``{member_name: lineno}`` of the ErrorCode enum (empty if absent)."""
    assert protocol.tree is not None
    for node in protocol.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "ErrorCode":
            members: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members[target.id] = stmt.lineno
            return members
    return {}


def _enum_span(protocol: SourceFile) -> tuple[int, int]:
    assert protocol.tree is not None
    for node in protocol.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "ErrorCode":
            return node.lineno, node.end_lineno or node.lineno
    return (0, -1)


def _produced_codes(
    project: Project, *, exclude_enum_in: SourceFile
) -> set[str]:
    """Codes evidenced as produced in any server-side module.

    Evidence is an ``ErrorCode.NAME`` attribute access or a bare string
    literal equal to the member name (the lease table and executor raise
    their own typed errors carrying the code as a string).  The enum
    declaration body itself is excluded — ``BUSY = "BUSY"`` is not
    production.
    """
    enum_start, enum_end = _enum_span(exclude_enum_in)
    produced: set[str] = set()
    for file in project.files:
        if file.tree is None or not file.in_package(*SERVER_MODULES):
            continue
        for node in ast.walk(file.tree):
            in_enum = (
                file is exclude_enum_in
                and enum_start <= getattr(node, "lineno", 0) <= enum_end
            )
            if in_enum:
                continue
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "ErrorCode"
            ):
                produced.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.isupper():
                    produced.add(node.value)
    return produced


def _client_registry(
    project: Project,
) -> tuple[set[str], int, SourceFile] | None:
    """``(codes, lineno, file)`` for the client registry, if declared."""
    client = project.find_module(CLIENT_MODULE)
    if client is None or client.tree is None:
        return None
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == CLIENT_REGISTRY
            for t in node.targets
        ):
            continue
        codes = {
            c.value
            for c in ast.walk(node.value)
            if isinstance(c, ast.Constant) and isinstance(c.value, str)
        }
        return codes, node.lineno, client
    return None
