"""Determinism rules — clocks and RNGs must be injected, never ambient.

The DES engine, chaos harness, elastic reallocator, MPI simulator, and
scheduler are all seed-replayable: the chaos runner re-executes whole
fault scenarios byte-identically from one integer.  A single ambient
clock read (``time.time()``) or hidden entropy draw (``random.Random()``
with no seed) silently breaks that property — it still *works*, it just
stops replaying.  These rules make the convention from ``util/rng.py``
(explicit generators, explicit clocks) statically enforced:

* ``DET001`` — wall/monotonic clock **calls** in replayable packages.
  References are fine (``clock: Callable = time.monotonic`` is exactly
  how a clock gets injected); calling one inline is not.
* ``DET002`` — ``datetime.now``/``utcnow``/``today`` calls, same scope.
* ``DET003`` — seedless RNG construction (``random.Random()``,
  ``numpy.random.default_rng()`` with no arguments) anywhere in the
  package, including the broker client whose retry jitter must replay.
* ``DET004`` — module-level ``random.*`` draws (``random.random()``,
  ``random.choice()``, …) in replayable packages: the module-global
  generator is shared mutable state no seed parameter controls.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.names import import_aliases, resolve_call
from repro.analysis.pragmas import justification
from repro.analysis.source import QualnameVisitor, SourceFile

RULES = (
    RuleInfo("DET001", "determinism", "ambient clock call in replayable code"),
    RuleInfo("DET002", "determinism", "datetime now/today call in replayable code"),
    RuleInfo("DET003", "determinism", "seedless RNG construction"),
    RuleInfo("DET004", "determinism", "module-level random.* draw in replayable code"),
)

#: packages whose behavior must replay from a seed (clock + module-RNG scope)
REPLAYABLE_PACKAGES = (
    "repro.des",
    "repro.chaos",
    "repro.elastic",
    "repro.simmpi",
    "repro.scheduler",
)

#: ambient clock calls (DET001) — reading any of these inline captures
#: real time where the DES clock or an injected callable should flow
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: datetime construction that embeds the wall clock (DET002)
_DATETIME_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",  # via `from datetime import datetime`
        "datetime.utcnow",
        "datetime.today",
    }
)

#: RNG constructors that are deterministic only when given a seed (DET003)
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",  # never seedable — always flagged
        "numpy.random.default_rng",
        "numpy.random.Generator",  # bare Generator() is a TypeError anyway
    }
)

#: module-level draws on the shared global generator (DET004)
_MODULE_RANDOM_PREFIX = "random."


def check(file: SourceFile) -> list[Finding]:
    if file.tree is None:
        return []
    clock_scope = file.in_package(*REPLAYABLE_PACKAGES)
    aliases = import_aliases(file.tree)
    quals = QualnameVisitor(file.tree)
    findings: list[Finding] = []

    def emit(
        node: ast.AST, rule: str, message: str, hint: str
    ) -> None:
        if justification(file, node.lineno, rule) is not None:
            return
        findings.append(
            Finding(
                path=file.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                severity="error",
                message=message,
                hint=hint,
                context=quals.qualname(node.lineno),
            )
        )

    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call(node.func, aliases)
        if target is None:
            continue
        if clock_scope and target in _CLOCK_CALLS:
            emit(
                node,
                "DET001",
                f"ambient clock call {target}() in seed-replayable code",
                "take a clock callable (or the DES engine's now) as a "
                "parameter instead of reading real time inline",
            )
        elif clock_scope and target in _DATETIME_CALLS:
            emit(
                node,
                "DET002",
                f"wall-clock datetime call {target}() in seed-replayable code",
                "inject the timestamp; derive display times from the "
                "simulation clock, not the host",
            )
        elif target in _SEEDED_CONSTRUCTORS and not node.args:
            # keyword seeds count as seeded: Random(x=...) doesn't exist,
            # but default_rng(seed=...) does.
            if not any(kw.arg in ("seed",) for kw in node.keywords):
                emit(
                    node,
                    "DET003",
                    f"seedless {target}() — draws are irreproducible",
                    "pass an explicit seed or accept an injected "
                    "generator (see repro/util/rng.py)",
                )
        elif (
            clock_scope
            and target.startswith(_MODULE_RANDOM_PREFIX)
            and target not in _SEEDED_CONSTRUCTORS
            and target != "random.seed"  # seeding global state is DET004 too
        ):
            emit(
                node,
                "DET004",
                f"module-level {target}() draws from the shared global "
                "generator",
                "construct random.Random(seed) (or a numpy Generator) "
                "and thread it through",
            )
        elif clock_scope and target == "random.seed":
            emit(
                node,
                "DET004",
                "random.seed() mutates the process-global generator",
                "seed a local random.Random instance instead",
            )
    return findings
