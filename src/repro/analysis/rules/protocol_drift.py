"""Protocol-drift rules — client verbs and server dispatch stay in sync.

The wire protocol is defined in one place (``broker/protocol.py``'s
``OPS`` tuple) but *implemented* in three: the protocol parser's
``op ==`` ladder, the daemon's ``_dispatch`` ladder (mirrored by the
chaos transport's socketless dispatcher), and the client library's
typed ``self.call("<op>", ...)`` methods.  Adding a verb to one ladder
and forgetting another compiles fine and fails at runtime with
``UNKNOWN_OP`` — precisely the drift PR 3 hit when ``reconfigure``
landed.  These rules diff the four surfaces on every lint run:

* ``PRO001`` — an op in ``OPS`` is missing from a dispatch ladder
  (parser, daemon, or chaos transport mirror).
* ``PRO002`` — an op in ``OPS`` has no client ``call()`` literal.
* ``PRO003`` — a dispatch/client literal is not in ``OPS`` or
  ``TRANSPORT_OPS`` (a verb that can never be requested, or a typo).
* ``PRO004`` — ``_RETRY_SAFE_OPS`` names an op outside ``OPS``
  (transport verbs are deliberately excluded: replaying a ``hello``
  after a transport death is the *client's* reconnect logic, not a
  generic retry).
* ``PRO005`` — a transport verb in ``TRANSPORT_OPS`` is missing from
  the parser or a transport ladder (the codec-negotiation/pipelining
  path must stay in sync everywhere requests are interpreted).

The federation grew a second dispatch surface: router verbs declared in
``FEDERATION_OPS`` are parsed by the protocol but dispatched only by
the federation daemon (a single-broker daemon deliberately has no dead
``shards`` branch).  Three more rules keep that split honest:

* ``PRO006`` — a federation verb in ``FEDERATION_OPS`` is missing from
  the parser or the federation daemon's dispatch ladder.
* ``PRO007`` — a federation verb has no client ``call()`` literal.
* ``PRO008`` — a federation module constructs ``AllocateParams``
  without a ``token`` keyword: router forwarding and cross-shard
  splitting must preserve (or derive from) the client's idempotency
  token, or a retried request can double-book nodes.

The fleet optimizer added a third verb family: ``fleet_plan`` /
``fleet_status`` are declared in ``FLEET_OPS`` and — unlike federation
verbs — must be dispatched by *every* broker ladder (base daemon and
chaos transport both), because a single broker runs fleet passes too:

* ``PRO009`` — a fleet verb in ``FLEET_OPS`` is missing from the
  parser or a dispatch ladder.
* ``PRO010`` — a fleet verb has no client ``call()`` literal.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.source import Project, SourceFile

RULES = (
    RuleInfo("PRO001", "protocol-drift", "declared op missing from a dispatch ladder"),
    RuleInfo("PRO002", "protocol-drift", "declared op missing from the client library"),
    RuleInfo("PRO003", "protocol-drift", "dispatched/called op not declared in OPS"),
    RuleInfo("PRO004", "protocol-drift", "_RETRY_SAFE_OPS entry not declared in OPS"),
    RuleInfo("PRO005", "protocol-drift", "transport op missing from a transport ladder"),
    RuleInfo("PRO006", "protocol-drift", "federation op missing from a federation ladder"),
    RuleInfo("PRO007", "protocol-drift", "federation op missing from the client library"),
    RuleInfo("PRO008", "protocol-drift", "federation AllocateParams dropping the idempotency token"),
    RuleInfo("PRO009", "protocol-drift", "fleet op missing from a dispatch ladder"),
    RuleInfo("PRO010", "protocol-drift", "fleet op missing from the client library"),
)

PROTOCOL_MODULE = "repro.broker.protocol"
CLIENT_MODULE = "repro.broker.client"

#: modules holding an ``op ==`` dispatch ladder that must cover OPS
DISPATCH_MODULES = ("repro.broker.server", "repro.chaos.transport")

#: modules whose ladders must additionally cover FEDERATION_OPS (the
#: single-broker daemon deliberately does not — its base ladder answers
#: UNKNOWN_OP for router verbs, which is correct, not drift)
FED_DISPATCH_MODULES = ("repro.federation.daemon",)

#: package whose AllocateParams constructions PRO008 polices
FEDERATION_PACKAGE = "repro.federation"


def check_project(project: Project) -> list[Finding]:
    protocol = project.find_module(PROTOCOL_MODULE)
    if protocol is None or protocol.tree is None:
        return []
    ops = _ops_tuple(protocol, "OPS")
    if ops is None:
        return []
    declared, ops_line = ops
    transport = _ops_tuple(protocol, "TRANSPORT_OPS")
    transport_ops = transport[0] if transport is not None else set()
    federation = _ops_tuple(protocol, "FEDERATION_OPS")
    federation_ops = federation[0] if federation is not None else set()
    fleet = _ops_tuple(protocol, "FLEET_OPS")
    fleet_ops = fleet[0] if fleet is not None else set()
    known = declared | transport_ops | federation_ops | fleet_ops

    findings: list[Finding] = []
    parser_seen = _op_comparisons(protocol)

    # 1. every dispatch ladder (parser included) covers every op
    ladders: list[tuple[SourceFile, dict[str, int]]] = [
        (protocol, parser_seen)
    ]
    for module in DISPATCH_MODULES:
        file = project.find_module(module)
        if file is not None and file.tree is not None:
            ladders.append((file, _op_comparisons(file)))
    for file, seen in ladders:
        for op in sorted(declared):
            if op not in seen:
                findings.append(
                    Finding(
                        path=file.rel,
                        line=1,
                        col=0,
                        rule="PRO001",
                        severity="error",
                        message=f"op {op!r} is declared in OPS but this "
                        "module's dispatch ladder never matches it",
                        hint="add the `op == ...` branch (and its handler) "
                        "or drop the op from OPS",
                        context="<dispatch>",
                    )
                )
        # transport verbs must be understood wherever requests are
        # interpreted: the parser and every transport ladder
        for op in sorted(transport_ops):
            if op not in seen:
                findings.append(
                    Finding(
                        path=file.rel,
                        line=1,
                        col=0,
                        rule="PRO005",
                        severity="error",
                        message=f"transport op {op!r} is declared in "
                        "TRANSPORT_OPS but this module never matches it",
                        hint="handle the transport verb (codec negotiation/"
                        "pipelining) or drop it from TRANSPORT_OPS",
                        context="<dispatch>",
                    )
                )
        # fleet verbs run on every broker, so every base ladder (parser,
        # daemon, chaos transport mirror) must match them
        for op in sorted(fleet_ops):
            if op not in seen:
                findings.append(
                    Finding(
                        path=file.rel,
                        line=1,
                        col=0,
                        rule="PRO009",
                        severity="error",
                        message=f"fleet op {op!r} is declared in FLEET_OPS "
                        "but this module's dispatch ladder never matches it",
                        hint="add the `op == ...` branch (and its handler) "
                        "or drop the op from FLEET_OPS",
                        context="<dispatch>",
                    )
                )
        for op, lineno in sorted(seen.items()):
            if op not in known:
                findings.append(
                    Finding(
                        path=file.rel,
                        line=lineno,
                        col=0,
                        rule="PRO003",
                        severity="error",
                        message=f"dispatch matches op {op!r}, which is not "
                        "declared in protocol OPS or TRANSPORT_OPS",
                        hint="declare it in OPS (and the parser) or remove "
                        "the dead branch",
                        context="<dispatch>",
                    )
                )

    # 1b. federation verbs: the parser and every federation dispatch
    # ladder must match them (the base daemon deliberately does not)
    fed_ladders: list[tuple[SourceFile, dict[str, int]]] = [
        (protocol, parser_seen)
    ]
    for module in FED_DISPATCH_MODULES:
        file = project.find_module(module)
        if file is not None and file.tree is not None:
            seen = _op_comparisons(file)
            fed_ladders.append((file, seen))
            for op, lineno in sorted(seen.items()):
                if op not in known:
                    findings.append(
                        Finding(
                            path=file.rel,
                            line=lineno,
                            col=0,
                            rule="PRO003",
                            severity="error",
                            message=f"dispatch matches op {op!r}, which is "
                            "not declared in protocol OPS, TRANSPORT_OPS, "
                            "or FEDERATION_OPS",
                            hint="declare it in FEDERATION_OPS (and the "
                            "parser) or remove the dead branch",
                            context="<dispatch>",
                        )
                    )
    for file, seen in fed_ladders:
        for op in sorted(federation_ops):
            if op not in seen:
                findings.append(
                    Finding(
                        path=file.rel,
                        line=1,
                        col=0,
                        rule="PRO006",
                        severity="error",
                        message=f"federation op {op!r} is declared in "
                        "FEDERATION_OPS but this module's dispatch ladder "
                        "never matches it",
                        hint="add the `op == ...` branch (parser and "
                        "federation daemon) or drop the op from "
                        "FEDERATION_OPS",
                        context="<dispatch>",
                    )
                )

    # 1c. federation code must thread the idempotency token through
    # every AllocateParams it constructs (forwarding reuses the params
    # object; *constructed* sub-requests must derive a token explicitly)
    for file in project.files:
        if file.tree is None or not file.in_package(FEDERATION_PACKAGE):
            continue
        for lineno in _tokenless_allocate_params(file):
            findings.append(
                Finding(
                    path=file.rel,
                    line=lineno,
                    col=0,
                    rule="PRO008",
                    severity="error",
                    message="AllocateParams constructed without a `token` "
                    "keyword in federation code",
                    hint="pass token=... (derive a per-shard token from the "
                    "client's, or forward None explicitly) so retries stay "
                    "idempotent across the router",
                    context="<federation>",
                )
            )

    # 2. the client's typed methods cover every op, and only real ops
    client = project.find_module(CLIENT_MODULE)
    if client is not None and client.tree is not None:
        called = _client_call_ops(client)
        for op in sorted(declared):
            if op not in called:
                findings.append(
                    Finding(
                        path=client.rel,
                        line=1,
                        col=0,
                        rule="PRO002",
                        severity="error",
                        message=f"op {op!r} is declared in OPS but the "
                        "client library never calls it",
                        hint="add a typed client method wrapping "
                        f"call({op!r}, ...)",
                        context="BrokerClient",
                    )
                )
        for op, lineno in sorted(called.items()):
            if op not in known:
                findings.append(
                    Finding(
                        path=client.rel,
                        line=lineno,
                        col=0,
                        rule="PRO003",
                        severity="error",
                        message=f"client calls op {op!r}, which is not "
                        "declared in protocol OPS or TRANSPORT_OPS",
                        hint="declare the op in broker/protocol.py or fix "
                        "the verb string",
                        context="BrokerClient",
                    )
                )
        for op in sorted(federation_ops):
            if op not in called:
                findings.append(
                    Finding(
                        path=client.rel,
                        line=1,
                        col=0,
                        rule="PRO007",
                        severity="error",
                        message=f"federation op {op!r} is declared in "
                        "FEDERATION_OPS but the client library never calls it",
                        hint="add a typed client method wrapping "
                        f"call({op!r}, ...)",
                        context="BrokerClient",
                    )
                )
        for op in sorted(fleet_ops):
            if op not in called:
                findings.append(
                    Finding(
                        path=client.rel,
                        line=1,
                        col=0,
                        rule="PRO010",
                        severity="error",
                        message=f"fleet op {op!r} is declared in FLEET_OPS "
                        "but the client library never calls it",
                        hint="add a typed client method wrapping "
                        f"call({op!r}, ...)",
                        context="BrokerClient",
                    )
                )
        retry_safe = _retry_safe_ops(client)
        if retry_safe is not None:
            safe_ops, line = retry_safe
            for op in sorted(safe_ops):
                if op not in declared | federation_ops | fleet_ops:
                    findings.append(
                        Finding(
                            path=client.rel,
                            line=line,
                            col=0,
                            rule="PRO004",
                            severity="error",
                            message=f"_RETRY_SAFE_OPS lists {op!r}, which "
                            "is not declared in protocol OPS, "
                            "FEDERATION_OPS, or FLEET_OPS",
                            hint="retry safety only applies to real verbs; "
                            "fix the entry",
                            context="_RETRY_SAFE_OPS",
                        )
                    )
    return findings


def _ops_tuple(
    protocol: SourceFile, name: str
) -> tuple[set[str], int] | None:
    """An ``<name> = (...)`` ops declaration: ``(ops, lineno)``.

    String literals anywhere in the right-hand side count, so
    ``TRANSPORT_OPS``-style conditional concatenations (e.g. appending
    ``"msgpack"`` only when the library imports) are still seen.
    """
    assert protocol.tree is not None
    for node in protocol.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        ops = {
            c.value
            for c in ast.walk(node.value)
            if isinstance(c, ast.Constant) and isinstance(c.value, str)
        }
        return ops, node.lineno
    return None


def _op_comparisons(file: SourceFile) -> dict[str, int]:
    """String literals compared (or matched) against an ``op`` expression.

    Covers ``request.op == "allocate"``, ``op == "renew"``,
    ``assert request.op == "status"`` and ``match op: case "..."``.
    """
    assert file.tree is not None
    seen: dict[str, int] = {}

    def is_op_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id == "op"
        return isinstance(expr, ast.Attribute) and expr.attr == "op"

    for node in ast.walk(file.tree):
        if isinstance(node, ast.Compare) and is_op_expr(node.left):
            for comparator in node.comparators:
                if isinstance(comparator, ast.Constant) and isinstance(
                    comparator.value, str
                ):
                    seen.setdefault(comparator.value, node.lineno)
        elif isinstance(node, ast.Match) and is_op_expr(node.subject):
            for case in node.cases:
                pattern = case.pattern
                if isinstance(pattern, ast.MatchValue) and isinstance(
                    pattern.value, ast.Constant
                ):
                    if isinstance(pattern.value.value, str):
                        seen.setdefault(pattern.value.value, pattern.value.lineno)
    return seen


def _client_call_ops(client: SourceFile) -> dict[str, int]:
    """First-argument literals of ``*.call("<op>", ...)`` invocations."""
    assert client.tree is not None
    seen: dict[str, int] = {}
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "call"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                seen.setdefault(value, node.lineno)
    return seen


def _tokenless_allocate_params(file: SourceFile) -> list[int]:
    """Lines constructing ``AllocateParams(...)`` with no ``token=``.

    A ``**kwargs`` splat is trusted (the token may ride inside it).
    """
    assert file.tree is not None
    lines: list[int] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "AllocateParams":
            continue
        has_token = any(
            kw.arg == "token" or kw.arg is None  # None = **splat
            for kw in node.keywords
        )
        if not has_token:
            lines.append(node.lineno)
    return lines


def _retry_safe_ops(client: SourceFile) -> tuple[set[str], int] | None:
    """The ``_RETRY_SAFE_OPS`` declaration, if present."""
    assert client.tree is not None
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_RETRY_SAFE_OPS"
            for t in node.targets
        ):
            continue
        ops = {
            c.value
            for c in ast.walk(node.value)
            if isinstance(c, ast.Constant) and isinstance(c.value, str)
        }
        return ops, node.lineno
    return None
