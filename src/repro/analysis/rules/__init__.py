"""Rule registry for the invariant lint engine.

Each rule family is a module exposing ``RULES`` (metadata) and either
``check(file)`` (per-file) or ``check_project(project)`` (whole-corpus
cross-checks).  The engine imports the registry, so adding a family here
is all it takes to wire a new one in.
"""

from __future__ import annotations

from repro.analysis import race
from repro.analysis.findings import RuleInfo
from repro.analysis.rules import (
    asyncsafety,
    determinism,
    protocol_drift,
    typederrors,
)

#: per-file rules: run once per parsed source file
FILE_RULES = (
    determinism.check,
    asyncsafety.check,
    typederrors.check,
    race.check,
)

#: project rules: run once over the whole corpus
PROJECT_RULES = (
    typederrors.check_project,
    protocol_drift.check_project,
)

#: every known rule id with its family and summary (``--list-rules``)
ALL_RULES: tuple[RuleInfo, ...] = (
    RuleInfo("GEN001", "general", "file fails to parse"),
    *determinism.RULES,
    *asyncsafety.RULES,
    *typederrors.RULES,
    *protocol_drift.RULES,
    *race.RULES,
)
