"""Async-safety rules — nothing may block the broker's event loop.

The broker daemon is a single asyncio loop: one blocking call inside an
``async def`` stalls every connection, the micro-batcher, and the lease
sweeper at once.  The failure is invisible in unit tests (they await one
coroutine at a time) and catastrophic under load, which is exactly the
profile a static check covers best.

* ``ASY001`` — a known blocking call (``time.sleep``, synchronous
  socket construction, ``subprocess.*``, ``os.system``, blocking urllib)
  inside an ``async def`` body.
* ``ASY002`` — a synchronous ``SharedStore``/``FileStore`` access
  (``.value()``/``.put()``/``.get()``/``.keys()`` on a receiver whose
  name ends in ``store``) inside an ``async def`` body.  FileStore hits
  the disk per call; monitor reads belong off-loop (warning severity —
  the receiver heuristic can misfire on unrelated objects).

Nested synchronous ``def``/``lambda`` bodies are *not* scanned: they run
only when called, and calling them from the loop is a dynamic property
the chaos harness covers.  Nested ``async def`` bodies are scanned in
their own right.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.names import dotted_name, import_aliases, resolve_call
from repro.analysis.pragmas import justification
from repro.analysis.source import QualnameVisitor, SourceFile

RULES = (
    RuleInfo("ASY001", "async-safety", "blocking call inside async def"),
    RuleInfo("ASY002", "async-safety", "synchronous store access inside async def"),
)

#: canonical names that block the calling thread
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.waitpid",
        "urllib.request.urlopen",
    }
)

#: SharedStore API methods that hit the store synchronously
_STORE_METHODS = frozenset({"value", "put", "get", "keys", "delete", "age"})


def check(file: SourceFile) -> list[Finding]:
    if file.tree is None:
        return []
    aliases = import_aliases(file.tree)
    quals = QualnameVisitor(file.tree)
    findings: list[Finding] = []

    def emit(
        node: ast.Call, rule: str, severity: str, message: str, hint: str
    ) -> None:
        if justification(file, node.lineno, rule) is not None:
            return
        findings.append(
            Finding(
                path=file.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                severity=severity,
                message=message,
                hint=hint,
                context=quals.qualname(node.lineno),
            )
        )

    def scan_async_body(fn: ast.AsyncFunctionDef) -> None:
        for stmt in fn.body:
            for node in _walk_same_context(stmt):
                if isinstance(node, ast.AsyncFunctionDef):
                    continue  # the outer ast.walk scans it separately
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call(node.func, aliases)
                if target in _BLOCKING_CALLS:
                    emit(
                        node,
                        "ASY001",
                        "error",
                        f"blocking {target}() inside async def {fn.name!r} "
                        "stalls the whole event loop",
                        "await the asyncio equivalent (asyncio.sleep, "
                        "open_connection, create_subprocess_exec) or run "
                        "it in a thread via asyncio.to_thread",
                    )
                    continue
                receiver_method = _store_access(node)
                if receiver_method is not None:
                    receiver, method = receiver_method
                    emit(
                        node,
                        "ASY002",
                        "warning",
                        f"synchronous store access {receiver}.{method}() "
                        f"inside async def {fn.name!r} (FileStore hits "
                        "disk per call)",
                        "snapshot the store off-loop or wrap the read in "
                        "asyncio.to_thread",
                    )

    for node in ast.walk(file.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            scan_async_body(node)
    return findings


def _walk_same_context(stmt: ast.AST):
    """Walk ``stmt`` without descending into nested sync functions.

    Yields every node reachable from ``stmt`` except the bodies of
    nested ``def``/``lambda`` (their execution context is unknown).
    Nested ``async def`` nodes are yielded (not descended) so the caller
    can scan them as their own async context.
    """
    yield stmt
    if isinstance(stmt, (ast.FunctionDef, ast.Lambda, ast.AsyncFunctionDef)):
        return
    for child in ast.iter_child_nodes(stmt):
        yield from _walk_same_context(child)


def _store_access(call: ast.Call) -> tuple[str, str] | None:
    """``(receiver, method)`` when the call looks like a store access."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _STORE_METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver is None:
        return None
    tail = receiver.split(".")[-1].lower()
    if tail.endswith("store"):
        return receiver, func.attr
    return None
