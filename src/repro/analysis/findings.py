"""Finding and rule metadata types shared across the lint engine.

A :class:`Finding` is one reported violation — stable rule id, severity,
``file:line:col`` location, human message, and a fix hint.  Findings are
value objects: the engine produces them, the baseline fingerprints them,
and the CLI renders them; nothing mutates one after creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: finding severities, in increasing order of interest
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative POSIX path
    line: int
    col: int
    rule: str  #: stable id, e.g. ``DET003``
    severity: str  #: ``error`` or ``warning``
    message: str
    hint: str = ""  #: one-line fix suggestion
    context: str = "<module>"  #: enclosing ``Class.func`` qualname

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def family(self) -> str:
        """The rule family prefix (``DET``, ``ASY``, ``ERR``, ``PRO``)."""
        return "".join(c for c in self.rule if c.isalpha())

    def render(self) -> str:
        """The canonical one-line text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (used by ``repro lint --json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one rule id (for ``--list-rules`` and docs)."""

    rule: str
    family: str  #: ``determinism`` / ``async-safety`` / ``typed-errors`` / ``protocol-drift``
    summary: str


@dataclass
class LintReport:
    """Everything one lint run produced, pre-baseline and post-baseline."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing beyond the committed baseline was found."""
        return not self.new
