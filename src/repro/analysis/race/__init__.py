"""Async race detector — the RACE rule family.

An interleaving-aware dataflow pass over every ``async def``: the CFG
builder (:mod:`repro.analysis.race.cfg`) segments each function body at
its yield points and stamps every shared-state access with the segment
it runs in; the rules (:mod:`repro.analysis.race.rules`) then report
accesses that only *look* atomic.  Wired into ``python -m repro lint``
through the rule registry; the runtime counterpart that exercises the
same atomicity claims under forced interleavings lives in
:mod:`repro.chaos.interleave`.
"""

from __future__ import annotations

from repro.analysis.race.cfg import AsyncCFG, build, module_assigned_names
from repro.analysis.race.rules import RULES, check

__all__ = ["AsyncCFG", "RULES", "build", "check", "module_assigned_names"]
