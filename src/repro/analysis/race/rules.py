"""RACE rules — interleaving hazards in async code.

Every rule reasons over the await-segmented summaries from
:mod:`repro.analysis.race.cfg`: two accesses in different segments can
have arbitrary other-task work interleaved between them, two in the
same segment cannot.  That makes the reports *interleaving-aware*, not
merely syntactic — an ``x += 1`` is never flagged (atomic in asyncio),
while ``v = self.x`` … ``await`` … ``self.x = f(v)`` always is.

* ``RACE001`` — shared state read in one segment and written in a later
  one with no common lock held: another task can interleave and the
  write clobbers its update (lost-update race).
* ``RACE002`` — a branch test reads shared state and the guarded suite
  writes it after an await: the condition may no longer hold when the
  act executes (check-then-act / TOCTOU).
* ``RACE003`` — ``asyncio.Lock`` re-entered while already held (it is
  not reentrant: instant deadlock), or two locks acquired in opposite
  orders at different sites (ABBA deadlock under interleaving).
* ``RACE004`` — ``create_task``/``ensure_future`` result discarded: the
  event loop keeps only a weak reference, so the task can be garbage
  collected mid-flight and its exception is silently dropped.
* ``RACE005`` — a ``for`` loop iterates shared state and its body can
  yield: any interleaved mutation raises ``RuntimeError: changed size
  during iteration`` or silently skips entries.
* ``RACE006`` — an asyncio primitive bound at import/class-definition
  time (before any loop runs), or ``asyncio.get_event_loop()`` inside a
  coroutine: both couple the object to whichever loop happens to exist,
  which breaks under multi-loop tests and daemon-thread loops.

Suppress a deliberate violation with a rationale pragma on the line:
``# lint: allow(RACE001) — single-writer by protocol design``.
"""

from __future__ import annotations

import ast
from typing import Protocol

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.names import dotted_name, import_aliases, resolve_call
from repro.analysis.pragmas import justification
from repro.analysis.race import cfg as cfg_mod
from repro.analysis.race.cfg import (
    CHECK,
    MUTATE,
    READ,
    WRITE,
    AsyncCFG,
    walk_same_context,
)
from repro.analysis.source import QualnameVisitor, SourceFile

RULES = (
    RuleInfo(
        "RACE001", "race", "shared read-modify-write spans an await without a lock"
    ),
    RuleInfo("RACE002", "race", "check-then-act on shared state across an await"),
    RuleInfo(
        "RACE003", "race", "asyncio lock re-entered or taken in conflicting order"
    ),
    RuleInfo(
        "RACE004", "race", "fire-and-forget task: no reference or done-callback"
    ),
    RuleInfo("RACE005", "race", "shared collection iterated across a yield point"),
    RuleInfo("RACE006", "race", "asyncio primitive bound to the wrong event loop"),
)

#: canonical task-spawning calls (module-level form)
_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})

#: attribute form: ``loop.create_task`` etc. — receivers that *retain*
#: their tasks (TaskGroup, nursery) are exempt
_SPAWNER_ATTRS = frozenset({"create_task", "ensure_future"})
_RETAINING_RECEIVERS = ("group", "tg", "nursery")

#: asyncio primitives that bind to the running loop on first use
_LOOP_BOUND = frozenset(
    {
        f"asyncio.{name}"
        for name in (
            "Lock",
            "Event",
            "Condition",
            "Semaphore",
            "BoundedSemaphore",
            "Queue",
            "LifoQueue",
            "PriorityQueue",
            "Future",
            "Barrier",
        )
    }
)


class _Emit(Protocol):
    """Shape of the finding-emitting closure shared by the sub-checks."""

    def __call__(
        self, line: int, col: int, rule: str, severity: str, message: str, hint: str
    ) -> None: ...


def check(file: SourceFile) -> list[Finding]:
    if file.tree is None:
        return []
    aliases = import_aliases(file.tree)
    quals = QualnameVisitor(file.tree)
    module_shared = cfg_mod.module_assigned_names(file.tree)
    findings: list[Finding] = []

    def emit(
        line: int, col: int, rule: str, severity: str, message: str, hint: str
    ) -> None:
        if justification(file, line, rule) is not None:
            return
        findings.append(
            Finding(
                path=file.rel,
                line=line,
                col=col,
                rule=rule,
                severity=severity,
                message=message,
                hint=hint,
                context=quals.qualname(line),
            )
        )

    _check_fire_and_forget(file.tree, aliases, emit)
    _check_loop_binding(file.tree, aliases, emit)

    # lock acquisition order is a file-level property: function A taking
    # store_lock then table_lock and function B the reverse can deadlock
    # each other even though each function is locally consistent.
    seen_pairs: dict[tuple[str, str], int] = {}

    for node in ast.walk(file.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        summary = cfg_mod.build(node, module_shared)
        _check_rmw(summary, emit)
        _check_then_act(summary, emit)
        _check_locks(summary, seen_pairs, emit)
        _check_iteration(summary, emit)

    return findings


# -- RACE001 ---------------------------------------------------------------


def _check_rmw(summary: AsyncCFG, emit: "_Emit") -> None:
    by_var: dict[str, list[cfg_mod.Access]] = {}
    for access in summary.accesses:
        by_var.setdefault(access.var, []).append(access)
    for var, accesses in by_var.items():
        reads = [a for a in accesses if a.kind == READ]
        writes = [a for a in accesses if a.kind in (WRITE, MUTATE)]
        for write in writes:
            read = next(
                (
                    r
                    for r in reads
                    if r.segment < write.segment and not (r.locks & write.locks)
                ),
                None,
            )
            if read is None:
                continue
            awaits = write.segment - read.segment
            emit(
                write.line,
                write.col,
                "RACE001",
                "error",
                f"{var} is read at line {read.line} and written here in "
                f"async def {summary.name!r} with {awaits} await point(s) "
                "between — an interleaved task's update is lost",
                "hold one asyncio.Lock across the read-modify-write, or "
                "re-read and reconcile after the await",
            )
            break  # one report per variable per function


# -- RACE002 ---------------------------------------------------------------


def _check_then_act(summary: AsyncCFG, emit: "_Emit") -> None:
    reported: set[tuple[str, int]] = set()
    for site in summary.check_acts:
        key = (site.var, site.write_line)
        if key in reported:
            continue
        reported.add(key)
        awaits = site.write_segment - site.check_segment
        emit(
            site.line,
            site.col,
            "RACE002",
            "error",
            f"{site.var} is tested here but only acted on at line "
            f"{site.write_line}, {awaits} await point(s) later in async def "
            f"{summary.name!r} — the condition can be invalidated "
            "in between (check-then-act)",
            "re-validate after the await, or guard the whole "
            "check-then-act with one asyncio.Lock",
        )


# -- RACE003 ---------------------------------------------------------------


def _check_locks(
    summary: AsyncCFG,
    seen_pairs: dict[tuple[str, str], int],
    emit: "_Emit",
) -> None:
    for reentry in summary.reentries:
        emit(
            reentry.line,
            reentry.col,
            "RACE003",
            "error",
            f"{reentry.lock} is acquired here while already held in async "
            f"def {summary.name!r} — asyncio.Lock is not reentrant, this "
            "deadlocks immediately",
            "release before re-acquiring, or split the critical section "
            "so each path takes the lock exactly once",
        )
    for pair in summary.lock_pairs:
        key = (pair.outer, pair.inner)
        if (pair.inner, pair.outer) in seen_pairs:
            first = seen_pairs[(pair.inner, pair.outer)]
            emit(
                pair.line,
                pair.col,
                "RACE003",
                "error",
                f"{pair.inner} is taken while holding {pair.outer}, but "
                f"line {first} takes them in the opposite order — two tasks "
                "can deadlock ABBA-style",
                "pick one global acquisition order for these locks and use "
                "it at every site",
            )
        else:
            seen_pairs.setdefault(key, pair.line)


# -- RACE004 ---------------------------------------------------------------


def _check_fire_and_forget(
    tree: ast.Module, aliases: dict[str, str], emit: "_Emit"
) -> None:
    for node in ast.walk(tree):
        call: ast.Call | None = None
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_"
            and isinstance(node.value, ast.Call)
        ):
            call = node.value
        if call is None:
            continue
        spawner = _spawner_name(call, aliases)
        if spawner is None:
            continue
        emit(
            call.lineno,
            call.col_offset,
            "RACE004",
            "error",
            f"{spawner}(...) result is discarded — the loop holds only a "
            "weak reference, so the task can be garbage-collected "
            "mid-flight and its exception is silently dropped",
            "keep the task in a collection (discard on completion) or "
            "chain .add_done_callback() that logs and counts failures",
        )


def _spawner_name(call: ast.Call, aliases: dict[str, str]) -> str | None:
    target = resolve_call(call.func, aliases)
    if target in _SPAWNERS:
        return target
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _SPAWNER_ATTRS
    ):
        receiver = dotted_name(call.func.value) or "<expr>"
        tail = receiver.split(".")[-1].lower()
        if any(mark in tail for mark in _RETAINING_RECEIVERS):
            return None  # TaskGroup-style receivers retain their tasks
        return f"{receiver}.{call.func.attr}"
    return None


# -- RACE005 ---------------------------------------------------------------


def _check_iteration(summary: AsyncCFG, emit: "_Emit") -> None:
    for site in summary.iterations:
        emit(
            site.line,
            site.col,
            "RACE005",
            "error",
            f"{site.var} is iterated in async def {summary.name!r} while "
            f"the loop body has {site.yields_in_body} yield point(s) — an "
            "interleaved task mutating it breaks the iteration "
            "(RuntimeError or skipped entries)",
            "snapshot first (iterate over list(...) or a swapped-out "
            "copy), then await freely",
        )


# -- RACE006 ---------------------------------------------------------------


def _check_loop_binding(
    tree: ast.Module, aliases: dict[str, str], emit: "_Emit"
) -> None:
    # part A: primitives constructed before any loop exists
    scopes: list[tuple[str, list[ast.stmt]]] = [("module", tree.body)]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            scopes.append((f"class {node.name}", node.body))
    for where, body in scopes:
        for stmt in body:
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            target = resolve_call(value.func, aliases)
            if target in _LOOP_BOUND:
                emit(
                    value.lineno,
                    value.col_offset,
                    "RACE006",
                    "warning",
                    f"{target}() constructed at {where} scope binds to "
                    "whichever event loop first touches it — daemon-thread "
                    "loops and per-test loops then share one stale primitive",
                    "construct it inside the coroutine/server that owns the "
                    "running loop (e.g. in an async setup path)",
                )
    # part B: get_event_loop inside a coroutine
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for stmt in node.body:
            for sub in walk_same_context(stmt):
                if isinstance(sub, ast.AsyncFunctionDef) and sub is not stmt:
                    continue
                if not isinstance(sub, ast.Call):
                    continue
                if resolve_call(sub.func, aliases) == "asyncio.get_event_loop":
                    emit(
                        sub.lineno,
                        sub.col_offset,
                        "RACE006",
                        "warning",
                        "asyncio.get_event_loop() inside async def "
                        f"{node.name!r} can return a loop other than the "
                        "running one (deprecated since 3.10)",
                        "use asyncio.get_running_loop() — inside a "
                        "coroutine it is always the right loop",
                    )
