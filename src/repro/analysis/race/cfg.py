"""Await-segmented summaries of async function bodies.

The race rules need one question answered precisely: *can another task
run between these two statements?*  In asyncio the answer is static —
control only transfers at ``await``, the implicit awaits of
``async for`` / ``async with``, and generator ``yield`` — so a linear
pre-order walk that counts yield points is an honest control-flow
summary for straight-line reasoning.  Every shared-state access is
stamped with the *segment* (yield-point epoch) it executes in and the
set of locks held around it; two accesses in different segments can be
interleaved by another task, two in the same segment cannot.

Shared state means: ``self.*`` attribute chains, module-level names
(read anywhere, written only via ``global`` declarations or mutating
method calls), and ``nonlocal`` closure captures.  Locals are resolved
per-function and excluded — a list built and mutated inside one call is
nobody else's business.

Deliberate imprecision, chosen to avoid false positives:

* Loop back-edges are not modelled.  ``x += 1`` in a yielding loop is
  atomic per iteration; only a read in an *earlier* segment than a
  write is reported (the canonical ``v = self.x; await ...;
  self.x = f(v)`` shape).
* ``AugAssign`` records a write only — its read and write happen in the
  same segment, so it cannot span an await by itself.
* A name is a lock when its last component mentions ``lock``/``mutex``/
  ``sem``/``cond``; anything else used in ``async with`` still counts
  as a yield point, just not as protection.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.names import dotted_name

#: access kinds (``Access.kind``)
READ = "read"
WRITE = "write"
MUTATE = "mutate"
CHECK = "check"  #: read inside an ``if``/``while`` test
ITERATE = "iterate"  #: shared collection used as a ``for`` iterable

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "put_nowait",
        "sort",
        "reverse",
    }
)

#: substrings that mark a name as a synchronization primitive
_LOCK_HINTS = ("lock", "mutex", "sem", "cond")

#: iterator-view methods — ``for k in self._d.items()`` iterates ``self._d``
_VIEW_METHODS = frozenset({"items", "values", "keys"})


@dataclass(frozen=True)
class Access:
    """One read/write of a shared variable at one yield-point epoch."""

    var: str  #: canonical name, e.g. ``self._tasks``
    kind: str  #: one of READ/WRITE/MUTATE/CHECK/ITERATE
    segment: int  #: yield-point epoch (0 before the first await)
    line: int
    col: int
    locks: frozenset[str]  #: locks held when the access executes


@dataclass(frozen=True)
class YieldPoint:
    """One place the coroutine can hand control to another task."""

    segment: int  #: epoch *before* this yield
    line: int
    kind: str  #: ``await`` / ``async_for`` / ``async_with`` / ``yield``


@dataclass(frozen=True)
class LockReentry:
    """``async with L`` nested inside ``async with L`` — deadlock."""

    lock: str
    line: int
    col: int


@dataclass(frozen=True)
class LockPair:
    """Observed acquisition order: ``inner`` taken while ``outer`` held."""

    outer: str
    inner: str
    line: int
    col: int


@dataclass(frozen=True)
class IterationSite:
    """A ``for`` loop over shared state whose body can yield."""

    var: str
    line: int
    col: int
    yields_in_body: int


@dataclass(frozen=True)
class CheckActSite:
    """A branch test read with a post-await write in the guarded suite."""

    var: str
    line: int  #: the test's line
    col: int
    write_line: int
    check_segment: int
    write_segment: int


@dataclass
class AsyncCFG:
    """Everything the race rules need to know about one async function."""

    name: str
    line: int
    accesses: list[Access] = field(default_factory=list)
    yield_points: list[YieldPoint] = field(default_factory=list)
    reentries: list[LockReentry] = field(default_factory=list)
    lock_pairs: list[LockPair] = field(default_factory=list)
    iterations: list[IterationSite] = field(default_factory=list)
    check_acts: list[CheckActSite] = field(default_factory=list)

    @property
    def segments(self) -> int:
        """Number of atomic segments (yield points + 1)."""
        return len(self.yield_points) + 1


def walk_same_context(stmt: ast.AST) -> Iterator[ast.AST]:
    """Walk ``stmt`` without descending into nested function bodies.

    Yields every node reachable from ``stmt`` except the bodies of
    nested ``def``/``async def``/``lambda`` — their execution context
    (loop, task, thread) is not this function's.
    """
    yield stmt
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(stmt):
        yield from walk_same_context(child)


def module_assigned_names(tree: ast.Module) -> frozenset[str]:
    """Names bound by assignment at module scope (candidate globals).

    Dunders are excluded; ALL_CAPS constants are kept — mutable module
    registries are conventionally upper-cased, and a true constant is
    never written so it can never complete a race pair anyway.
    """
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    return frozenset(n for n in names if not n.startswith("__"))


def lock_name(expr: ast.expr) -> str | None:
    """The dotted name of ``expr`` when it looks like a lock, else None."""
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1].lower()
    if any(hint in tail for hint in _LOCK_HINTS):
        return dotted
    return None


def build(fn: ast.AsyncFunctionDef, module_shared: frozenset[str]) -> AsyncCFG:
    """Build the await-segmented summary for one async function."""
    builder = _Builder(fn, module_shared)
    builder.run()
    return builder.cfg


class _Builder:
    """Single linear pass over a function body, in evaluation order."""

    def __init__(
        self, fn: ast.AsyncFunctionDef, module_shared: frozenset[str]
    ) -> None:
        self.fn = fn
        self.cfg = AsyncCFG(name=fn.name, line=fn.lineno)
        self.segment = 0
        self._locks: list[str] = []
        self._module_shared = module_shared
        self._globals: set[str] = set()
        self._nonlocals: set[str] = set()
        self._locals: set[str] = set()
        self._collect_scopes()

    # -- scope pre-pass ---------------------------------------------------

    def _collect_scopes(self) -> None:
        args = self.fn.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            self._locals.add(arg.arg)
        for stmt in self.fn.body:
            for node in walk_same_context(stmt):
                if isinstance(node, ast.Global):
                    self._globals.update(node.names)
                elif isinstance(node, ast.Nonlocal):
                    self._nonlocals.update(node.names)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    self._locals.add(node.id)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not stmt:
                        self._locals.add(node.name)
        self._locals -= self._globals
        self._locals -= self._nonlocals

    # -- entry ------------------------------------------------------------

    def run(self) -> None:
        for stmt in self.fn.body:
            self.visit_stmt(stmt)

    # -- shared-name resolution -------------------------------------------

    def shared_var(self, expr: ast.expr) -> str | None:
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head == "self" and rest:
            return dotted
        if not rest:
            if head in self._globals or head in self._nonlocals:
                return head
            if head in self._module_shared and head not in self._locals:
                return head
        return None

    def record(self, var: str, kind: str, node: ast.AST) -> None:
        self.cfg.accesses.append(
            Access(
                var=var,
                kind=kind,
                segment=self.segment,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                locks=frozenset(self._locks),
            )
        )

    def bump(self, kind: str, node: ast.AST) -> None:
        self.cfg.yield_points.append(
            YieldPoint(
                segment=self.segment,
                line=getattr(node, "lineno", self.fn.lineno),
                kind=kind,
            )
        )
        self.segment += 1

    # -- statements -------------------------------------------------------

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are scanned as their own context
        if isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, READ)
            for target in stmt.targets:
                self.visit_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value, READ)
            self.visit_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            # read+write in one segment: atomic, so record the write only
            self.visit_expr(stmt.value, READ)
            self.visit_target(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.visit_target(target)
        elif isinstance(stmt, (ast.Expr, ast.Return)) and stmt.value is not None:
            self.visit_expr(stmt.value, READ)
        elif isinstance(stmt, ast.If):
            self._visit_branch(stmt, stmt.test, stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_branch(stmt, stmt.test, stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body:
                self.visit_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.visit_stmt(s)
            for s in stmt.orelse:
                self.visit_stmt(s)
            for s in stmt.finalbody:
                self.visit_stmt(s)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, READ)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Pass, ast.Break,
                               ast.Continue, ast.Import, ast.ImportFrom)):
            pass
        else:  # Match and anything future: conservative generic walk
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, READ)
                elif isinstance(child, ast.stmt):
                    self.visit_stmt(child)
                else:
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self.visit_stmt(sub)
                        elif isinstance(sub, ast.expr):
                            self.visit_expr(sub, READ)

    def _visit_branch(
        self,
        stmt: ast.stmt,
        test: ast.expr,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
    ) -> None:
        check_start = len(self.cfg.accesses)
        self.visit_expr(test, CHECK)
        checks = [
            a for a in self.cfg.accesses[check_start:] if a.kind == CHECK
        ]
        act_start = len(self.cfg.accesses)
        for s in body:
            self.visit_stmt(s)
        for s in orelse:
            self.visit_stmt(s)
        acts = self.cfg.accesses[act_start:]
        for check in checks:
            for act in acts:
                if (
                    act.var == check.var
                    and act.kind in (WRITE, MUTATE)
                    and act.segment > check.segment
                    and not (act.locks & check.locks)
                ):
                    self.cfg.check_acts.append(
                        CheckActSite(
                            var=check.var,
                            line=check.line,
                            col=check.col,
                            write_line=act.line,
                            check_segment=check.segment,
                            write_segment=act.segment,
                        )
                    )
                    break

    def _visit_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        iter_var = self._iterated_shared(stmt.iter)
        if iter_var is not None:
            self.record(iter_var, ITERATE, stmt.iter)
            # still evaluate view-call arguments, if any
            if isinstance(stmt.iter, ast.Call):
                for arg in stmt.iter.args:
                    self.visit_expr(arg, READ)
        else:
            self.visit_expr(stmt.iter, READ)
        is_async = isinstance(stmt, ast.AsyncFor)
        if is_async:
            self.bump("async_for", stmt)
        body_start_segment = self.segment
        self.visit_target(stmt.target)
        for s in stmt.body:
            self.visit_stmt(s)
        yields_in_body = self.segment - body_start_segment
        if is_async:
            yields_in_body = max(yields_in_body, 1)
        if iter_var is not None and yields_in_body > 0:
            self.cfg.iterations.append(
                IterationSite(
                    var=iter_var,
                    line=stmt.iter.lineno,
                    col=stmt.iter.col_offset,
                    yields_in_body=yields_in_body,
                )
            )
        for s in stmt.orelse:
            self.visit_stmt(s)

    def _iterated_shared(self, iter_expr: ast.expr) -> str | None:
        """The shared var a ``for`` iterates, seeing through dict views."""
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in _VIEW_METHODS
        ):
            return self.shared_var(iter_expr.func.value)
        return self.shared_var(iter_expr)

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in stmt.items:
            name = lock_name(item.context_expr)
            if name is None:
                self.visit_expr(item.context_expr, READ)
            else:
                if name in self._locks:
                    self.cfg.reentries.append(
                        LockReentry(
                            lock=name,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                        )
                    )
                else:
                    for outer in self._locks:
                        self.cfg.lock_pairs.append(
                            LockPair(
                                outer=outer,
                                inner=name,
                                line=item.context_expr.lineno,
                                col=item.context_expr.col_offset,
                            )
                        )
                entered.append(name)
            if item.optional_vars is not None:
                self.visit_target(item.optional_vars)
        is_async = isinstance(stmt, ast.AsyncWith)
        if is_async:
            self.bump("async_with", stmt)
        self._locks.extend(entered)
        for s in stmt.body:
            self.visit_stmt(s)
        if entered:
            del self._locks[len(self._locks) - len(entered):]
        if is_async:
            self.bump("async_with", stmt)  # __aexit__ awaits too

    # -- assignment targets -----------------------------------------------

    def visit_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.visit_target(elt)
        elif isinstance(target, ast.Starred):
            self.visit_target(target.value)
        elif isinstance(target, ast.Subscript):
            var = self.shared_var(target.value)
            if var is not None:
                self.record(var, MUTATE, target)
            else:
                self.visit_expr(target.value, READ)
            self.visit_expr(target.slice, READ)
        elif isinstance(target, ast.Attribute):
            var = self.shared_var(target)
            if var is not None:
                self.record(var, WRITE, target)
            else:
                self.visit_expr(target.value, READ)
        elif isinstance(target, ast.Name):
            if target.id in self._globals or target.id in self._nonlocals:
                self.record(target.id, WRITE, target)

    # -- expressions ------------------------------------------------------

    def visit_expr(self, expr: ast.expr, kind: str) -> None:
        if isinstance(expr, ast.Await):
            self.visit_expr(expr.value, READ)
            self.bump("await", expr)
        elif isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if getattr(expr, "value", None) is not None:
                self.visit_expr(expr.value, READ)  # type: ignore[arg-type]
            self.bump("yield", expr)
        elif isinstance(expr, ast.Lambda):
            return  # deferred execution context
        elif isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            # the outermost iterable is evaluated eagerly, in this context
            if expr.generators:
                self.visit_expr(expr.generators[0].iter, READ)
        elif isinstance(expr, ast.Call):
            self._visit_call(expr, kind)
        elif isinstance(expr, (ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare,
                               ast.IfExp)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, kind)
        elif isinstance(expr, ast.NamedExpr):
            self.visit_expr(expr.value, kind)
        elif isinstance(expr, (ast.Attribute, ast.Name)):
            var = self.shared_var(expr)
            if var is not None:
                self.record(var, READ if kind == ITERATE else kind, expr)
            elif isinstance(expr, ast.Attribute):
                self.visit_expr(expr.value, kind)
        elif isinstance(expr, ast.Subscript):
            var = self.shared_var(expr.value)
            if var is not None:
                self.record(var, kind, expr)
            else:
                self.visit_expr(expr.value, kind)
            self.visit_expr(expr.slice, READ)
        elif isinstance(expr, ast.Starred):
            self.visit_expr(expr.value, kind)
        else:
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, READ)

    def _visit_call(self, call: ast.Call, kind: str) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = self.shared_var(func.value)
            if receiver is not None:
                if func.attr in MUTATOR_METHODS:
                    self.record(receiver, MUTATE, call)
                else:
                    self.record(
                        receiver, CHECK if kind == CHECK else READ, call
                    )
            else:
                self.visit_expr(func.value, READ)
        # a bare Name callee is code, not shared data — nothing to record
        for arg in call.args:
            self.visit_expr(arg, READ)
        for keyword in call.keywords:
            self.visit_expr(keyword.value, READ)
