"""Justification pragmas — suppression that must explain itself.

Two comment forms silence a finding on their line, and **both require a
one-line rationale** after a dash; a pragma without a rationale does not
suppress anything (that is the whole point — grep the codebase for the
pragma and you read the list of justified exceptions):

* the generic form works for any rule::

      risky()  # lint: allow(DET001) — DES replay stamps real walltime

* broad ``except`` clauses reuse the pre-existing in-tree convention
  (also understood by ruff's BLE family), again rationale-required::

      except Exception as exc:  # noqa: BLE001 — daemon must not die

The rationale separator accepts an em dash, en dash, or ``-``/``--`` so
authors don't fight their keyboard layout.
"""

from __future__ import annotations

import re

from repro.analysis.source import SourceFile

#: ``# lint: allow(RULE1, RULE2) — rationale``
_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*(?P<rules>[A-Z0-9_,\s]+?)\s*\)"
    r"(?:\s*(?:—|–|--|-)\s*(?P<reason>\S.*))?"
)

#: ``# noqa: ..., BLE001 — rationale`` (broad-except convention)
_BLE_RE = re.compile(
    r"#\s*noqa:[^#]*?\bBLE001\b[^—–#-]*"
    r"(?:(?:—|–|--|-)\s*(?P<reason>\S.*))?"
)

#: rules the ``noqa: BLE001`` form may suppress (broad catches only)
_BLE_RULES = frozenset({"ERR001", "ERR002"})


def justification(file: SourceFile, lineno: int, rule: str) -> str | None:
    """The rationale justifying ``rule`` on ``lineno``, or ``None``.

    Returns the rationale text only when a pragma on that physical line
    names the rule (or is the BLE001 form and the rule is a broad-except
    rule) *and* carries a non-empty rationale.
    """
    text = file.line_text(lineno)
    m = _ALLOW_RE.search(text)
    if m is not None:
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        reason = (m.group("reason") or "").strip()
        if rule in rules and reason:
            return reason
    if rule in _BLE_RULES:
        m = _BLE_RE.search(text)
        if m is not None:
            reason = (m.group("reason") or "").strip()
            if reason:
                return reason
    return None


def has_unjustified_pragma(file: SourceFile, lineno: int) -> bool:
    """Whether the line carries a suppression pragma missing its rationale.

    Used to sharpen the fix hint: a bare ``# noqa: BLE001`` is one dash
    and a sentence away from conforming.
    """
    text = file.line_text(lineno)
    m = _ALLOW_RE.search(text)
    if m is not None and not (m.group("reason") or "").strip():
        return True
    m = _BLE_RE.search(text)
    return m is not None and not (m.group("reason") or "").strip()
