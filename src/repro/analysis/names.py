"""Best-effort static name resolution for call sites.

The determinism and async-safety rules need to know that ``sleep(1)``
means ``time.sleep`` after ``from time import sleep``, and that
``dt.datetime.now()`` means ``datetime.datetime.now`` after
``import datetime as dt``.  This module builds a per-file alias table
from the import statements and resolves ``Call.func`` expressions to
canonical dotted names.  It is deliberately conservative: anything it
cannot resolve stays unresolved (no finding) rather than guessed.
"""

from __future__ import annotations

import ast


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import time`` → ``{"time": "time"}``;
    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from random import Random`` → ``{"Random": "random.Random"}``.
    Wildcard imports and relative imports are ignored.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `c` → a.b
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-internal
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, through the alias table.

    ``sleep`` with ``from time import sleep`` → ``time.sleep``;
    ``np.random.default_rng`` → ``numpy.random.default_rng``.  Returns
    ``None`` for targets rooted in a local variable (method calls on
    objects are resolved by the caller's own heuristics, not here).
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in aliases:
        return None
    canonical = aliases[head]
    return f"{canonical}.{rest}" if rest else canonical
