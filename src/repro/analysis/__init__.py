"""Static-analysis engine enforcing the repo's runtime invariants.

``python -m repro lint`` (or :func:`repro.analysis.engine.run`) walks
the package with :mod:`ast` and reports structured findings across four
rule families, each grounded in an invariant the dynamic test layers
already rely on:

* **determinism** (``DET*``) — clocks and RNGs are injected, never
  ambient, so chaos/DES runs replay from a seed;
* **async-safety** (``ASY*``) — nothing blocks the broker's event loop;
* **typed errors** (``ERR*``) — broad catches carry a justification
  pragma, and the wire ``ErrorCode`` enum stays exhaustive between
  server and client;
* **protocol drift** (``PRO*``) — client verbs, dispatch ladders, and
  the declared op set never diverge.

Pre-existing violations are grandfathered in ``lint-baseline.json``;
anything new fails the gate (exit 1).  See ``docs/ANALYSIS.md``.
"""

from repro.analysis.baseline import DEFAULT_BASELINE, fingerprint
from repro.analysis.engine import lint_project, run
from repro.analysis.findings import Finding, LintReport, RuleInfo
from repro.analysis.rules import ALL_RULES
from repro.analysis.source import Project, SourceFile

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "Project",
    "RuleInfo",
    "SourceFile",
    "fingerprint",
    "lint_project",
    "run",
]
