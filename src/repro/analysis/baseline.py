"""Baseline handling — grandfathered findings are explicit, not ignored.

The baseline file (``lint-baseline.json`` at the repo root) records the
findings that existed when the gate was introduced, as *fingerprint
counts*.  A fingerprint is ``rule|path|context`` — the enclosing
function qualname rather than a line number, so unrelated edits above a
grandfathered site don't churn the file.  Per fingerprint the baseline
stores how many findings are tolerated; the gate fails only on findings
**beyond** those counts, so:

* fixing a grandfathered violation never breaks the build (the entry
  just goes stale, and the CLI nags to ``--write-baseline``);
* introducing a *second* violation of an already-baselined kind in the
  same function **does** fail — the count is exceeded;
* nothing is ever silently excluded: the tolerated debt is a committed,
  reviewable JSON file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding, LintReport

BASELINE_VERSION = 1

#: default baseline filename, resolved against the lint root
DEFAULT_BASELINE = "lint-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Position-independent identity used for grandfathering."""
    return f"{finding.rule}|{finding.path}|{finding.context}"


def load(path: Path) -> dict[str, int]:
    """Fingerprint counts from ``path`` (empty when the file is absent)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(
            f"{path} is not a lint baseline (expected a 'findings' map)"
        )
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; this build "
            f"understands version {BASELINE_VERSION}"
        )
    findings = data["findings"]
    if not isinstance(findings, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in findings.items()
    ):
        raise ValueError(f"{path}: 'findings' must map fingerprints to counts")
    return dict(findings)


def write(path: Path, findings: list[Finding]) -> None:
    """Write the baseline grandfathering exactly ``findings``."""
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Grandfathered lint findings (see docs/ANALYSIS.md). Entries "
            "are rule|path|context fingerprints with tolerated counts; "
            "regenerate with `python -m repro lint --write-baseline` "
            "after deliberately accepting or fixing a finding."
        ),
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply(findings: list[Finding], baseline: dict[str, int]) -> LintReport:
    """Split ``findings`` into new vs. grandfathered against ``baseline``.

    Findings are consumed against their fingerprint's tolerated count in
    source order; overflow is new.  Baseline entries with a tolerated
    count higher than what exists now are reported as stale.
    """
    report = LintReport(findings=sorted(findings))
    remaining = dict(baseline)
    for finding in report.findings:
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = sorted(
        fp for fp, count in remaining.items() if count > 0
    )
    return report
