"""A small, fast discrete-event engine.

Design goals (see the HPC-Python guides used for this project):

* **simple and legible first** — a binary heap of ``(time, seq, Event)``
  entries; no coroutine magic;
* **deterministic** — ties in time are broken by insertion sequence, so a
  run with the same seeds replays identically;
* **cancellable events** — daemons get stopped by failure injection, so an
  event handle can be cancelled in O(1) (lazy deletion from the heap).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=False)
class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule`."""

    time: float
    seq: int
    action: Optional[Callable[[], None]] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Cancel the event; the engine will skip it when popped."""
        self.cancelled = True
        self.action = None


class PeriodicTask:
    """A callback re-scheduled every ``period`` seconds until stopped.

    ``jitter_rng`` (optional) adds uniform jitter in ``[0, jitter]`` to each
    period, modelling daemons that do not tick in lock-step.
    """

    def __init__(
        self,
        engine: "Engine",
        action: Callable[[], None],
        period: float,
        *,
        start: float | None = None,
        jitter: float = 0.0,
        jitter_rng=None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and jitter_rng is None:
            raise ValueError("jitter requires a jitter_rng")
        self._engine = engine
        self._action = action
        self.period = period
        self._jitter = jitter
        self._jitter_rng = jitter_rng
        self._stopped = False
        self._pending: Event | None = None
        first = engine.now if start is None else start
        if first < engine.now:
            raise ValueError(
                f"cannot start a periodic task in the past: {first} < {engine.now}"
            )
        self._pending = engine.schedule_at(first, self._fire)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if self._stopped:  # action may stop the task
            return
        delay = self.period
        if self._jitter > 0:
            delay += float(self._jitter_rng.uniform(0.0, self._jitter))
        self._pending = self._engine.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the task; any pending tick is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class Engine:
    """Event queue with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        ev = Event(time=time, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def every(
        self,
        period: float,
        action: Callable[[], None],
        *,
        start: float | None = None,
        jitter: float = 0.0,
        jitter_rng=None,
    ) -> PeriodicTask:
        """Create a :class:`PeriodicTask` on this engine."""
        return PeriodicTask(
            self, action, period, start=start, jitter=jitter, jitter_rng=jitter_rng
        )

    def step(self) -> bool:
        """Execute the next event. Returns ``False`` if the queue is empty."""
        while self._heap:
            time, _seq, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = time
            action = ev.action
            ev.action = None  # free the reference
            self._events_processed += 1
            action()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp ``<= time``; clock ends at ``time``.

        Events scheduled exactly at ``time`` are executed.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards: {time} < now={self._now}")
        while self._heap:
            t, _seq, ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            if t > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.run_until(self._now + duration)

    def drain(self, max_events: int | None = None) -> int:
        """Run until the queue empties (or ``max_events``); return count run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
