"""Discrete-event simulation engine.

The whole substrate (workload evolution, monitoring daemons, probe
schedules, job execution) runs on a single shared event clock provided by
:class:`repro.des.engine.Engine`.
"""

from repro.des.engine import Engine, Event, PeriodicTask

__all__ = ["Engine", "Event", "PeriodicTask"]
