"""Experiment runners: policy comparisons and strong-scaling grids.

The protocol follows §5: "We ran all four approaches in sequence for fair
evaluation, and repeated this for 5 times to account for network
variability.  Each data point ... is the average of 5 runs."  Within one
repeat every policy allocates from the *same* snapshot; between repeats
the cluster evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.apps.base import AppModel
from repro.core.policies import (
    Allocation,
    AllocationPolicy,
    AllocationRequest,
    PAPER_POLICIES,
)
from repro.core.weights import TradeOff
from repro.experiments.scenario import Scenario
from repro.simmpi.job import ExecutionReport, SimJob
from repro.simmpi.placement import Placement

#: §5 policy order used in all tables and figures
POLICY_ORDER = ("random", "sequential", "load_aware", "network_load_aware")


@dataclass(frozen=True)
class PolicyRun:
    """One policy's allocation + simulated execution."""

    policy: str
    allocation: Allocation
    report: ExecutionReport
    #: mean CPU load per logical core of the allocated nodes at
    #: allocation time (Figure 5's metric)
    mean_load_per_core: float = 0.0

    @property
    def time_s(self) -> float:
        return self.report.total_time_s


@dataclass(frozen=True)
class ComparisonRun:
    """All policies executed against one snapshot (one §5 'run')."""

    time: float
    runs: Mapping[str, PolicyRun]

    def times(self) -> dict[str, float]:
        return {p: r.time_s for p, r in self.runs.items()}


def compare_policies(
    scenario: Scenario,
    app: AppModel,
    request: AllocationRequest,
    *,
    rng: np.random.Generator,
    policies: Sequence[str] = POLICY_ORDER,
    policy_factory: Callable[[str], AllocationPolicy] | None = None,
) -> ComparisonRun:
    """Allocate with every policy from the same snapshot and price each run."""
    snapshot = scenario.snapshot()
    factory = policy_factory or (lambda name: PAPER_POLICIES[name]())
    runs: dict[str, PolicyRun] = {}
    for name in policies:
        policy = factory(name)
        allocation = policy.allocate(snapshot, request, rng=rng)
        job = SimJob(
            app,
            Placement.from_allocation(allocation),
            scenario.cluster,
            scenario.network,
        )
        load_per_core = float(
            np.mean(
                [
                    snapshot.nodes[n].cpu_load["now"] / snapshot.nodes[n].cores
                    for n in allocation.nodes
                ]
            )
        )
        runs[name] = PolicyRun(
            policy=name,
            allocation=allocation,
            report=job.run(),
            mean_load_per_core=load_per_core,
        )
    return ComparisonRun(time=snapshot.time, runs=runs)


@dataclass(frozen=True)
class ScenarioJobRun:
    """One job of a scenario comparison: its class and the §5 four-way run."""

    index: int
    app: str
    alpha: float
    submit_offset_s: float
    comparison: ComparisonRun


@dataclass(frozen=True)
class ScenarioComparison:
    """A job stream compared across policies on one registered scenario."""

    scenario: str
    seed: int
    jobs: tuple[ScenarioJobRun, ...]

    def mean_times(self) -> dict[str, float]:
        """Mean simulated execution time per policy across the stream."""
        out: dict[str, list[float]] = {}
        for job in self.jobs:
            for policy, run in job.comparison.runs.items():
                out.setdefault(policy, []).append(run.time_s)
        return {p: float(np.mean(v)) for p, v in out.items()}

    def improvement_pct(
        self, baseline: str, policy: str = "network_load_aware"
    ) -> float:
        """Mean-time gain of ``policy`` over ``baseline`` (positive = wins)."""
        means = self.mean_times()
        if means[baseline] <= 0:
            return 0.0
        return (means[baseline] - means[policy]) / means[baseline] * 100.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_jobs": len(self.jobs),
            "mean_times_s": self.mean_times(),
            "jobs": [
                {
                    "index": j.index,
                    "app": j.app,
                    "alpha": j.alpha,
                    "submit_offset_s": j.submit_offset_s,
                    "times_s": j.comparison.times(),
                }
                for j in self.jobs
            ],
        }


def run_comparison(
    scenario: str = "paper-tree",
    *,
    seed: int = 0,
    n_jobs: int = 5,
    n_processes: int = 16,
    ppn: int = 4,
    app_size: int = 16,
    warmup_s: float | None = None,
    policies: Sequence[str] = POLICY_ORDER,
) -> ScenarioComparison:
    """Compare the §5 policies over a registered scenario's job stream.

    Builds the named scenario, draws ``n_jobs`` submit times from its
    arrival process and job classes from its mix, and runs
    :func:`compare_policies` for each job as the cluster evolves to the
    next arrival.  Requests carry the scenario's Eq-1/Eq-2 weight
    profiles and each job class's α.
    """
    from repro.apps import FFT3D, MiniFE, MiniMD, Stencil3D
    from repro.scenarios import get_scenario

    apps: dict[str, Callable[[int], AppModel]] = {
        "minimd": MiniMD, "minife": MiniFE,
        "stencil": Stencil3D, "fft": FFT3D,
    }
    spec = get_scenario(scenario)
    sc = spec.build(seed, warmup_s=warmup_s)
    rng = sc.streams.child("experiment")
    offsets = spec.arrival_offsets(n_jobs, sc.streams.child("arrivals"))
    jobs: list[ScenarioJobRun] = []
    elapsed = 0.0
    for i, offset in enumerate(offsets):
        if offset > elapsed:
            sc.advance(offset - elapsed)
            elapsed = offset
        job_class = spec.sample_job(rng)
        app = apps[job_class.app](app_size)
        request = spec.request(
            n_processes, ppn=ppn, alpha=job_class.alpha
        )
        comparison = compare_policies(
            sc, app, request, rng=rng, policies=policies
        )
        jobs.append(
            ScenarioJobRun(
                index=i,
                app=job_class.app,
                alpha=job_class.alpha,
                submit_offset_s=offset,
                comparison=comparison,
            )
        )
    return ScenarioComparison(
        scenario=spec.name, seed=seed, jobs=tuple(jobs)
    )


@dataclass
class GridResult:
    """Strong-scaling grid: times[policy][(n_procs, size)] = list over repeats."""

    app_name: str
    proc_counts: tuple[int, ...]
    sizes: tuple[int, ...]
    repeats: int
    policies: tuple[str, ...]
    times: dict[str, dict[tuple[int, int], list[float]]] = field(
        default_factory=dict
    )
    allocations: dict[str, dict[tuple[int, int], list[Allocation]]] = field(
        default_factory=dict
    )
    #: Figure 5's metric, same indexing as ``times``
    loads_per_core: dict[str, dict[tuple[int, int], list[float]]] = field(
        default_factory=dict
    )

    def mean_load_per_core(self, policy: str) -> float:
        """Average over every configuration and repeat (Figure 5 bar)."""
        vals = [
            v for cell in self.loads_per_core[policy].values() for v in cell
        ]
        return float(np.mean(vals))

    def mean_time(self, policy: str, n_procs: int, size: int) -> float:
        return float(np.mean(self.times[policy][(n_procs, size)]))

    def paired_times(self, policy_a: str, policy_b: str) -> tuple[list[float], list[float]]:
        """Per-(config, repeat) paired execution times of two policies."""
        a_out, b_out = [], []
        for key in self.times[policy_a]:
            a_out.extend(self.times[policy_a][key])
            b_out.extend(self.times[policy_b][key])
        return a_out, b_out

    def repeat_series(self, policy: str) -> list[list[float]]:
        """Per-configuration lists of repeat times (for CoV)."""
        return [list(v) for v in self.times[policy].values()]

    def to_csv(self, path=None) -> str:
        """Raw per-repeat rows: policy, procs, size, repeat, time_s.

        The flat form plotting tools want; optionally written to ``path``.
        """
        import csv
        import io
        from pathlib import Path

        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(
            ["app", "policy", "procs", "size", "repeat", "time_s",
             "load_per_core"]
        )
        for policy in self.policies:
            for (procs, size), series in self.times[policy].items():
                loads = self.loads_per_core[policy][(procs, size)]
                for rep, t in enumerate(series):
                    writer.writerow(
                        [
                            self.app_name,
                            policy,
                            procs,
                            size,
                            rep,
                            f"{t:.6g}",
                            f"{loads[rep]:.6g}" if rep < len(loads) else "",
                        ]
                    )
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


def run_grid(
    scenario: Scenario,
    app_factory: Callable[[int], AppModel],
    *,
    proc_counts: Sequence[int],
    sizes: Sequence[int],
    ppn: int = 4,
    tradeoff: TradeOff | None = None,
    repeats: int = 5,
    gap_s: float = 600.0,
    rng: np.random.Generator | None = None,
    policies: Sequence[str] = POLICY_ORDER,
) -> GridResult:
    """The §5 strong-scaling protocol over a (procs × size) grid.

    For each repeat, every (procs, size) cell runs all policies against
    the same evolving cluster; the scenario advances ``gap_s`` seconds of
    simulated time between cells so repeats see different states.
    """
    if rng is None:
        rng = scenario.streams.child("experiment")
    sample_app = app_factory(sizes[0])
    result = GridResult(
        app_name=sample_app.name,
        proc_counts=tuple(proc_counts),
        sizes=tuple(sizes),
        repeats=repeats,
        policies=tuple(policies),
        times={p: {} for p in policies},
        allocations={p: {} for p in policies},
        loads_per_core={p: {} for p in policies},
    )
    for p in policies:
        for n in proc_counts:
            for s in sizes:
                result.times[p][(n, s)] = []
                result.allocations[p][(n, s)] = []
                result.loads_per_core[p][(n, s)] = []
    to = tradeoff or sample_app.recommended_tradeoff()
    for _rep in range(repeats):
        for n in proc_counts:
            for s in sizes:
                app = app_factory(s)
                request = AllocationRequest(
                    n_processes=n, ppn=ppn, tradeoff=to
                )
                comparison = compare_policies(
                    scenario, app, request, rng=rng, policies=policies
                )
                for p, run in comparison.runs.items():
                    result.times[p][(n, s)].append(run.time_s)
                    result.allocations[p][(n, s)].append(run.allocation)
                    result.loads_per_core[p][(n, s)].append(
                        run.mean_load_per_core
                    )
                scenario.advance(gap_s)
    return result
