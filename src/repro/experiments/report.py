"""Plain-text rendering of results: tables, heatmaps, series.

The original paper uses matplotlib figures; this offline reproduction
emits aligned text tables and ASCII heatmaps (plus CSV via the trace
utilities) so every artefact is diffable and testable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: shade ramp from low to high value
_SHADES = " .:-=+*#%@"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width text table with right-aligned numeric columns."""
    str_rows = [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        cells = []
        for i, c in enumerate(row):
            if i == 0:
                cells.append(c.ljust(widths[i]))
            else:
                cells.append(c.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def ascii_heatmap(
    matrix: np.ndarray,
    *,
    labels: Sequence[str] | None = None,
    invert: bool = False,
    title: str | None = None,
) -> str:
    """Render a matrix as shaded ASCII (dark = high, like Fig 2a/Fig 7).

    ``invert=True`` makes *low* values dark (useful when low bandwidth
    should look dark, matching the paper's colouring).
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D matrix, got shape {m.shape}")
    if labels is not None and len(labels) != m.shape[0]:
        raise ValueError(
            f"{len(labels)} labels for {m.shape[0]} heatmap rows"
        )
    finite = m[np.isfinite(m)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo or 1.0
    lines = []
    if title:
        lines.append(title)
    for i in range(m.shape[0]):
        cells = []
        for j in range(m.shape[1]):
            v = m[i, j]
            if not np.isfinite(v):
                cells.append(" ")
                continue
            frac = (v - lo) / span
            if invert:
                frac = 1.0 - frac
            idx = min(int(frac * len(_SHADES)), len(_SHADES) - 1)
            cells.append(_SHADES[idx])
        label = f"{labels[i]:>10s} " if labels else ""
        lines.append(label + "".join(cells))
    return "\n".join(lines)


def series_summary(
    name: str, values: Sequence[float], *, unit: str = ""
) -> str:
    """One-line min/mean/max summary of a series."""
    arr = np.asarray(values, dtype=float)
    u = f" {unit}" if unit else ""
    return (
        f"{name}: min={arr.min():.3g}{u} mean={arr.mean():.3g}{u} "
        f"max={arr.max():.3g}{u} (n={arr.size})"
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Downsample a series into a one-line shade plot."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1, dtype=int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo or 1.0
    return "".join(
        _SHADES[min(int((v - lo) / span * len(_SHADES)), len(_SHADES) - 1)]
        for v in arr
    )


def comparison_table(
    times: Mapping[str, Mapping[tuple[int, int], Sequence[float]]],
    proc_counts: Sequence[int],
    sizes: Sequence[int],
    *,
    title: str | None = None,
) -> str:
    """Figure 4/6-style grid: mean time per policy per (procs, size)."""
    blocks = []
    for n in proc_counts:
        headers = ["policy"] + [f"size={s}" for s in sizes]
        rows = []
        for policy, cells in times.items():
            row: list[object] = [policy]
            for s in sizes:
                row.append(float(np.mean(cells[(n, s)])))
            rows.append(row)
        blocks.append(
            format_table(headers, rows, title=f"#procs = {n}")
        )
    head = [title] if title else []
    return "\n\n".join(head + blocks)
