"""Table-reproduction drivers (Tables 2, 3, 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.policies import AllocationRequest
from repro.core.weights import MINIMD_TRADEOFF
from repro.experiments.metrics import (
    GainStats,
    coefficient_of_variation,
    gain_stats,
)
from repro.experiments.report import format_table
from repro.experiments.runner import (
    POLICY_ORDER,
    ComparisonRun,
    GridResult,
    PolicyRun,
    compare_policies,
)
from repro.experiments.scenario import Scenario, paper_scenario
from repro.apps.minimd import MiniMD
from repro.monitor.snapshot import ClusterSnapshot

OURS = "network_load_aware"
BASELINES = ("random", "sequential", "load_aware")


# ----------------------------------------------------------------------
# Tables 2 and 3 — percentage gains (+ the §5 CoV numbers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GainTable:
    """Per-baseline gain statistics plus run-stability CoV per policy."""

    app_name: str
    gains: Mapping[str, GainStats]
    cov: Mapping[str, float]

    def render(self, *, table_no: int) -> str:
        rows = [
            [
                baseline,
                f"{st.average:.1f}%",
                f"{st.median:.1f}%",
                f"{st.maximum:.1f}%",
            ]
            for baseline, st in self.gains.items()
        ]
        gain_tbl = format_table(
            ["Allocation Policy", "Average Gain", "Median Gain", "Maximum Gain"],
            rows,
            title=(
                f"Table {table_no} — gain of network_load_aware over each "
                f"baseline ({self.app_name})"
            ),
        )
        cov_rows = [[p, float(v)] for p, v in self.cov.items()]
        cov_tbl = format_table(
            ["policy", "coefficient of variation"],
            cov_rows,
            title="Run-time stability (CoV across repeats, §5)",
        )
        return gain_tbl + "\n\n" + cov_tbl


def gain_table(grid: GridResult) -> GainTable:
    """Compute the Table 2/3 statistics from a strong-scaling grid.

    Gains pair each (configuration, repeat) of a baseline against the same
    (configuration, repeat) of the network-and-load-aware policy; CoV is
    computed per configuration across repeats, then averaged.
    """
    gains: dict[str, GainStats] = {}
    for baseline in BASELINES:
        base_t, ours_t = grid.paired_times(baseline, OURS)
        gains[baseline] = gain_stats(base_t, ours_t)
    cov: dict[str, float] = {}
    for policy in grid.policies:
        per_config = [
            coefficient_of_variation(times)
            for times in grid.repeat_series(policy)
            if len(times) > 1
        ]
        cov[policy] = float(np.mean(per_config)) if per_config else 0.0
    return GainTable(app_name=grid.app_name, gains=gains, cov=cov)


def table2(grid_minimd: GridResult) -> GainTable:
    """Table 2: miniMD gains (expects a Figure-4 grid result)."""
    if grid_minimd.app_name != "miniMD":
        raise ValueError(f"table2 expects a miniMD grid, got {grid_minimd.app_name}")
    return gain_table(grid_minimd)


def table3(grid_minife: GridResult) -> GainTable:
    """Table 3: miniFE gains (expects a Figure-6 grid result)."""
    if grid_minife.app_name != "miniFE":
        raise ValueError(f"table3 expects a miniFE grid, got {grid_minife.app_name}")
    return gain_table(grid_minife)


# ----------------------------------------------------------------------
# Table 4 — state of the allocated groups for one miniMD instance
# ----------------------------------------------------------------------
@dataclass
class AllocationAnalysis:
    """One §5.3 analysis: all four policies on the same snapshot."""

    snapshot: ClusterSnapshot
    runs: Mapping[str, PolicyRun]

    def group_state(self, policy: str) -> dict[str, float]:
        """Avg CPU load, avg bandwidth complement, avg latency of a group."""
        run = self.runs[policy]
        nodes = run.allocation.nodes
        snap = self.snapshot
        loads = [snap.nodes[n].cpu_load["now"] for n in nodes]
        bwc, lat = [], []
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                key = (a, b) if a <= b else (b, a)
                if key in snap.bandwidth_mbs:
                    bwc.append(snap.bandwidth_complement(*key))
                if key in snap.latency_us:
                    lat.append(snap.latency(*key))
        return {
            "avg_cpu_load": float(np.mean(loads)),
            "avg_bandwidth_complement_mbs": float(np.mean(bwc)) if bwc else 0.0,
            "avg_latency_us": float(np.mean(lat)) if lat else 0.0,
            "execution_time_s": run.time_s,
        }

    def render(self) -> str:
        rows = []
        for policy in self.runs:
            st = self.group_state(policy)
            rows.append(
                [
                    policy,
                    st["avg_cpu_load"],
                    st["avg_bandwidth_complement_mbs"],
                    st["avg_latency_us"],
                    st["execution_time_s"],
                ]
            )
        return format_table(
            [
                "Algorithm",
                "Avg. CPU load",
                "Avg. BW complement (MB/s)",
                "Avg. latency (us)",
                "Exec time (s)",
            ],
            rows,
            title="Table 4 — usage of allocated resource group during allocation",
        )


def allocation_analysis(
    seed: int = 0,
    *,
    n_processes: int = 32,
    ppn: int = 4,
    s: int = 16,
    scenario: Scenario | None = None,
) -> AllocationAnalysis:
    """§5.3 setup: miniMD, 32 processes, 4 ppn, s = 16 (16K atoms)."""
    sc = scenario or paper_scenario(seed=seed)
    snapshot = sc.snapshot()
    request = AllocationRequest(
        n_processes=n_processes, ppn=ppn, tradeoff=MINIMD_TRADEOFF
    )
    comparison = compare_policies(
        sc,
        MiniMD(s),
        request,
        rng=sc.streams.child("table4"),
        policies=POLICY_ORDER,
    )
    return AllocationAnalysis(snapshot=snapshot, runs=comparison.runs)


def table4(
    seed: int = 0, *, scenario: Scenario | None = None
) -> AllocationAnalysis:
    """Table 4 driver (shares its snapshot with Figure 7)."""
    return allocation_analysis(seed=seed, scenario=scenario)
