"""Result metrics used throughout §5 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def gain_percent(baseline_time: float, our_time: float) -> float:
    """Percentage improvement of ``our_time`` over ``baseline_time``.

    Positive when ours is faster: ``(t_base − t_ours) / t_base × 100``.
    """
    if baseline_time <= 0:
        raise ValueError(f"baseline time must be positive, got {baseline_time}")
    return (baseline_time - our_time) / baseline_time * 100.0


@dataclass(frozen=True)
class GainStats:
    """The Average/Median/Maximum Gain columns of Tables 2 and 3."""

    average: float
    median: float
    maximum: float
    n: int

    def row(self) -> tuple[float, float, float]:
        return (self.average, self.median, self.maximum)


def gain_stats(
    baseline_times: Sequence[float], our_times: Sequence[float]
) -> GainStats:
    """Gain statistics over paired (same-configuration) measurements."""
    if len(baseline_times) != len(our_times):
        raise ValueError(
            f"paired series differ in length: {len(baseline_times)} vs {len(our_times)}"
        )
    if not baseline_times:
        raise ValueError("need at least one measurement pair")
    gains = np.array(
        [gain_percent(b, o) for b, o in zip(baseline_times, our_times)]
    )
    return GainStats(
        average=float(gains.mean()),
        median=float(np.median(gains)),
        maximum=float(gains.max()),
        n=len(gains),
    )


def coefficient_of_variation(times: Sequence[float]) -> float:
    """std / mean — the paper's run-stability metric (§5.1/§5.2).

    Uses population standard deviation (ddof=0); the paper's 5-run
    samples are tiny either way.
    """
    arr = np.asarray(times, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one measurement")
    mean = arr.mean()
    if mean == 0:
        raise ValueError("mean execution time is zero")
    return float(arr.std() / mean)
