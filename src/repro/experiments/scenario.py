"""Scenario — one fully wired simulated shared cluster.

Bundles engine + cluster + network + background workload + monitoring the
way §5 of the paper deploys them on the IITK lab cluster, with a single
seed controlling every stochastic component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.cluster.topology import SwitchTopology, paper_cluster, uniform_cluster
from repro.core.broker import ResourceBroker
from repro.des.engine import Engine
from repro.monitor.snapshot import ClusterSnapshot
from repro.monitor.system import MonitorConfig, MonitoringSystem
from repro.net.model import NetworkModel
from repro.util.rng import RngStream
from repro.workload.generator import BackgroundWorkload, WorkloadConfig


@dataclass
class Scenario:
    """A live simulated cluster with workload and monitoring attached."""

    engine: Engine
    cluster: Cluster
    network: NetworkModel
    workload: BackgroundWorkload
    monitoring: MonitoringSystem | None
    streams: RngStream

    @classmethod
    def build(
        cls,
        specs: list[NodeSpec],
        topology: SwitchTopology,
        *,
        seed: int = 0,
        workload_config: WorkloadConfig | None = None,
        monitor_config: MonitorConfig | None = None,
        with_monitoring: bool = True,
        store=None,
    ) -> "Scenario":
        streams = RngStream(seed)
        engine = Engine()
        cluster = Cluster(specs, topology)
        network = NetworkModel(topology)
        workload = BackgroundWorkload(
            engine, cluster, network, config=workload_config, seed=streams
        )
        monitoring = None
        if with_monitoring:
            monitoring = MonitoringSystem(
                engine,
                cluster,
                network,
                store=store,
                config=monitor_config,
                seed=streams,
            )
            monitoring.start()
        return cls(
            engine=engine,
            cluster=cluster,
            network=network,
            workload=workload,
            monitoring=monitoring,
            streams=streams,
        )

    # ------------------------------------------------------------------
    def warm_up(self, duration_s: float = 1800.0) -> None:
        """Advance until workload and monitor data reach steady state."""
        self.engine.run(duration_s)

    def advance(self, duration_s: float) -> None:
        """Let the cluster evolve (between repeated experiments)."""
        self.engine.run(duration_s)

    def snapshot(self) -> ClusterSnapshot:
        if self.monitoring is None:
            raise RuntimeError(
                "scenario was built with with_monitoring=False; no snapshots"
            )
        return self.monitoring.snapshot()

    def broker(self, **kwargs) -> ResourceBroker:
        return ResourceBroker(self.snapshot, **kwargs)


def paper_scenario(
    seed: int = 0,
    *,
    warmup_s: float = 1800.0,
    workload_config: WorkloadConfig | None = None,
    with_monitoring: bool = True,
) -> Scenario:
    """The §5 evaluation environment: 60-node IITK-style shared cluster."""
    specs, topo = paper_cluster()
    sc = Scenario.build(
        specs,
        topo,
        seed=seed,
        workload_config=workload_config,
        with_monitoring=with_monitoring,
    )
    if warmup_s > 0:
        sc.warm_up(warmup_s)
    return sc


def small_scenario(
    n_nodes: int = 8,
    seed: int = 0,
    *,
    warmup_s: float = 600.0,
    nodes_per_switch: int = 4,
) -> Scenario:
    """A small homogeneous cluster for tests and brute-force comparisons."""
    specs, topo = uniform_cluster(n_nodes, nodes_per_switch=nodes_per_switch)
    sc = Scenario.build(specs, topo, seed=seed)
    if warmup_s > 0:
        sc.warm_up(warmup_s)
    return sc
